//! The E16 SLO-telemetry experiment core.
//!
//! E15 proved the wave gate halts a broken rollout; E16 asks the
//! *observability* question: what should page the fleet operator? Two
//! detectors watch the identical completion-ordered stream of 32-vehicle
//! verification batches:
//!
//! * **threshold** — the classic rule: page whenever one batch's failure
//!   fraction crosses the error budget. On a healthy-but-noisy fleet
//!   (~1.5 % baseline failures from marginal flash and occasional image
//!   re-fetches) a 32-vehicle batch crosses a 5 % budget whenever it
//!   carries ≥ 2 failures — several percent of all batches — so the pager
//!   fires all night for nothing;
//! * **burn** — the SLO pipeline: [`SloBurnGate`] folds each batch into
//!   multi-window burn rates and trips only when the
//!   `BoundaryEstimator` is *confident* burn > 1.0, arming and firing the
//!   flight recorder so every trip is paired with a `dynplat.flight.v1`
//!   dump of the window leading up to it.
//!
//! Each arm runs a clean warm-up phase (baseline noise) followed by a
//! fault phase: **quiet** keeps the baseline, **degraded** adds loss and
//! delay spikes (slow, not broken — stage sketches stretch, no alert
//! should fire), **broken** ships a badly corrupted image (~64 %
//! verification failures — both detectors must catch it, the burn gate at
//! no time-to-detect penalty). Per arm the merged stage sketches and a
//! delta-encoded [`TelemetryRing`] form the telemetry artifact whose size
//! prices the pipeline in bytes per vehicle; the artifact is byte-identical
//! across shard counts (schema `dynplat.e16.v1`, pinned by CI like E15).
//!
//! [`SloBurnGate`]: dynplat_monitor::slo::SloBurnGate

use std::sync::Arc;

use crate::Table;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_faults::FaultPlan;
use dynplat_fleet::{CampaignSpec, ShardMetrics, ShardPool, VehicleOutcome, VehicleVerdict};
use dynplat_monitor::slo::SloBurnGate;
use dynplat_obs::slo::SloSpec;
use dynplat_obs::{FlightRecorder, MetricsRegistry, Sketch, TelemetryRing};

/// Vehicles per verification batch offered to both detectors.
pub const E16_BATCH: usize = 32;

/// Error budget of the verification SLO (fraction of admitted vehicles
/// that may fail verification).
pub const E16_BUDGET: f64 = 0.05;

/// The four stage sketches exported per arm, with the gauge names their
/// p99 trajectory is flushed into for the telemetry ring (the sanctioned
/// sketch→timeseries path).
const STAGES: [(&str, &str); 4] = [
    ("fleet.stage.download_ms", "fleet.stage.download_ms.p99"),
    ("fleet.stage.finalize_ms", "fleet.stage.finalize_ms.p99"),
    ("fleet.stage.stall_ms", "fleet.stage.stall_ms.p99"),
    ("fleet.stage.e2e_ms", "fleet.stage.e2e_ms.p99"),
];

/// Baseline fleet noise: light image corruption (single re-fetches, the
/// occasional double-corrupt rollback) on top of the per-variant verify
/// noise floor — ~1.5 % failures, well inside a 5 % budget, yet enough
/// for a 32-vehicle batch to cross it regularly.
pub fn baseline_plan(seed: u64) -> FaultPlan {
    FaultPlan::quiet(seed).with_message_faults(0.0, 0.11, 0.0)
}

/// One arm of the E16 experiment.
#[derive(Clone, Debug)]
pub struct TelemetryArm {
    /// Arm label (`quiet` / `degraded` / `broken`).
    pub name: &'static str,
    /// Fault plan of the fault phase (the warm-up always runs
    /// [`baseline_plan`]).
    pub plan: FaultPlan,
    /// Whether the fault phase genuinely violates the SLO: alarms during
    /// it count as detection instead of false alarms.
    pub breaks: bool,
}

/// The standard three arms over `seed`.
pub fn telemetry_arms(seed: u64) -> Vec<TelemetryArm> {
    vec![
        TelemetryArm {
            name: "quiet",
            plan: baseline_plan(seed),
            breaks: false,
        },
        TelemetryArm {
            name: "degraded",
            // Lossy links and latency spikes on top of the baseline:
            // downloads stretch (the stage sketches show it) but the
            // verification failure rate stays at the noise floor, so a
            // correct detector stays silent.
            plan: baseline_plan(seed)
                .with_message_faults(0.10, 0.11, 0.0)
                .with_delay_spikes(0.05, SimDuration::from_secs(2)),
            breaks: false,
        },
        TelemetryArm {
            name: "broken",
            // A catastrophically corrupted image: double-corruption drives
            // ~64 % of admitted vehicles into verification failure.
            plan: FaultPlan::quiet(seed).with_message_faults(0.0, 0.80, 0.0),
            breaks: true,
        },
    ]
}

/// One completion-ordered batch of verification outcomes.
#[derive(Clone, Copy, Debug)]
struct Batch {
    /// Completion time of the batch's last vehicle (the evaluation
    /// instant for both detectors).
    at: SimTime,
    good: u64,
    bad: u64,
}

/// Groups admitted outcomes into completion-ordered batches of
/// [`E16_BATCH`] (ties broken by vehicle id, so the series is canonical
/// whatever the shard count).
fn batch_series(outcomes: &[VehicleOutcome]) -> Vec<Batch> {
    let mut done: Vec<(SimTime, u32, bool)> = outcomes
        .iter()
        .filter(|o| o.admitted())
        .map(|o| {
            (
                o.completed,
                o.vehicle.raw(),
                o.verdict == VehicleVerdict::VerifyFailed,
            )
        })
        .collect();
    done.sort_unstable();
    done.chunks(E16_BATCH)
        .map(|chunk| {
            let bad = chunk.iter().filter(|&&(_, _, failed)| failed).count() as u64;
            Batch {
                at: chunk.last().expect("chunks are non-empty").0,
                good: chunk.len() as u64 - bad,
                bad,
            }
        })
        .collect()
}

/// Alarm bookkeeping for one detector.
#[derive(Clone, Copy, Debug, Default)]
struct DetectorStats {
    false_alarms: u64,
    detected_at: Option<SimTime>,
}

impl DetectorStats {
    /// Folds one alarm decision. During a genuinely broken fault phase
    /// the first alarm is the detection and follow-ups are legitimate
    /// re-pages; everywhere else an alarm is a false page.
    fn observe(&mut self, alarm: bool, at: SimTime, incident: bool) {
        if !alarm {
            return;
        }
        if incident {
            self.detected_at.get_or_insert(at);
        } else {
            self.false_alarms += 1;
        }
    }

    fn ttd_ms(&self, onset: SimTime) -> Option<u64> {
        self.detected_at
            .map(|t| t.saturating_since(onset).as_millis())
    }
}

/// One arm's replay, reduced to the E16 figures.
#[derive(Clone, Debug)]
pub struct TelemetryResult {
    /// Arm label.
    pub arm: &'static str,
    /// Fleet size per phase.
    pub vehicles: u32,
    /// Batches in the clean warm-up phase.
    pub clean_batches: u64,
    /// Batches in the fault phase.
    pub fault_batches: u64,
    /// False pages from the bare per-batch threshold.
    pub threshold_false_alarms: u64,
    /// Threshold time-to-detect from fault onset, ms (broken arm only).
    pub threshold_ttd_ms: Option<u64>,
    /// False pages from the SLO burn gate.
    pub burn_false_alarms: u64,
    /// Burn-gate time-to-detect from fault onset, ms (broken arm only).
    pub burn_ttd_ms: Option<u64>,
    /// Burn-gate trip edges over the whole replay.
    pub trips: u64,
    /// Flight dumps captured on those trips (must pair 1:1).
    pub dumps: u64,
    /// Verification failures in the fault phase (ground truth).
    pub fault_verify_failed: u64,
    /// p99 download-stage duration in the fault phase, ms.
    pub fault_download_p99_ms: u64,
    /// Size of the merged telemetry artifact, bytes.
    pub telemetry_bytes: u64,
    /// The telemetry artifact itself: merged registry snapshot (stage
    /// sketches included) plus the delta-encoded ring, byte-identical
    /// across shard counts. Not part of [`TelemetryResult::to_json`];
    /// written separately for the CI shard-flip `cmp`.
    pub telemetry: String,
}

/// Publishes one phase's merged shard metrics into the registry.
fn publish_phase(registry: &MetricsRegistry, metrics: &ShardMetrics) {
    registry
        .counter("e16.vehicles.simulated")
        .add(metrics.simulated);
    registry
        .counter("e16.vehicles.admitted")
        .add(metrics.admitted);
    registry
        .counter("e16.vehicles.updated")
        .add(metrics.updated);
    registry
        .counter("e16.vehicles.verify_failed")
        .add(metrics.verify_failed);
    registry.counter("e16.chunk.retries").add(metrics.retries);
    let sketches: [&Sketch; 4] = [
        &metrics.download_ms,
        &metrics.finalize_ms,
        &metrics.stall_ms,
        &metrics.e2e_ms,
    ];
    for ((name, _), sketch) in STAGES.iter().zip(sketches) {
        registry.sketch(name).merge(sketch);
    }
}

/// Flushes stage-sketch p99s into gauges and samples the ring.
fn sample_ring(registry: &MetricsRegistry, ring: &mut TelemetryRing, at: SimTime) {
    for (name, p99_gauge) in STAGES {
        let p99 = registry.sketch(name).quantile(0.99);
        registry.gauge(p99_gauge).set(p99 as i64);
    }
    ring.sample(at.as_nanos(), &registry.snapshot());
}

impl TelemetryResult {
    /// Table row (stable formatting).
    pub fn row(&self) -> Vec<String> {
        let ttd = |t: Option<u64>| t.map_or_else(|| "-".to_owned(), |v| v.to_string());
        vec![
            self.arm.to_owned(),
            format!("{}/{}", self.clean_batches, self.fault_batches),
            self.threshold_false_alarms.to_string(),
            ttd(self.threshold_ttd_ms),
            self.burn_false_alarms.to_string(),
            ttd(self.burn_ttd_ms),
            self.trips.to_string(),
            self.dumps.to_string(),
            self.fault_verify_failed.to_string(),
            self.fault_download_p99_ms.to_string(),
            self.telemetry_bytes.to_string(),
        ]
    }

    /// Header matching [`TelemetryResult::row`].
    pub fn columns() -> [&'static str; 11] {
        [
            "arm",
            "batches",
            "thr_false",
            "thr_ttd_ms",
            "burn_false",
            "burn_ttd_ms",
            "trips",
            "dumps",
            "fault_vfail",
            "dl_p99_ms",
            "tel_bytes",
        ]
    }

    /// Prints this result as one row of `table`.
    pub fn print_row(&self, table: &Table) {
        table.row(&self.row());
    }

    /// One JSON object (hand-rolled like every snapshot in the workspace,
    /// schema `dynplat.e16.v1` fields). Sim-clock quantities only: no
    /// wall-clock value may enter, or rerun/shard-count byte-identity dies.
    pub fn to_json(&self) -> String {
        let ttd = |t: Option<u64>| t.map_or_else(|| "null".to_owned(), |v| v.to_string());
        format!(
            concat!(
                "{{\"arm\":\"{}\",\"vehicles\":{},",
                "\"batches\":{{\"clean\":{},\"fault\":{}}},",
                "\"threshold\":{{\"false_alarms\":{},\"ttd_ms\":{}}},",
                "\"burn\":{{\"false_alarms\":{},\"ttd_ms\":{},\"trips\":{},\"dumps\":{}}},",
                "\"fault\":{{\"verify_failed\":{},\"download_p99_ms\":{}}},",
                "\"telemetry_bytes\":{}}}"
            ),
            self.arm,
            self.vehicles,
            self.clean_batches,
            self.fault_batches,
            self.threshold_false_alarms,
            ttd(self.threshold_ttd_ms),
            self.burn_false_alarms,
            ttd(self.burn_ttd_ms),
            self.trips,
            self.dumps,
            self.fault_verify_failed,
            self.fault_download_p99_ms,
            self.telemetry_bytes,
        )
    }
}

/// Serializes a whole E16 run as a JSON document (schema `dynplat.e16.v1`).
pub fn telemetry_arms_to_json(seed: u64, vehicles: u32, results: &[TelemetryResult]) -> String {
    let rows: Vec<String> = results.iter().map(TelemetryResult::to_json).collect();
    format!(
        concat!(
            "{{\"schema\":\"dynplat.e16.v1\",\"seed\":{},\"vehicles\":{},",
            "\"budget\":0.05,\"batch\":32,\"arms\":[{}]}}\n"
        ),
        seed,
        vehicles,
        rows.join(",")
    )
}

/// Runs one E16 arm: baseline warm-up wave, fault wave, detector replay
/// and telemetry reduction, all on `shards` shards.
pub fn run_telemetry_arm(
    seed: u64,
    vehicles: u32,
    shards: usize,
    arm: &TelemetryArm,
) -> TelemetryResult {
    // Phase 1: the clean warm-up every arm shares — it seeds the burn
    // gate's belief about baseline noise and hands the threshold detector
    // every chance to page on it.
    let clean_spec = Arc::new(CampaignSpec::standard(seed, vehicles, baseline_plan(seed)));
    let mut pool = ShardPool::spawn(clean_spec, shards);
    let (clean_outcomes, clean_metrics) = pool.run_wave(0, 0, vehicles, SimTime::ZERO);
    drop(pool);
    let onset = clean_outcomes
        .iter()
        .map(|o| o.completed)
        .max()
        .unwrap_or(SimTime::ZERO);

    // Phase 2: the same fleet under the arm's fault plan, offered at the
    // moment the warm-up drained.
    let fault_spec = Arc::new(CampaignSpec::standard(seed, vehicles, arm.plan.clone()));
    let mut pool = ShardPool::spawn(fault_spec, shards);
    let (fault_outcomes, fault_metrics) = pool.run_wave(1, 0, vehicles, onset);
    drop(pool);
    let fault_end = fault_outcomes
        .iter()
        .map(|o| o.completed)
        .max()
        .unwrap_or(onset);

    // Both detectors replay the identical batch series.
    let clean_batches = batch_series(&clean_outcomes);
    let fault_batches = batch_series(&fault_outcomes);
    let flight = Arc::new(FlightRecorder::new(256));
    let mut gate = SloBurnGate::new(SloSpec::error_fraction("e16.fleet.verify", E16_BUDGET));
    gate.attach_flight_recorder(Arc::clone(&flight));
    let mut threshold = DetectorStats::default();
    let mut burn = DetectorStats::default();
    for (series, incident) in [(&clean_batches, false), (&fault_batches, arm.breaks)] {
        for b in series {
            let fraction = b.bad as f64 / (b.good + b.bad) as f64;
            threshold.observe(fraction > E16_BUDGET, b.at, incident);
            let verdict = gate.observe(b.at, b.good, b.bad);
            burn.observe(verdict.trip_edge, b.at, incident);
        }
    }

    // The telemetry artifact: merged counters and stage sketches plus the
    // p99 trajectory ring, sampled once per phase.
    let registry = MetricsRegistry::new();
    let mut ring = TelemetryRing::new(8);
    publish_phase(&registry, &clean_metrics);
    sample_ring(&registry, &mut ring, onset);
    publish_phase(&registry, &fault_metrics);
    sample_ring(&registry, &mut ring, fault_end);
    let telemetry = format!(
        "{{\"arm\":\"{}\",\"snapshot\":{},\"series\":{}}}\n",
        arm.name,
        registry.snapshot().to_json().trim_end(),
        ring.to_json().trim_end(),
    );

    TelemetryResult {
        arm: arm.name,
        vehicles,
        clean_batches: clean_batches.len() as u64,
        fault_batches: fault_batches.len() as u64,
        threshold_false_alarms: threshold.false_alarms,
        threshold_ttd_ms: threshold.ttd_ms(onset),
        burn_false_alarms: burn.false_alarms,
        burn_ttd_ms: burn.ttd_ms(onset),
        trips: gate.trips(),
        dumps: gate.dumps(),
        fault_verify_failed: fault_metrics.verify_failed,
        fault_download_p99_ms: fault_metrics.download_ms.quantile(0.99),
        telemetry_bytes: telemetry.len() as u64,
        telemetry,
    }
}

/// Runs the standard three-arm E16 set.
pub fn run_telemetry_arms(seed: u64, vehicles: u32, shards: usize) -> Vec<TelemetryResult> {
    telemetry_arms(seed)
        .iter()
        .map(|arm| run_telemetry_arm(seed, vehicles, shards, arm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xE16_5EED;

    #[test]
    fn arms_are_deterministic_across_shard_counts() {
        let a = run_telemetry_arms(SEED, 3_000, 1);
        let b = run_telemetry_arms(SEED, 3_000, 3);
        assert_eq!(
            telemetry_arms_to_json(SEED, 3_000, &a),
            telemetry_arms_to_json(SEED, 3_000, &b),
            "E16 JSON must not depend on the shard count"
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.telemetry, y.telemetry,
                "{}: merged telemetry differs",
                x.arm
            );
        }
    }

    #[test]
    fn burn_gate_beats_threshold_without_losing_detection() {
        let results = run_telemetry_arms(SEED, 3_000, 2);
        let by_name = |n: &str| results.iter().find(|r| r.arm == n).expect("arm present");
        let thr_false: u64 = results.iter().map(|r| r.threshold_false_alarms).sum();
        let burn_false: u64 = results.iter().map(|r| r.burn_false_alarms).sum();
        assert!(
            thr_false > 0,
            "baseline noise must page the threshold detector"
        );
        assert!(
            burn_false < thr_false,
            "burn gate must page less: burn {burn_false} vs threshold {thr_false}"
        );

        let broken = by_name("broken");
        let (thr_ttd, burn_ttd) = (
            broken.threshold_ttd_ms.expect("threshold detects"),
            broken.burn_ttd_ms.expect("burn gate detects"),
        );
        assert!(
            burn_ttd <= thr_ttd,
            "burn gate must not detect later: burn {burn_ttd} vs threshold {thr_ttd}"
        );
        assert!(by_name("quiet").burn_ttd_ms.is_none());
        assert!(by_name("degraded").burn_ttd_ms.is_none());
    }

    #[test]
    fn every_trip_is_paired_with_a_dump() {
        for r in run_telemetry_arms(SEED, 3_000, 2) {
            assert_eq!(r.trips, r.dumps, "{}: trips must pair with dumps", r.arm);
        }
    }

    #[test]
    fn degraded_is_slow_not_broken() {
        let results = run_telemetry_arms(SEED, 3_000, 2);
        let by_name = |n: &str| results.iter().find(|r| r.arm == n).expect("arm present");
        let (quiet, degraded) = (by_name("quiet"), by_name("degraded"));
        assert_eq!(degraded.trips, 0, "loss and delay must not trip the SLO");
        assert!(
            degraded.fault_download_p99_ms > quiet.fault_download_p99_ms,
            "stage sketches must show the stretch: degraded {} vs quiet {}",
            degraded.fault_download_p99_ms,
            quiet.fault_download_p99_ms
        );
    }

    #[test]
    fn telemetry_artifact_round_trips() {
        let r = run_telemetry_arm(SEED, 1_000, 2, &telemetry_arms(SEED)[0]);
        assert_eq!(r.telemetry_bytes as usize, r.telemetry.len());
        let series = r
            .telemetry
            .split("\"series\":")
            .nth(1)
            .expect("series section");
        let series = &series[..series.rfind('}').expect("closing brace")];
        let ring = TelemetryRing::from_json(series).expect("ring parses back");
        assert_eq!(ring.len(), 2, "one sample per phase");
    }
}
