//! Shared helpers for the experiment harness.
//!
//! Every figure/experiment binary (see DESIGN.md §4) prints a TSV table via
//! [`Table`] so EXPERIMENTS.md can quote machine-readable rows, plus a
//! human-readable header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod chaos;
pub mod detect;
pub mod fleet;
pub mod platoon;
pub mod telemetry;

use dynplat_common::time::SimDuration;
use dynplat_common::{AppId, AppKind, Asil};
use dynplat_model::ir::AppModel;

/// A TSV table printer for experiment outputs.
#[derive(Debug)]
pub struct Table {
    columns: Vec<String>,
}

impl Table {
    /// Starts a table, printing the header row.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        println!("# {title}");
        println!("{}", columns.join("\t"));
        Table {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Prints one row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the header.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        println!("{}", cells.join("\t"));
    }
}

/// Formats a duration as fractional milliseconds for table cells.
pub fn ms(d: SimDuration) -> String {
    format!("{:.3}", d.as_nanos() as f64 / 1e6)
}

/// Formats a duration as fractional microseconds for table cells.
pub fn us(d: SimDuration) -> String {
    format!("{:.2}", d.as_nanos() as f64 / 1e3)
}

/// Generates a mixed vehicle function set: deterministic control/ADAS
/// functions (motor, suspension, ADAS domains) and non-deterministic
/// infotainment, with realistic period/work/memory spreads.
pub fn vehicle_functions(n: u32) -> Vec<AppModel> {
    (0..n)
        .map(|i| {
            let det = i % 3 != 2; // two thirds deterministic
            let period_ms = match i % 4 {
                0 => 5,
                1 => 10,
                2 => 20,
                _ => 50,
            };
            AppModel {
                id: AppId(i + 1),
                name: format!("fn{}", i + 1),
                kind: if det {
                    AppKind::Deterministic
                } else {
                    AppKind::NonDeterministic
                },
                asil: Asil::ALL[(i % 5) as usize],
                provides: vec![],
                consumes: vec![],
                period: SimDuration::from_millis(period_ms),
                work_mi: 0.5 + f64::from(i % 5) * 0.4,
                memory_kib: 128 + (i % 8) * 128,
                needs_gpu: false,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vehicle_functions_mix_kinds() {
        let fns = vehicle_functions(30);
        assert_eq!(fns.len(), 30);
        let det = fns
            .iter()
            .filter(|f| f.kind == AppKind::Deterministic)
            .count();
        assert!(det > 15 && det < 25);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(SimDuration::from_micros(1500)), "1.500");
        assert_eq!(us(SimDuration::from_nanos(2500)), "2.50");
    }
}
