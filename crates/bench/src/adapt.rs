//! The E14 uncertainty-adaptation experiment core.
//!
//! E12/E13 established *that* the robustness substrate detects and survives
//! faults. E14 asks the question behind the paper's title: what does the
//! platform gain by managing **uncertainty** — adapting on distributions —
//! instead of comparing points against thresholds?
//!
//! One experiment point runs the E12 chaos workload at a configured
//! background noise level with an Ethernet partition injected over the E13
//! fault span (onset at ⅓ of the horizon, offset at ⅔). The campaign's
//! per-window fault-pressure series is then replayed through two
//! adaptation modes over the *same* degradation ladder:
//!
//! * **threshold** — the classic [`DegradationManager::observe`]: one
//!   window at or above the threshold descends the ladder;
//! * **uncertainty** — a [`BoundaryEstimator`] turns the series into
//!   boundary-exceedance probabilities and
//!   [`DegradationManager::observe_estimate`] descends only on confident
//!   exceedance, ascending when the belief has cleared *and* the band has
//!   tightened.
//!
//! Replaying one shared series keeps the comparison exact: both modes see
//! byte-identical inputs, so every divergence is attributable to the
//! adaptation rule alone. The metrics are the false-degradation rate
//! (descents charged to clean windows, per clean window) and the detection
//! latency (fault onset to the first window whose trip condition fires).

use crate::chaos::{run_campaign_traced, sweep_plan, CampaignConfig};
use crate::detect::{offset, onset};
use crate::Table;
use dynplat_comm::retry::RetryPolicy;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::BusId;
use dynplat_core::degradation::{DegradationManager, UncertaintyGates};
use dynplat_monitor::uncertainty::{BoundaryConfig, BoundaryEstimator};

/// One background-noise level of the E14 sweep.
#[derive(Clone, Copy, Debug)]
pub struct NoisePoint {
    /// Sweep label (`low` / `mid` / `high`).
    pub name: &'static str,
    /// Per-message drop rate of the background noise plan.
    pub drop_rate: f64,
}

/// The standard sweep: background loss from negligible to just under the
/// degradation threshold. At `high`, window-to-window sampling noise makes
/// individual windows cross the threshold regularly while the underlying
/// signal stays healthy — exactly the regime where a point comparison
/// false-trips and a distribution does not.
pub fn noise_points() -> Vec<NoisePoint> {
    vec![
        NoisePoint {
            name: "low",
            drop_rate: 0.01,
        },
        NoisePoint {
            name: "mid",
            drop_rate: 0.02,
        },
        NoisePoint {
            name: "high",
            // Every attempt's request AND response cross the chaos fabric
            // (and corrupted copies count as losses), so the effective
            // per-attempt loss is ≈2.5× the per-message drop rate: 0.035
            // keeps the clean mean pressure just under the 0.10 boundary.
            drop_rate: 0.035,
        },
    ]
}

/// What one adaptation mode did over one replayed pressure series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModeStats {
    /// Ladder descents (transitions to a worse level).
    pub descents: u64,
    /// Descents charged to windows outside the injected fault span —
    /// adaptations the workload never asked for.
    pub false_descents: u64,
    /// Fault onset to the first fault-span window whose trip condition
    /// fired (`None` if the mode never detected the fault).
    pub detection_latency: Option<SimDuration>,
}

impl ModeStats {
    /// False descents per clean window.
    pub fn false_rate(&self, clean_windows: u64) -> f64 {
        if clean_windows == 0 {
            0.0
        } else {
            self.false_descents as f64 / clean_windows as f64
        }
    }
}

/// One sweep point: both modes over the same campaign.
#[derive(Clone, Debug)]
pub struct AdaptationResult {
    /// Noise label.
    pub noise: &'static str,
    /// Drop rate behind the label.
    pub drop_rate: f64,
    /// Windows replayed.
    pub windows: u64,
    /// Windows entirely outside the fault span.
    pub clean_windows: u64,
    /// Mean pressure over the clean windows (sweep sanity: must stay below
    /// the degradation threshold or the "false" in false-degradation is
    /// meaningless).
    pub mean_clean_pressure: f64,
    /// The point-threshold mode.
    pub threshold: ModeStats,
    /// The distribution mode.
    pub uncertainty: ModeStats,
}

impl AdaptationResult {
    /// Table row (stable formatting).
    pub fn row(&self) -> Vec<String> {
        let lat = |l: Option<SimDuration>| match l {
            Some(d) => format!("{:.1}", d.as_nanos() as f64 / 1e6),
            None => "-".to_owned(),
        };
        vec![
            self.noise.to_owned(),
            format!("{:.3}", self.drop_rate),
            format!("{:.4}", self.mean_clean_pressure),
            format!("{:.4}", self.threshold.false_rate(self.clean_windows)),
            format!("{:.4}", self.uncertainty.false_rate(self.clean_windows)),
            lat(self.threshold.detection_latency),
            lat(self.uncertainty.detection_latency),
            self.threshold.descents.to_string(),
            self.uncertainty.descents.to_string(),
        ]
    }

    /// Header matching [`AdaptationResult::row`].
    pub fn columns() -> [&'static str; 9] {
        [
            "noise",
            "drop_rate",
            "clean_pressure",
            "thr_false_rate",
            "unc_false_rate",
            "thr_detect_ms",
            "unc_detect_ms",
            "thr_descents",
            "unc_descents",
        ]
    }

    /// Prints this result as one row of `table`.
    pub fn print_row(&self, table: &Table) {
        table.row(&self.row());
    }

    /// One JSON object (hand-rolled like every snapshot in the workspace,
    /// schema `dynplat.e14.v1` fields).
    pub fn to_json(&self) -> String {
        let lat = |l: Option<SimDuration>| match l {
            Some(d) => format!("{}", d.as_nanos()),
            None => "null".to_owned(),
        };
        format!(
            concat!(
                "{{\"noise\":\"{}\",\"drop_rate\":{},\"windows\":{},",
                "\"clean_windows\":{},\"mean_clean_pressure\":{:.6},",
                "\"threshold\":{{\"descents\":{},\"false_descents\":{},\"detect_ns\":{}}},",
                "\"uncertainty\":{{\"descents\":{},\"false_descents\":{},\"detect_ns\":{}}}}}"
            ),
            self.noise,
            self.drop_rate,
            self.windows,
            self.clean_windows,
            self.mean_clean_pressure,
            self.threshold.descents,
            self.threshold.false_descents,
            lat(self.threshold.detection_latency),
            self.uncertainty.descents,
            self.uncertainty.false_descents,
            lat(self.uncertainty.detection_latency),
        )
    }
}

/// Serializes a whole sweep as a JSON document (schema `dynplat.e14.v1`).
pub fn sweep_to_json(seed: u64, results: &[AdaptationResult]) -> String {
    let rows: Vec<String> = results.iter().map(AdaptationResult::to_json).collect();
    format!(
        "{{\"schema\":\"dynplat.e14.v1\",\"seed\":{},\"points\":[{}]}}\n",
        seed,
        rows.join(",")
    )
}

/// Runs one E14 point: the E12 workload at `noise` background loss with an
/// Ethernet partition over the E13 fault span, replayed through both
/// adaptation modes.
///
/// # Panics
///
/// Panics if the horizon is too short to hold the fault span.
pub fn run_point(seed: u64, noise: NoisePoint, horizon: SimDuration) -> AdaptationResult {
    let from = onset(horizon);
    let until = offset(horizon);
    assert!(until > from, "horizon too short for a fault span");
    let plan = sweep_plan(seed, noise.drop_rate).partition(BusId(1), from, until);
    let mut cfg = CampaignConfig::new(seed, plan, RetryPolicy::standard(), "standard");
    cfg.horizon = horizon;
    let outcome = run_campaign_traced(&cfg, None);

    let window = cfg.window;
    let boundary = cfg.degradation.degraded_threshold;
    let gates = UncertaintyGates::default();
    // A window is inside the fault span if its (exclusive-start, inclusive-
    // end] span intersects [from, until).
    let faulty = |w_end: SimTime| w_end > from && w_end - window < until;

    let mut clean_windows = 0u64;
    let mut clean_pressure = 0.0;
    for &(w_end, p) in &outcome.pressures {
        if !faulty(w_end) {
            clean_windows += 1;
            clean_pressure += p;
        }
    }

    // Threshold mode: the ladder as E12 runs it.
    let mut thr_ladder = DegradationManager::new(cfg.degradation);
    let mut thr = ModeStats {
        descents: 0,
        false_descents: 0,
        detection_latency: None,
    };
    let mut prev = thr_ladder.level();
    for &(w_end, p) in &outcome.pressures {
        if faulty(w_end) && thr.detection_latency.is_none() && p >= boundary {
            thr.detection_latency = Some(w_end.saturating_since(from));
        }
        if let Some(level) = thr_ladder.observe(w_end, p) {
            if level > prev {
                thr.descents += 1;
                if !faulty(w_end) {
                    thr.false_descents += 1;
                }
            }
            prev = level;
        }
    }

    // Uncertainty mode: same series, same ladder parameters, but the
    // estimator sits between the signal and the ladder.
    let mut unc_ladder = DegradationManager::new(cfg.degradation);
    let mut estimator = BoundaryEstimator::new(BoundaryConfig::for_boundary(boundary));
    let mut unc = ModeStats {
        descents: 0,
        false_descents: 0,
        detection_latency: None,
    };
    let mut prev = unc_ladder.level();
    for &(w_end, p) in &outcome.pressures {
        let est = estimator.ingest(w_end, p);
        if faulty(w_end)
            && unc.detection_latency.is_none()
            && est.exceeds_with_confidence(gates.trip_confidence)
        {
            unc.detection_latency = Some(w_end.saturating_since(from));
        }
        if let Some(level) = unc_ladder.observe_estimate(w_end, &est, &gates) {
            if level > prev {
                unc.descents += 1;
                if !faulty(w_end) {
                    unc.false_descents += 1;
                }
            }
            prev = level;
        }
    }

    AdaptationResult {
        noise: noise.name,
        drop_rate: noise.drop_rate,
        windows: outcome.pressures.len() as u64,
        clean_windows,
        mean_clean_pressure: if clean_windows == 0 {
            0.0
        } else {
            clean_pressure / clean_windows as f64
        },
        threshold: thr,
        uncertainty: unc,
    }
}

/// Runs the full noise sweep.
pub fn run_sweep(seed: u64, horizon: SimDuration) -> Vec<AdaptationResult> {
    noise_points()
        .into_iter()
        .map(|n| run_point(seed, n, horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xE14_5EED;

    #[test]
    fn sweep_is_deterministic() {
        let h = SimDuration::from_secs(3);
        let a: Vec<String> = run_sweep(SEED, h).iter().map(|r| r.to_json()).collect();
        let b: Vec<String> = run_sweep(SEED, h).iter().map(|r| r.to_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn clean_pressure_stays_below_the_boundary() {
        for r in run_sweep(SEED, SimDuration::from_secs(6)) {
            assert!(
                r.mean_clean_pressure < 0.10,
                "{}: clean mean {} not below the threshold — the sweep point \
                 is mis-calibrated",
                r.noise,
                r.mean_clean_pressure
            );
        }
    }

    #[test]
    fn both_modes_detect_the_partition() {
        for r in run_sweep(SEED, SimDuration::from_secs(6)) {
            assert!(
                r.threshold.detection_latency.is_some(),
                "{}: threshold mode missed the partition",
                r.noise
            );
            assert!(
                r.uncertainty.detection_latency.is_some(),
                "{}: uncertainty mode missed the partition",
                r.noise
            );
        }
    }

    #[test]
    fn uncertainty_mode_wins_on_false_degradations_at_noise() {
        // The acceptance criterion of E14: at mid and high noise the
        // distribution-driven ladder produces strictly fewer false
        // degradations at equal-or-better detection latency.
        for r in run_sweep(SEED, SimDuration::from_secs(6)) {
            if r.noise == "low" {
                continue;
            }
            assert!(
                r.uncertainty.false_descents < r.threshold.false_descents,
                "{}: uncertainty {} vs threshold {} false descents",
                r.noise,
                r.uncertainty.false_descents,
                r.threshold.false_descents
            );
            let (t, u) = (
                r.threshold
                    .detection_latency
                    .expect("threshold mode detects"),
                r.uncertainty
                    .detection_latency
                    .expect("uncertainty mode detects"),
            );
            assert!(
                u <= t,
                "{}: uncertainty latency {u} worse than threshold {t}",
                r.noise
            );
        }
    }
}
