//! The E12 chaos-campaign core (§3.3, §3.4).
//!
//! One campaign runs a mixed-criticality request/response workload — a
//! deterministic ASIL-D control loop plus several QM infotainment
//! clients — over a [`ChaosFabric`] that perturbs every message according
//! to a [`FaultPlan`]. The platform side fights back with the full
//! robustness stack: retry/backoff schedules ([`RetryPolicy`]), a circuit
//! breaker that declares the bound provider dead, service-directory
//! rebinding to a live alternate offer, and the criticality-aware
//! degradation ladder ([`DegradationManager`]) shedding QM load under
//! fault pressure.
//!
//! The campaign is a pure function of its [`CampaignConfig`]: every
//! stochastic decision derives from the config seed, all bookkeeping uses
//! ordered maps, and the [`CampaignSummary`] (including its formatted
//! table row) is byte-identical across runs with the same config.

use crate::Table;
use dynplat_comm::fabric::{Fabric, MessageSend};
use dynplat_comm::retry::{CircuitBreaker, RetryPolicy};
use dynplat_comm::sd::{SdEntry, ServiceDirectory};
use dynplat_common::ids::ServiceInstance;
use dynplat_common::rng::split_seed;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppKind, Asil, BusId, DegradationLevel, EcuId, ServiceId, TaskId, VehicleId};
use dynplat_core::degradation::{DegradationConfig, DegradationManager};
use dynplat_faults::{ChaosFabric, FaultPlan, InjectedFault};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_monitor::anomaly::{DriftDetector, DriftVerdict};
use dynplat_monitor::fault::{Fault, FaultKind, FaultRecorder};
use dynplat_monitor::report::DiagnosticReport;
use dynplat_net::TrafficClass;
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The service under test.
pub const SERVICE: ServiceId = ServiceId(10);
/// Request/response payload in bytes.
const PAYLOAD: usize = 64;
/// Server-side processing time between request arrival and response send.
const SERVER_PROC: SimDuration = SimDuration::from_micros(200);

/// One chaos-campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed: drives the fault plan and every retry-jitter draw.
    pub seed: u64,
    /// What to inject (the plan's own seed is overridden by `seed`).
    pub plan: FaultPlan,
    /// Retry policy protecting the deterministic client. QM clients always
    /// run single-shot — exactly the asymmetry the ladder exists for.
    pub policy: RetryPolicy,
    /// Label for the policy column.
    pub policy_name: &'static str,
    /// Campaign length.
    pub horizon: SimDuration,
    /// Request period of every client.
    pub period: SimDuration,
    /// Round deadline, measured from the round's first attempt.
    pub deadline: SimDuration,
    /// Accounting/degradation window.
    pub window: SimDuration,
    /// Number of QM clients riding along with the ASIL-D control loop.
    pub nda_clients: u64,
    /// Degradation-ladder thresholds.
    pub degradation: DegradationConfig,
    /// Consecutive DA round failures before the breaker trips.
    pub breaker_threshold: u32,
    /// Breaker open-state cooldown.
    pub breaker_cooldown: SimDuration,
    /// When a breaker trip finds no alternate provider, keep the breaker
    /// *open* instead of resetting it: DA rounds stop transmitting until
    /// the cool-down admits a half-open probe, exercising the full
    /// Open → HalfOpen → Closed recovery cycle. Off by default (legacy
    /// behavior: reset and keep hammering).
    pub hold_breaker_when_isolated: bool,
}

impl CampaignConfig {
    /// A campaign with the default workload shape: 6 s horizon, 50 ms
    /// period, 40 ms deadline, 250 ms windows, 3 QM clients.
    pub fn new(seed: u64, plan: FaultPlan, policy: RetryPolicy, policy_name: &'static str) -> Self {
        CampaignConfig {
            seed,
            plan,
            policy,
            policy_name,
            horizon: SimDuration::from_secs(6),
            period: SimDuration::from_millis(50),
            deadline: SimDuration::from_millis(40),
            window: SimDuration::from_millis(250),
            nda_clients: 3,
            degradation: DegradationConfig::default(),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_millis(100),
            hold_breaker_when_isolated: false,
        }
    }
}

/// The deterministic outcome of one campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSummary {
    /// Policy label from the config.
    pub policy_name: &'static str,
    /// ASIL-D rounds attempted.
    pub da_rounds: u64,
    /// ASIL-D rounds with no response inside the deadline.
    pub da_misses: u64,
    /// QM rounds scheduled (attempted + shed).
    pub nda_rounds: u64,
    /// QM rounds attempted but missed.
    pub nda_misses: u64,
    /// QM rounds shed by the degradation ladder.
    pub nda_shed: u64,
    /// Request attempts put on the wire.
    pub attempts_sent: u64,
    /// Attempts that never saw a response.
    pub attempts_lost: u64,
    /// Provider rebinds after breaker trips.
    pub failovers: u64,
    /// First-failure-to-breaker-trip latency of the first failover.
    pub detection_latency: Option<SimDuration>,
    /// Time from leaving `Full` to the final return to `Full`.
    pub recovery_time: Option<SimDuration>,
    /// Deepest degradation level reached.
    pub worst_level: DegradationLevel,
    /// Losses the injector actually caused (its recorder's view).
    pub injected_losses: u64,
    /// Losses the client side detected (missing responses).
    pub detected_losses: u64,
    /// Ladder transitions, in order.
    pub transitions: Vec<(SimTime, DegradationLevel)>,
    /// The E7-shaped diagnostic report carrying counters + transitions.
    pub report: DiagnosticReport,
}

impl CampaignSummary {
    /// DA deadline-miss rate.
    pub fn da_miss_rate(&self) -> f64 {
        ratio(self.da_misses, self.da_rounds)
    }

    /// QM degradation rate: rounds missed or shed, over rounds scheduled.
    pub fn nda_degraded_rate(&self) -> f64 {
        ratio(self.nda_misses + self.nda_shed, self.nda_rounds)
    }

    /// The table row for this campaign (stable formatting — two runs with
    /// the same config produce byte-identical rows).
    pub fn row(&self, scenario: &str) -> Vec<String> {
        vec![
            scenario.to_owned(),
            self.policy_name.to_owned(),
            format!("{:.4}", self.da_miss_rate()),
            format!("{:.4}", self.nda_degraded_rate()),
            self.nda_shed.to_string(),
            self.failovers.to_string(),
            opt_ms(self.detection_latency),
            opt_ms(self.recovery_time),
            self.worst_level.to_string(),
            self.injected_losses.to_string(),
            self.detected_losses.to_string(),
        ]
    }

    /// Header matching [`CampaignSummary::row`].
    pub fn columns() -> [&'static str; 11] {
        [
            "scenario",
            "policy",
            "da_miss_rate",
            "nda_degraded_rate",
            "nda_shed",
            "failovers",
            "detect_ms",
            "recovery_ms",
            "worst_level",
            "injected_losses",
            "detected_losses",
        ]
    }

    /// Prints this summary as one row of `table`.
    pub fn print_row(&self, table: &Table, scenario: &str) {
        table.row(&self.row(scenario));
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn opt_ms(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => format!("{:.3}", d.as_nanos() as f64 / 1e6),
        None => "-".to_owned(),
    }
}

/// ecu0 (body, CAN) — ecu1 (gateway, clients) — ecu2 (adas, primary server).
fn campaign_topology() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
            EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
        ],
        [
            BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
            BusSpec::new(
                BusId(1),
                "eth0",
                BusKind::ethernet_100m(),
                [EcuId(1), EcuId(2)],
            ),
        ],
    )
    .expect("static campaign topology is valid")
}

struct ClientApp {
    idx: u64,
    host: EcuId,
    kind: AppKind,
    asil: Asil,
    policy: RetryPolicy,
    class: TrafficClass,
    priority: u32,
}

// Correlation-id layout: | app (bits 41..) | round (9..41) | attempt (1..9) | resp (0) |
fn msg_id(app: u64, round: u64, attempt: u64, resp: bool) -> u64 {
    (app << 41) | (round << 9) | (attempt << 1) | u64::from(resp)
}

/// Trace id of a (app, round) causal chain: the round's base correlation
/// id, offset so app 0 / round 0 does not collide with the reserved
/// "untraced" id 0. Attempts are spans within the chain; responses
/// inherit the request's context.
fn round_trace(app: u64, round: u64) -> u64 {
    msg_id(app, round, 0, false) + 1
}

fn decode_id(id: u64) -> (u64, u64, u64, bool) {
    (
        id >> 41,
        (id >> 9) & 0xFFFF_FFFF,
        (id >> 1) & 0xFF,
        id & 1 == 1,
    )
}

/// Everything a traced campaign run observed: the summary plus the raw
/// material of the E13 detection-latency measurement.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The deterministic summary ([`run_campaign`]'s return value).
    pub summary: CampaignSummary,
    /// The injector's log: what was injected, and when.
    pub injections: Vec<InjectedFault>,
    /// Non-`Normal` verdicts of a [`DriftDetector`] fed the per-round
    /// control-loop RTT (missed rounds count as the deadline), in time
    /// order.
    pub drift_verdicts: Vec<(SimTime, DriftVerdict)>,
    /// Per-window fault pressure `(window end, attempt-loss ratio)` — the
    /// exact series the ladder observed, and the raw material the E14
    /// threshold-vs-uncertainty comparison replays.
    pub pressures: Vec<(SimTime, f64)>,
    /// Half-open probes the DA breaker admitted over the campaign.
    pub breaker_probes: u64,
}

/// Runs one campaign to completion.
///
/// # Panics
///
/// Panics if the config's fault plan fails validation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignSummary {
    run_campaign_traced(cfg, None).summary
}

/// [`run_campaign`] with causal tracing: every request is stamped with a
/// per-(app, round) [`TraceCtx`] (responses inherit it), the optional
/// flight recorder sees the full message lifecycle plus every injection
/// and detection, and a [`DriftDetector`] watches the control loop's RTT.
///
/// With `flight == None` and the drift verdicts ignored this is exactly
/// [`run_campaign`]; the summary is bit-identical either way.
///
/// # Panics
///
/// Panics if the config's fault plan fails validation.
pub fn run_campaign_traced(
    cfg: &CampaignConfig,
    flight: Option<Arc<FlightRecorder>>,
) -> CampaignOutcome {
    let mut plan = cfg.plan.clone();
    plan.seed = cfg.seed;
    let mut chaos = ChaosFabric::new(Fabric::new(campaign_topology()), plan);
    if let Some(fr) = &flight {
        chaos.attach_flight_recorder(fr.clone());
    }

    // Two providers of the service: primary on the fast Ethernet leg,
    // backup reachable over CAN. Offers outlive the horizon; breaker trips
    // withdraw them explicitly.
    let primary = ServiceInstance::new(SERVICE, 0);
    let backup = ServiceInstance::new(SERVICE, 1);
    let offer_ttl = cfg.horizon + cfg.horizon;
    let hosts: BTreeMap<ServiceInstance, EcuId> = [(primary, EcuId(2)), (backup, EcuId(0))].into();
    let mut directory = ServiceDirectory::new();
    for (instance, host) in &hosts {
        directory.apply(
            SimTime::ZERO,
            &SdEntry::Offer {
                instance: *instance,
                host: *host,
                version: 1,
                ttl: offer_ttl,
            },
        );
    }
    let mut bound = primary;
    let mut bound_host = hosts[&primary];

    let mut apps = vec![ClientApp {
        idx: 0,
        host: EcuId(1),
        kind: AppKind::Deterministic,
        asil: Asil::D,
        policy: cfg.policy,
        class: TrafficClass::Critical,
        priority: 0,
    }];
    for i in 0..cfg.nda_clients {
        apps.push(ClientApp {
            idx: 1 + i,
            host: EcuId(1),
            kind: AppKind::NonDeterministic,
            asil: Asil::Qm,
            policy: RetryPolicy::none(),
            class: TrafficClass::BestEffort,
            priority: 5,
        });
    }
    let client_traits: BTreeMap<u64, (EcuId, TrafficClass, u32)> = apps
        .iter()
        .map(|a| (a.idx, (a.host, a.class, a.priority)))
        .collect();

    let mut breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown);
    let mut ladder = DegradationManager::new(cfg.degradation);
    let mut detected = FaultRecorder::new(8192);
    if let Some(fr) = &flight {
        detected = detected.with_flight(fr.clone());
        ladder.attach_flight_recorder(fr.clone());
    }
    // Watches the DA round-trip time for trends; missed rounds are
    // ingested as the full deadline (the worst the client can observe).
    let mut drift = DriftDetector::for_bound(cfg.deadline.as_nanos() as f64);
    let mut drift_verdicts: Vec<(SimTime, DriftVerdict)> = Vec::new();

    let mut summary = CampaignSummary {
        policy_name: cfg.policy_name,
        da_rounds: 0,
        da_misses: 0,
        nda_rounds: 0,
        nda_misses: 0,
        nda_shed: 0,
        attempts_sent: 0,
        attempts_lost: 0,
        failovers: 0,
        detection_latency: None,
        recovery_time: None,
        worst_level: DegradationLevel::Full,
        injected_losses: 0,
        detected_losses: 0,
        transitions: Vec::new(),
        report: DiagnosticReport::capture(VehicleId(1), SimTime::ZERO, &[], Vec::new()),
    };
    let mut streak_start: Option<SimTime> = None;
    let mut pressures: Vec<(SimTime, f64)> = Vec::new();
    // The breaker object is replaced on rebind/reset; accumulate its
    // half-open probe count across generations.
    let mut breaker_probes = 0u64;

    let rounds_total = cfg.horizon / cfg.period;
    let windows = cfg.horizon.as_nanos().div_ceil(cfg.window.as_nanos());
    let mut next_round = 0u64;

    for w in 0..windows {
        let w_end = SimTime::ZERO + cfg.window * (w + 1);
        // Plan this window's rounds under the level in force at its start.
        let mut sends = Vec::new();
        // (round, app) -> (round deadline, is_da); chronological order.
        let mut rounds: BTreeMap<(u64, u64), (SimTime, bool)> = BTreeMap::new();
        let mut attempt_deadline: BTreeMap<u64, SimTime> = BTreeMap::new();
        while next_round < rounds_total && SimTime::ZERO + cfg.period * next_round < w_end {
            let r = next_round;
            next_round += 1;
            for app in &apps {
                // Stagger clients so their attempts don't collide exactly.
                let t0 = SimTime::ZERO + cfg.period * r + SimDuration::from_millis(app.idx);
                let is_da = app.kind.is_deterministic();
                if !ladder.admits(app.kind, app.asil) {
                    summary.nda_shed += 1;
                    summary.nda_rounds += 1;
                    continue;
                }
                if is_da && cfg.hold_breaker_when_isolated && !breaker.allows(t0) {
                    // Circuit open with nowhere to fail over: the round is
                    // still planned (and will be charged as a miss) but
                    // nothing is transmitted until the cool-down admits a
                    // half-open probe.
                    rounds.insert((r, app.idx), (t0 + cfg.deadline, is_da));
                    continue;
                }
                let round_seed = split_seed(split_seed(cfg.seed, 0x100 + app.idx), r);
                for attempt in app.policy.schedule(t0, round_seed) {
                    let id = msg_id(app.idx, r, u64::from(attempt.number), false);
                    sends.push(MessageSend {
                        id,
                        time: attempt.send_at,
                        src: app.host,
                        dst: bound_host,
                        payload: PAYLOAD,
                        class: app.class,
                        priority: app.priority,
                        trace: TraceCtx::new(round_trace(app.idx, r), u64::from(attempt.number)),
                    });
                    attempt_deadline.insert(id, attempt.deadline);
                    summary.attempts_sent += 1;
                }
                rounds.insert((r, app.idx), (t0 + cfg.deadline, is_da));
            }
        }

        let server = bound_host;
        let deliveries = chaos.run(sends, |d| {
            let (app, round, attempt, resp) = decode_id(d.id);
            if resp {
                return Vec::new();
            }
            let (client, class, priority) = client_traits[&app];
            vec![MessageSend {
                id: msg_id(app, round, attempt, true),
                time: d.delivered + SERVER_PROC,
                src: server,
                dst: client,
                payload: PAYLOAD,
                class,
                priority,
                trace: d.trace,
            }]
        });

        // Earliest response per round; which attempts got any response.
        let mut earliest: BTreeMap<(u64, u64), SimTime> = BTreeMap::new();
        let mut answered: BTreeSet<u64> = BTreeSet::new();
        for d in &deliveries {
            let (app, round, attempt, resp) = decode_id(d.id);
            if !resp {
                continue;
            }
            answered.insert(msg_id(app, round, attempt, false));
            let slot = earliest.entry((round, app)).or_insert(d.delivered);
            *slot = (*slot).min(d.delivered);
        }
        let window_attempts = attempt_deadline.len() as u64;
        let mut window_lost = 0u64;
        for (id, deadline) in &attempt_deadline {
            if !answered.contains(id) {
                window_lost += 1;
                let (app, round, attempt, _) = decode_id(*id);
                detected.record(Fault {
                    time: *deadline,
                    task: TaskId(app as u32),
                    kind: FaultKind::MessageLoss,
                    detail: format!("round {round} attempt {attempt} unanswered"),
                });
            }
        }
        summary.attempts_lost += window_lost;

        for ((round, app), (deadline, is_da)) in &rounds {
            let ok = earliest.get(&(*round, *app)).is_some_and(|t| t <= deadline);
            if *is_da {
                summary.da_rounds += 1;
                let round_start = *deadline - cfg.deadline;
                let (sample_at, rtt) = match earliest.get(&(*round, *app)) {
                    Some(t) if *t <= *deadline => (*t, t.saturating_since(round_start)),
                    _ => (*deadline, cfg.deadline),
                };
                let verdict = drift.ingest(rtt.as_nanos() as f64);
                if verdict != DriftVerdict::Normal {
                    drift_verdicts.push((sample_at, verdict));
                }
                if ok {
                    breaker.on_success();
                    streak_start = None;
                    continue;
                }
                summary.da_misses += 1;
                detected.record(Fault {
                    time: *deadline,
                    task: TaskId(*app as u32),
                    kind: FaultKind::DeadlineMiss,
                    detail: format!("control round {round} missed"),
                });
                let t0 = *deadline - cfg.deadline;
                if streak_start.is_none() {
                    streak_start = Some(t0);
                }
                if breaker.on_failure(*deadline) {
                    // The breaker declares the bound provider dead: tell
                    // SD, rebind to a live alternate if one exists.
                    if summary.detection_latency.is_none() {
                        summary.detection_latency =
                            Some(deadline.saturating_since(streak_start.unwrap_or(t0)));
                    }
                    directory.apply(*deadline, &SdEntry::StopOffer { instance: bound });
                    if let Some((instance, host)) = directory
                        .rebind(*deadline, bound)
                        .map(|o| (o.instance, o.host))
                    {
                        detected.record(Fault {
                            time: *deadline,
                            task: TaskId(*app as u32),
                            kind: FaultKind::NodeFailure,
                            detail: format!("provider on {bound_host} declared dead"),
                        });
                        bound = instance;
                        bound_host = host;
                        summary.failovers += 1;
                        // Fresh provider, fresh breaker.
                        breaker_probes += breaker.probes();
                        breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown);
                    } else {
                        // Nowhere to go: restore the offer and keep trying.
                        directory.apply(
                            *deadline,
                            &SdEntry::Offer {
                                instance: bound,
                                host: bound_host,
                                version: 1,
                                ttl: offer_ttl,
                            },
                        );
                        if !cfg.hold_breaker_when_isolated {
                            breaker_probes += breaker.probes();
                            breaker =
                                CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown);
                        }
                    }
                    streak_start = None;
                }
            } else {
                summary.nda_rounds += 1;
                if !ok {
                    summary.nda_misses += 1;
                }
            }
        }

        // Attempt-level loss fraction is the ladder's fault pressure.
        let pressure = ratio(window_lost, window_attempts);
        pressures.push((w_end, pressure));
        ladder.observe(w_end, pressure);
        directory.expire(w_end);
    }
    breaker_probes += breaker.probes();

    summary.transitions = ladder.transitions().to_vec();
    summary.worst_level = summary
        .transitions
        .iter()
        .map(|(_, level)| *level)
        .max()
        .unwrap_or(DegradationLevel::Full);
    summary.recovery_time = recovery_time(&summary.transitions, ladder.level());
    let injected = chaos.injector().recorder();
    summary.injected_losses =
        injected.count(FaultKind::MessageLoss) + injected.count(FaultKind::MessageCorruption);
    summary.detected_losses = detected.count(FaultKind::MessageLoss);
    let faults = detected.drain();
    summary.report =
        DiagnosticReport::capture(VehicleId(1), SimTime::ZERO + cfg.horizon, &[], faults)
            .with_fault_counts(&detected)
            .with_degradation(summary.transitions.iter().copied());
    CampaignOutcome {
        summary,
        injections: chaos.injector().log().to_vec(),
        drift_verdicts,
        pressures,
        breaker_probes,
    }
}

/// Time from first leaving `Full` to the final return to `Full`; `None`
/// if the ladder never escalated or never fully recovered.
fn recovery_time(
    transitions: &[(SimTime, DegradationLevel)],
    final_level: DegradationLevel,
) -> Option<SimDuration> {
    if final_level != DegradationLevel::Full {
        return None;
    }
    let first_up = transitions
        .iter()
        .find(|(_, l)| *l != DegradationLevel::Full)
        .map(|(t, _)| *t)?;
    let last_full = transitions
        .iter()
        .rev()
        .find(|(_, l)| *l == DegradationLevel::Full)
        .map(|(t, _)| *t)?;
    Some(last_full.saturating_since(first_up))
}

/// The standard stochastic plan of the fault-rate sweep: drops at `rate`,
/// corruption at half, a sprinkle of duplicates and delay spikes.
pub fn sweep_plan(seed: u64, rate: f64) -> FaultPlan {
    if rate == 0.0 {
        return FaultPlan::quiet(seed);
    }
    FaultPlan::quiet(seed)
        .with_message_faults(rate, rate * 0.5, 0.02)
        .with_delay_spikes(0.05, SimDuration::from_millis(2))
}

/// The burst scenario: a clean network except for a 500 ms partition of
/// the Ethernet leg at t = 2 s — the primary provider disappears and the
/// platform must detect, fail over to the CAN-attached backup, and walk
/// the ladder back down.
pub fn burst_plan(seed: u64) -> FaultPlan {
    FaultPlan::quiet(seed).partition(BusId(1), SimTime::from_secs(2), SimTime::from_millis(2_500))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_campaign_is_perfect() {
        let cfg = CampaignConfig::new(7, FaultPlan::quiet(7), RetryPolicy::standard(), "standard");
        let s = run_campaign(&cfg);
        assert_eq!(s.da_misses, 0);
        assert_eq!(s.nda_misses + s.nda_shed, 0);
        assert_eq!(s.failovers, 0);
        assert_eq!(s.worst_level, DegradationLevel::Full);
        assert_eq!(s.injected_losses, 0);
        assert_eq!(s.detected_losses, 0);
        assert_eq!(s.da_rounds, 120);
        assert_eq!(s.nda_rounds, 360);
    }

    #[test]
    fn same_seed_same_summary() {
        let cfg = CampaignConfig::new(42, sweep_plan(42, 0.1), RetryPolicy::standard(), "standard");
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.row("rate=0.10"), b.row("rate=0.10"));
        assert!(a.attempts_lost > 0, "a 10% plan must actually hurt");
    }

    #[test]
    fn retries_protect_the_control_loop() {
        let seed = 11;
        let none = run_campaign(&CampaignConfig::new(
            seed,
            sweep_plan(seed, 0.15),
            RetryPolicy::none(),
            "none",
        ));
        let standard = run_campaign(&CampaignConfig::new(
            seed,
            sweep_plan(seed, 0.15),
            RetryPolicy::standard(),
            "standard",
        ));
        assert!(
            standard.da_miss_rate() < none.da_miss_rate(),
            "retries must reduce DA misses: {} vs {}",
            standard.da_miss_rate(),
            none.da_miss_rate()
        );
    }

    #[test]
    fn burst_triggers_failover_and_recovery() {
        let cfg = CampaignConfig::new(5, burst_plan(5), RetryPolicy::standard(), "standard");
        let s = run_campaign(&cfg);
        assert_eq!(s.failovers, 1, "one rebind to the backup provider");
        assert!(s.detection_latency.is_some());
        assert!(s.worst_level > DegradationLevel::Full);
        assert!(
            s.recovery_time.is_some(),
            "ladder must walk back to Full after the partition: {:?}",
            s.transitions
        );
        assert!(s.nda_shed > 0, "QM load is shed while degraded");
        // The report carries the same story (shared E7 reporting path).
        assert_eq!(s.report.worst_degradation(), Some(s.worst_level));
        assert!(s.report.fault_counts[&FaultKind::NodeFailure] >= 1);
    }
}
