//! E14 (§3.5): threshold- vs uncertainty-driven adaptation.
//!
//! Sweeps background noise levels over the E12 chaos workload with an
//! Ethernet partition injected over the E13 fault span, replaying each
//! run's fault-pressure series through the point-threshold degradation
//! ladder and through the [`BoundaryEstimator`]-gated ladder. Prints, per
//! noise level, the false-degradation rate and the detection latency of
//! both modes over byte-identical inputs.
//!
//! Flags:
//!
//! * `--horizon-ms N` — campaign horizon per sweep point (default 6000);
//! * `--out PATH` — write the sweep as JSON (schema `dynplat.e14.v1`)
//!   for artifact upload.
//!
//! Everything is seed-deterministic: running this binary twice prints
//! byte-identical tables and bytes-identical JSON.
//!
//! [`BoundaryEstimator`]: dynplat_monitor::uncertainty::BoundaryEstimator

#![forbid(unsafe_code)]

use dynplat_bench::adapt::{run_sweep, sweep_to_json, AdaptationResult};
use dynplat_bench::Table;
use dynplat_common::time::SimDuration;

const SEED: u64 = 0xE14_5EED;

fn main() {
    let mut horizon = SimDuration::from_millis(6_000);
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--horizon-ms" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("--horizon-ms needs an integer");
                horizon = SimDuration::from_millis(v);
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other}"),
        }
    }

    let table = Table::new(
        &format!(
            "E14 — threshold vs uncertainty adaptation (seed {SEED:#x}, horizon {:.1}s)",
            horizon.as_secs_f64()
        ),
        &AdaptationResult::columns(),
    );
    let results = run_sweep(SEED, horizon);
    for r in &results {
        r.print_row(&table);
    }
    let wins = results
        .iter()
        .filter(|r| r.uncertainty.false_descents < r.threshold.false_descents)
        .count();
    println!(
        "# uncertainty mode strictly fewer false degradations on {}/{} points",
        wins,
        results.len()
    );

    if let Some(path) = out_path {
        std::fs::write(&path, sweep_to_json(SEED, &results)).expect("write E14 sweep JSON");
        println!("# sweep written to {path}");
    }
}
