//! E2 (Fig. 2): mixed-criticality freedom of interference on one ECU.
//!
//! Deterministic control tasks share a CPU with growing non-deterministic
//! load under four policies. Expected shape: the no-isolation FIFO baseline
//! misses DA deadlines as soon as NDA jobs are long; preemptive fixed
//! priority, the budget server and the time-triggered table keep the DA
//! miss rate at zero at any NDA load, with TT additionally minimizing DA
//! jitter; the platform still gives NDA work bounded throughput.

#![forbid(unsafe_code)]

use dynplat_bench::{ms, Table};
use dynplat_common::time::SimDuration;
use dynplat_common::TaskId;
use dynplat_sched::server::PeriodicServer;
use dynplat_sched::simulate::{simulate_schedule, Policy, SchedSimConfig};
use dynplat_sched::task::{TaskSet, TaskSpec};
use dynplat_sched::tt;

fn da_tasks() -> Vec<TaskSpec> {
    vec![
        TaskSpec::periodic(
            TaskId(1),
            "ctrl-2ms",
            SimDuration::from_millis(2),
            SimDuration::from_micros(200),
        )
        .with_priority(0),
        TaskSpec::periodic(
            TaskId(2),
            "ctrl-10ms",
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
        )
        .with_priority(1),
        TaskSpec::periodic(
            TaskId(3),
            "adas-20ms",
            SimDuration::from_millis(20),
            SimDuration::from_micros(1500),
        )
        .with_priority(2),
    ]
}

fn set_with_nda(nda_wcet_ms: u64) -> TaskSet {
    let mut set: TaskSet = da_tasks().into_iter().collect();
    if nda_wcet_ms > 0 {
        set.push(
            TaskSpec::periodic(
                TaskId(50),
                "infotainment",
                SimDuration::from_millis(40),
                SimDuration::from_millis(nda_wcet_ms),
            )
            .with_priority(100)
            .non_deterministic(),
        );
    }
    set
}

fn main() {
    let cfg = SchedSimConfig {
        horizon: SimDuration::from_millis(2000),
        ..Default::default()
    };
    let da_only: TaskSet = da_tasks().into_iter().collect();
    let schedule = tt::synthesize(&da_only).expect("DA set synthesizes");

    let table = Table::new(
        "E2 / Fig.2 — DA deadline misses vs NDA load under four policies",
        &[
            "nda_wcet_ms",
            "nda_load",
            "policy",
            "da_miss_rate",
            "da_jitter_ms",
            "nda_completions",
        ],
    );
    for nda_ms in [0u64, 5, 10, 20, 30] {
        let set = set_with_nda(nda_ms);
        let nda_load = nda_ms as f64 / 40.0;
        let policies: Vec<(&str, Policy)> = vec![
            ("fifo-no-isolation", Policy::NonPreemptiveFifo),
            ("fixed-priority", Policy::FixedPriorityPreemptive),
            (
                "fp+server",
                Policy::FpWithServer(PeriodicServer::new(
                    SimDuration::from_millis(15),
                    SimDuration::from_millis(40),
                )),
            ),
            ("time-triggered", Policy::TimeTriggered(schedule.clone())),
        ];
        for (name, policy) in policies {
            let stats = simulate_schedule(&set, &policy, &cfg);
            table.row(&[
                nda_ms.to_string(),
                format!("{nda_load:.2}"),
                name.to_owned(),
                format!("{:.4}", stats.deterministic_miss_rate()),
                ms(stats.max_deterministic_jitter()),
                stats.non_deterministic_throughput().to_string(),
            ]);
        }
    }
}
