//! E15 (§4.1): staged OTA campaigns over a sharded simulated fleet.
//!
//! Runs the three-arm fleet experiment — quiet, degraded network, broken
//! image — through the `dynplat-fleet` update master and prints, per arm,
//! the admission throughput, the campaign completion-time distribution and
//! the straggler/rollback figures.
//!
//! Flags:
//!
//! * `--vehicles N` — fleet size per arm (default 200000);
//! * `--shards N` — sim kernels to shard the fleet over (default 4);
//! * `--out PATH` — write the run as JSON (schema `dynplat.e15.v1`)
//!   for artifact upload.
//!
//! Every figure in the table and the JSON lives on the simulated clock, so
//! output is byte-identical across reruns **and across `--shards` values**
//! — `scripts/ci.sh` pins both with a `cmp`. Wall-clock throughput is
//! printed separately as a `#` comment (it may vary run to run and is
//! deliberately kept out of the JSON).

#![forbid(unsafe_code)]

use dynplat_bench::fleet::{arms_to_json, run_arms, FleetResult};
use dynplat_bench::Table;

const SEED: u64 = 0xE15_5EED;

fn main() {
    let mut vehicles: u32 = 200_000;
    let mut shards: usize = 4;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--vehicles" => {
                vehicles = args
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .expect("--vehicles needs an integer fleet size");
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .expect("--shards needs a positive integer");
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => panic!("unknown flag {other} (expected --vehicles, --shards or --out)"),
        }
    }

    let table = Table::new(
        &format!(
            "E15 — staged OTA fleet campaign (seed {SEED:#x}, {vehicles} vehicles, {shards} shards)"
        ),
        &FleetResult::columns(),
    );
    let wall = std::time::Instant::now();
    let results = run_arms(SEED, vehicles, shards);
    let elapsed = wall.elapsed();
    for r in &results {
        r.print_row(&table);
    }

    let simulated: u64 = results.iter().map(|r| u64::from(r.vehicles)).sum();
    println!(
        "# wall-clock: {} vehicle-campaigns in {:.2}s ({:.0} vehicles/s) — not part of the JSON",
        simulated,
        elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    if let Some(path) = out_path {
        std::fs::write(&path, arms_to_json(SEED, vehicles, &results))
            .expect("write E15 campaign JSON");
        println!("# campaign written to {path}");
    }
}
