//! E16: fleet telemetry, SLO burn-rate gating and flight capture.
//!
//! Replays the identical completion-ordered verification-batch stream of
//! three fleet arms — quiet, degraded network, catastrophically broken
//! image — through a bare per-batch threshold detector and the SLO burn
//! gate (`dynplat-monitor`), and prints, per arm, the false-alarm counts,
//! times-to-detect, flight-dump pairing and the size of the merged
//! telemetry artifact.
//!
//! Flags:
//!
//! * `--vehicles N` — fleet size per phase and arm (default 20000);
//! * `--shards N` — sim kernels to shard the fleet over (default 4);
//! * `--out PATH` — write the run as JSON (schema `dynplat.e16.v1`);
//! * `--telemetry DIR` — write each arm's merged telemetry artifact as
//!   `DIR/TELEMETRY_<arm>.json` (byte-identical across `--shards`, the
//!   file CI `cmp`s shard-flipped).
//!
//! Every figure in the table and the JSON lives on the simulated clock, so
//! output is byte-identical across reruns **and across `--shards` values**.
//! Wall-clock throughput is printed separately as a `#` comment (it may
//! vary run to run and is deliberately kept out of the JSON).

#![forbid(unsafe_code)]

use dynplat_bench::telemetry::{run_telemetry_arms, telemetry_arms_to_json, TelemetryResult};
use dynplat_bench::Table;

const SEED: u64 = 0xE16_5EED;

fn main() {
    let mut vehicles: u32 = 20_000;
    let mut shards: usize = 4;
    let mut out_path: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--vehicles" => {
                vehicles = args
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .expect("--vehicles needs an integer fleet size");
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .expect("--shards needs a positive integer");
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--telemetry" => {
                telemetry_dir = Some(args.next().expect("--telemetry needs a directory"));
            }
            other => {
                panic!("unknown flag {other} (expected --vehicles, --shards, --out or --telemetry)")
            }
        }
    }

    let table = Table::new(
        &format!(
            "E16 — SLO telemetry and burn-rate gating (seed {SEED:#x}, {vehicles} vehicles, {shards} shards)"
        ),
        &TelemetryResult::columns(),
    );
    let wall = std::time::Instant::now();
    let results = run_telemetry_arms(SEED, vehicles, shards);
    let elapsed = wall.elapsed();
    for r in &results {
        r.print_row(&table);
    }

    let simulated: u64 = results.iter().map(|r| 2 * u64::from(r.vehicles)).sum();
    println!(
        "# wall-clock: {} vehicle-phases in {:.2}s ({:.0} vehicles/s) — not part of the JSON",
        simulated,
        elapsed.as_secs_f64(),
        simulated as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    if let Some(path) = out_path {
        std::fs::write(&path, telemetry_arms_to_json(SEED, vehicles, &results))
            .expect("write E16 JSON");
        println!("# results written to {path}");
    }
    if let Some(dir) = telemetry_dir {
        std::fs::create_dir_all(&dir).expect("create telemetry directory");
        for r in &results {
            let path = format!("{dir}/TELEMETRY_{}.json", r.arm);
            std::fs::write(&path, &r.telemetry).expect("write telemetry artifact");
            println!("# telemetry written to {path}");
        }
    }
}
