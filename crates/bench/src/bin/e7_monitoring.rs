//! E7 (§3.4): runtime monitoring — per-observation cost, fault detection
//! latency, and certification data-set aggregation over a simulated fleet.
//!
//! Expected shape: monitoring cost is sub-microsecond per activation (far
//! below any control period, so "runtime monitoring" is affordable);
//! detection latency for period/deadline/memory violations is a single
//! observation; fleet aggregation yields response-time quantile bounds
//! usable for certification arguments.

#![forbid(unsafe_code)]

use dynplat_bench::Table;
use dynplat_common::rng::seeded_rng;
use dynplat_common::rng::Rng;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{TaskId, VehicleId};
use dynplat_monitor::report::{CertificationDataSet, DiagnosticReport};
use dynplat_monitor::{FaultKind, FaultRecorder, MonitorSpec, TaskMonitor, TaskObservation};
use std::time::Instant;

fn main() {
    // -- per-observation overhead (real wall clock) ---------------------------
    let spec = MonitorSpec::new(
        TaskId(1),
        SimDuration::from_millis(10),
        SimDuration::from_millis(10),
        1 << 20,
    );
    let mut monitor = TaskMonitor::new(spec.clone());
    let mut recorder = FaultRecorder::default();
    let n = 1_000_000u64;
    let start = Instant::now();
    for k in 0..n {
        let t = SimTime::from_millis(k * 10);
        monitor.observe(TaskObservation::Activation(t), &mut recorder);
        monitor.observe(
            TaskObservation::Completion {
                release: t,
                completion: t + SimDuration::from_millis(2),
            },
            &mut recorder,
        );
    }
    let per_obs = start.elapsed().as_nanos() / u128::from(n * 2);
    println!("# E7a — monitoring overhead: {per_obs} ns per observation ({n} activations)");

    // -- detection latency per fault class ------------------------------------
    let table = Table::new(
        "E7b — fault detection latency (observations until detection)",
        &["fault", "observations_to_detect"],
    );
    // Period violation: detected on the first late activation.
    let mut m = TaskMonitor::new(spec.clone());
    let mut r = FaultRecorder::default();
    m.observe(TaskObservation::Activation(SimTime::ZERO), &mut r);
    m.observe(
        TaskObservation::Activation(SimTime::from_millis(25)),
        &mut r,
    );
    table.row(&["period_violation".into(), format!("{}", 1)]);
    assert_eq!(r.count(FaultKind::PeriodViolation), 1);
    // Deadline miss: first late completion.
    let mut m = TaskMonitor::new(spec.clone());
    let mut r = FaultRecorder::default();
    m.observe(
        TaskObservation::Completion {
            release: SimTime::ZERO,
            completion: SimTime::from_millis(30),
        },
        &mut r,
    );
    table.row(&["deadline_miss".into(), format!("{}", 1)]);
    assert_eq!(r.count(FaultKind::DeadlineMiss), 1);
    // Memory overrun: first overrunning sample.
    let mut m = TaskMonitor::new(spec.clone());
    let mut r = FaultRecorder::default();
    m.observe(TaskObservation::Memory(SimTime::ZERO, 2 << 20), &mut r);
    table.row(&["memory_overrun".into(), format!("{}", 1)]);
    assert_eq!(r.count(FaultKind::MemoryOverrun), 1);
    // Silence: bounded by the watchdog horizon (2 periods + tolerance).
    let mut m = TaskMonitor::new(spec);
    let mut r = FaultRecorder::default();
    m.observe(TaskObservation::Activation(SimTime::ZERO), &mut r);
    let mut checks = 0;
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_millis(10);
        checks += 1;
        if !m.check_liveness(t, &mut r) {
            break;
        }
    }
    table.row(&["silence_watchdog".into(), format!("{checks}")]);

    // -- fleet certification data set ------------------------------------------
    let mut set = CertificationDataSet::new(SimDuration::from_micros(500));
    let mut rng = seeded_rng(11);
    let vehicles = 500u32;
    for v in 0..vehicles {
        let mut m = TaskMonitor::new(MonitorSpec::new(
            TaskId(1),
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            1 << 20,
        ));
        let mut r = FaultRecorder::default();
        // Per-vehicle spread: some vehicles run hotter than others.
        let spread = 500 + u64::from(v % 50) * 120;
        for k in 0..100u64 {
            let rel = SimTime::from_millis(k * 10);
            let resp = SimDuration::from_micros(1_000 + rng.gen_range(0..spread));
            m.observe(TaskObservation::Activation(rel), &mut r);
            m.observe(
                TaskObservation::Completion {
                    release: rel,
                    completion: rel + resp,
                },
                &mut r,
            );
        }
        let report =
            DiagnosticReport::capture(VehicleId(v), SimTime::from_secs(1), &[&m], r.drain());
        set.ingest(&report);
    }
    let table = Table::new(
        "E7c — fleet certification data set (500 vehicles x 100 activations)",
        &["metric", "value"],
    );
    table.row(&[
        "total_activations".into(),
        set.activations(TaskId(1)).to_string(),
    ]);
    table.row(&["total_faults".into(), set.total_faults().to_string()]);
    for q in [0.5, 0.9, 0.99, 1.0] {
        let bound = set.response_bound(TaskId(1), q).expect("data present");
        table.row(&[format!("response_bound_q{q}"), format!("{bound}")]);
    }
}
