//! Ablation: the two design choices inside the DSE annealer (DESIGN.md
//! §4 "ablation benches for the design choices") — the greedy warm start
//! and the stagnation restarts.
//!
//! Expected shape: without the greedy seed the annealer needs its restarts
//! to escape infeasible plateaus and still lands above the seeded cost on
//! tight budgets; with both disabled it is essentially a random walk.

#![forbid(unsafe_code)]

use dynplat_bench::{vehicle_functions, Table};
use dynplat_common::{BusId, EcuId};
use dynplat_dse::search::{simulated_annealing, DseConfig};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_model::ir::{Deployment, MappingChoice, SystemModel};

fn model(n_apps: u32, pool: u16) -> SystemModel {
    let mut hardware = HwTopology::new();
    let ids: Vec<EcuId> = (0..pool).map(EcuId).collect();
    for &id in &ids {
        hardware
            .add_ecu(EcuSpec::of_class(
                id,
                format!("p{}", id.raw()),
                EcuClass::Domain,
            ))
            .expect("fresh");
    }
    hardware
        .add_bus(BusSpec::new(
            BusId(0),
            "bb",
            BusKind::ethernet_1g(),
            ids.clone(),
        ))
        .expect("fresh");
    let applications = vehicle_functions(n_apps);
    let mut deployment = Deployment::default();
    for app in &applications {
        deployment
            .mapping
            .insert(app.id, MappingChoice::AnyOf(ids.clone()));
    }
    SystemModel {
        hardware,
        interfaces: vec![],
        applications,
        deployment,
    }
}

fn main() {
    let table = Table::new(
        "Ablation — annealer design choices (40 apps, 6-ECU pool, mean of 5 seeds)",
        &["iterations", "variant", "mean_cost", "feasible_runs"],
    );
    let m = model(40, 6);
    for iterations in [200u32, 800, 2400] {
        for (label, greedy_seed, restarts) in [
            ("seed+restarts", true, true),
            ("seed only", true, false),
            ("restarts only", false, true),
            ("neither", false, false),
        ] {
            let mut total_cost = 0u64;
            let mut feasible = 0u32;
            let seeds = 5u64;
            for seed in 0..seeds {
                let cfg = DseConfig {
                    iterations,
                    seed: 100 + seed,
                    greedy_seed,
                    restarts,
                    ..Default::default()
                };
                let result = simulated_annealing(&m, &cfg);
                let (_, obj) = result.best.expect("candidate exists");
                if obj.is_feasible() {
                    feasible += 1;
                    total_cost += obj.used_cost;
                }
            }
            let mean_cost = if feasible > 0 {
                format!("{:.0}", total_cost as f64 / f64::from(feasible))
            } else {
                "-".to_owned()
            };
            table.row(&[
                iterations.to_string(),
                label.to_owned(),
                mean_cost,
                format!("{feasible}/{seeds}"),
            ]);
        }
    }
}
