//! E1 (Fig. 1): federated one-function-per-ECU architecture vs. the
//! consolidated dynamic platform, swept over fleet sizes.
//!
//! Expected shape: consolidation cuts the ECU count by an order of
//! magnitude and, beyond a break-even fleet size, total hardware cost; the
//! federated mean utilization stays tied to each function while platform
//! ECUs absorb many functions each.

#![forbid(unsafe_code)]

use dynplat_bench::{vehicle_functions, Table};
use dynplat_dse::consolidate::{consolidated_architecture, federated_architecture};
use dynplat_dse::search::DseConfig;

fn main() {
    let table = Table::new(
        "E1 / Fig.1 — federated vs consolidated architectures",
        &[
            "functions",
            "fed_ecus",
            "fed_cost",
            "fed_meanU",
            "cons_ecus",
            "cons_cost",
            "cons_meanU",
            "cons_feasible",
        ],
    );
    for n in [10u32, 20, 30, 40, 60] {
        let apps = vehicle_functions(n);
        let (_, fed) = federated_architecture(&apps);
        let pool = (n / 8).clamp(2, 8) as u16;
        let cfg = DseConfig {
            iterations: 1500,
            seed: 7,
            ..Default::default()
        };
        let (_, _, cons) = consolidated_architecture(&apps, pool, &cfg);
        table.row(&[
            n.to_string(),
            fed.ecus.to_string(),
            fed.cost.to_string(),
            format!("{:.3}", fed.mean_utilization),
            cons.ecus.to_string(),
            cons.cost.to_string(),
            format!("{:.3}", cons.mean_utilization),
            cons.feasible.to_string(),
        ]);
    }
}
