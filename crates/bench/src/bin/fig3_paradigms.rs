//! E3 (Fig. 3): the three communication paradigms — Event, Message (RPC),
//! Stream — across CAN, switched Ethernet (802.1p) and TSN, over payload
//! sizes.
//!
//! Expected shape: CAN carries small events at sub-millisecond latency but
//! collapses on large payloads (segmentation into 8-byte frames); Ethernet
//! is orders of magnitude faster for the same payloads; TSN adds bounded
//! gate delay for non-critical traffic in exchange for deterministic
//! critical windows; RPC round trips are two one-way latencies plus
//! processing; stream decodable latency ≥ raw latency.

#![forbid(unsafe_code)]

use dynplat_bench::{us, Table};
use dynplat_comm::fabric::{BusPort, Fabric, MessageSend};
use dynplat_comm::paradigm::{run_rpc, run_stream, RpcCall, StreamSpec};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_net::{GateControlList, TrafficClass};
use dynplat_obs::TraceCtx;

fn two_ecu_topology(kind: BusKind) -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
        ],
        [BusSpec::new(BusId(0), "bus", kind, [EcuId(0), EcuId(1)])],
    )
    .expect("valid topology")
}

fn fabric_for(medium: &str) -> Fabric {
    match medium {
        "can-500k" => Fabric::new(two_ecu_topology(BusKind::can_500k())),
        "eth-100m" => Fabric::new(two_ecu_topology(BusKind::ethernet_100m())),
        "tsn-100m" => {
            let mut f = Fabric::new(two_ecu_topology(BusKind::ethernet_100m()));
            f.set_port(
                BusId(0),
                BusPort::tsn_for(
                    BusKind::ethernet_100m(),
                    GateControlList::mixed_criticality(SimDuration::from_millis(1), 0.3),
                ),
            );
            f
        }
        other => panic!("unknown medium {other}"),
    }
}

fn main() {
    let media = ["can-500k", "eth-100m", "tsn-100m"];

    // -- Event: one-way notification latency over payload sizes -------------
    let table = Table::new(
        "E3a / Fig.3 — Event paradigm: one-way latency (us)",
        &["medium", "payload_B", "median_us", "p99_us"],
    );
    for medium in media {
        for payload in [8usize, 64, 256, 1024, 4096] {
            if medium == "can-500k" && payload > 1024 {
                continue; // pointless: dozens of ms
            }
            let mut fabric = fabric_for(medium);
            let sends: Vec<MessageSend> = (0..100)
                .map(|k| MessageSend {
                    id: k,
                    time: SimTime::from_millis(k * 10),
                    src: EcuId(0),
                    dst: EcuId(1),
                    payload,
                    class: TrafficClass::Critical,
                    priority: 1,
                    trace: TraceCtx::NONE,
                })
                .collect();
            let mut lats: Vec<SimDuration> = fabric
                .run(sends, |_| vec![])
                .iter()
                .map(|d| d.latency())
                .collect();
            lats.sort();
            let median = lats[lats.len() / 2];
            let p99 = lats[lats.len() * 99 / 100];
            table.row(&[medium.to_owned(), payload.to_string(), us(median), us(p99)]);
        }
    }

    // -- Message: RPC round trips --------------------------------------------
    let table = Table::new(
        "E3b / Fig.3 — Message paradigm: RPC round trip (us)",
        &["medium", "req_B", "resp_B", "worst_rtt_us"],
    );
    for medium in media {
        for (req, resp) in [(8usize, 8usize), (64, 256), (256, 1024)] {
            if medium == "can-500k" && resp > 256 {
                continue;
            }
            let mut fabric = fabric_for(medium);
            let calls: Vec<RpcCall> = (0..50)
                .map(|k| RpcCall {
                    time: SimTime::from_millis(k * 20),
                    client: EcuId(0),
                    server: EcuId(1),
                    request_payload: req,
                    response_payload: resp,
                    processing: SimDuration::from_micros(100),
                    class: TrafficClass::Critical,
                    priority: 1,
                    trace: TraceCtx::NONE,
                })
                .collect();
            let stats = run_rpc(&mut fabric, &calls);
            let worst = stats
                .iter()
                .map(|s| s.round_trip)
                .max()
                .expect("calls complete");
            table.row(&[
                medium.to_owned(),
                req.to_string(),
                resp.to_string(),
                us(worst),
            ]);
        }
    }

    // -- Stream: continuous frames with dependencies -------------------------
    let table = Table::new(
        "E3c / Fig.3 — Stream paradigm: 100 frames @ 5 ms",
        &[
            "medium",
            "frame_B",
            "delivered",
            "mean_us",
            "decodable_worst_us",
            "jitter_us",
        ],
    );
    for medium in media {
        for frame in [512usize, 4096, 16384] {
            if medium == "can-500k" && frame > 512 {
                continue;
            }
            let mut fabric = fabric_for(medium);
            let spec = StreamSpec {
                start: SimTime::ZERO,
                frames: 100,
                interval: SimDuration::from_millis(5),
                frame_payload: frame,
                src: EcuId(0),
                dst: EcuId(1),
                class: TrafficClass::Stream,
                priority: 4,
                trace: TraceCtx::NONE,
            };
            let stats = run_stream(&mut fabric, &spec);
            table.row(&[
                medium.to_owned(),
                frame.to_string(),
                format!("{}/{}", stats.delivered, stats.sent),
                us(stats.mean_latency),
                us(stats.max_decodable_latency),
                us(stats.jitter),
            ]);
        }
    }
}
