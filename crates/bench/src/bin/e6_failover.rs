//! E6 (§3.3): fail-operational redundancy — failover latency and control
//! output gap vs heartbeat period and replica count.
//!
//! Expected shape: detection latency is bounded by `heartbeat_period ×
//! (tolerated_misses + 1)`; more replicas do not speed detection but keep
//! the group alive through more failures; a single replica means losing
//! the function entirely.

#![forbid(unsafe_code)]

use dynplat_bench::{ms, Table};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, EcuId, InstanceId};
use dynplat_core::redundancy::{RedundancyError, RedundancyGroup};

/// Runs one crash scenario; returns (detection latency, output gap).
fn crash_scenario(
    heartbeat_ms: u64,
    misses: u32,
    replicas: u64,
    crash_at_ms: u64,
) -> Result<(SimDuration, SimDuration), RedundancyError> {
    let mut group = RedundancyGroup::new(AppId(1), SimDuration::from_millis(heartbeat_ms))
        .with_tolerated_misses(misses);
    for i in 0..replicas {
        group.register(SimTime::ZERO, InstanceId(i), EcuId(i as u16))?;
    }
    let crash = SimTime::from_millis(crash_at_ms);
    let mut step = 1u64;
    loop {
        let now = SimTime::from_millis(step * heartbeat_ms);
        for i in 0..replicas {
            let alive = i != 0 || now < crash;
            if alive {
                group.heartbeat(now, InstanceId(i))?;
            }
        }
        if let Some(_new_master) = group.supervise(now)? {
            let last_beat_of_master = crash
                .as_millis()
                .saturating_sub(crash.as_millis() % heartbeat_ms);
            let detect = now.saturating_since(SimTime::from_millis(last_beat_of_master));
            return Ok((detect, group.output_gap()));
        }
        step += 1;
        if step > 10_000 {
            panic!("failover never detected");
        }
    }
}

fn main() {
    let table = Table::new(
        "E6 — failover detection vs heartbeat period (master crash at t=1s)",
        &[
            "heartbeat_ms",
            "tolerated_misses",
            "replicas",
            "detect_ms",
            "output_gap_ms",
            "bound_ms",
        ],
    );
    for (hb, misses) in [(50u64, 2u32), (20, 2), (10, 2), (5, 2), (10, 5), (10, 1)] {
        for replicas in [2u64, 3, 4] {
            let (detect, gap) =
                crash_scenario(hb, misses, replicas, 1_000).expect("failover succeeds");
            let bound = SimDuration::from_millis(hb) * u64::from(misses + 1);
            table.row(&[
                hb.to_string(),
                misses.to_string(),
                replicas.to_string(),
                ms(detect),
                ms(gap),
                ms(bound),
            ]);
        }
    }

    // Single replica: the function is lost (the case redundancy exists for).
    let result = crash_scenario(10, 2, 1, 1_000);
    println!(
        "# single replica after master loss: {:?}",
        result.expect_err("must fail")
    );
}
