//! Observability-driven performance benchmark and regression gate.
//!
//! Drives the instrumented hot paths — comm publish/deliver (Event, RPC,
//! Stream), topology route resolution, and the scheduler dispatch loop —
//! with wall-clock-calibrated workloads, then emits the global metrics
//! registry as a machine-readable
//! `BENCH_*.json` snapshot (schema `dynplat.bench.v1`) plus a
//! Prometheus-style exposition on stdout.
//!
//! Usage:
//!
//! ```text
//! bench [--out PATH] [--check BASELINE] [--quick] [--threads N]
//! ```
//!
//! With `--check`, throughput gauges are compared against the baseline
//! snapshot; a drop of more than 30% on any gated gauge prints the delta
//! and exits non-zero. This is the CI perf smoke gate.
//!
//! With `--threads N`, every phase runs on `N` OS threads concurrently
//! against the shared global registry; the gauges then report *aggregate*
//! ops over the slowest worker's elapsed time. This is the contended
//! variant of the gate: a change that serializes the hot paths (a new
//! lock, a widened critical section) shows up here even when the
//! single-thread numbers look fine.

use dynplat_bench::Table;
use dynplat_comm::fabric::Fabric;
use dynplat_comm::paradigm::{run_rpc, run_stream, EventBus, Publication, RpcCall, StreamSpec};
use dynplat_comm::sd::{SdEntry, ServiceDirectory};
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, BusId, EcuId, EventGroupId, ServiceId, TaskId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_net::TrafficClass;
use dynplat_obs::MetricsSnapshot;
use dynplat_obs::TraceCtx;
use dynplat_sched::simulate::{simulate_schedule, Policy, SchedSimConfig};
use dynplat_sched::task::{TaskSet, TaskSpec};
use std::process::ExitCode;
use std::time::Instant;

/// Gauges gated by `--check`: current must stay above
/// `PERF_GATE_RATIO x baseline`.
const GATED_GAUGES: [&str; 4] = [
    "bench.comm.publish_ops_per_sec",
    "bench.comm.deliver_ops_per_sec",
    "bench.hw.route_ops_per_sec",
    "bench.sched.dispatch_ops_per_sec",
];

/// A gated gauge may drop to 70% of the baseline before the gate trips.
const PERF_GATE_RATIO: f64 = 0.70;

struct Args {
    out: Option<String>,
    check: Option<String>,
    quick: bool,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        quick: false,
        threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--check" => args.check = Some(it.next().ok_or("--check needs a path")?),
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse::<usize>()
                    .map_err(|_| "--threads needs a positive integer".to_owned())?;
                if args.threads == 0 {
                    return Err("--threads needs a positive integer".to_owned());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Runs a two-counter phase on `threads` workers concurrently, summing ops
/// and keeping the slowest worker's elapsed time — aggregate throughput
/// under contention on the shared registry.
fn contended2(
    threads: usize,
    budget: std::time::Duration,
    f: fn(std::time::Duration) -> (u64, u64, std::time::Duration),
) -> (u64, u64, std::time::Duration) {
    if threads <= 1 {
        return f(budget);
    }
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads).map(|_| s.spawn(move || f(budget))).collect();
        let mut ops_a = 0u64;
        let mut ops_b = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for w in workers {
            let (a, b, e) = w.join().expect("bench worker panicked");
            ops_a += a;
            ops_b += b;
            elapsed = elapsed.max(e);
        }
        (ops_a, ops_b, elapsed)
    })
}

/// One-counter variant of [`contended2`].
fn contended1(
    threads: usize,
    budget: std::time::Duration,
    f: fn(std::time::Duration) -> (u64, std::time::Duration),
) -> (u64, std::time::Duration) {
    if threads <= 1 {
        return f(budget);
    }
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads).map(|_| s.spawn(move || f(budget))).collect();
        let mut ops = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for w in workers {
            let (o, e) = w.join().expect("bench worker panicked");
            ops += o;
            elapsed = elapsed.max(e);
        }
        (ops, elapsed)
    })
}

fn four_ecu_ethernet() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "c", EcuClass::Domain),
            EcuSpec::of_class(EcuId(3), "d", EcuClass::Domain),
        ],
        [BusSpec::new(
            BusId(0),
            "eth",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1), EcuId(2), EcuId(3)],
        )],
    )
    .expect("valid topology")
}

/// Event paradigm: repeated publish batches fanning out to three
/// subscribers, until `budget` wall-clock elapses. Returns
/// `(publications, deliveries, elapsed)`.
fn run_event_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let instance = ServiceInstance::new(ServiceId(1), 1);
    let group = EventGroupId(1);
    let ttl = SimDuration::from_secs(3600);
    let mut directory = ServiceDirectory::new();
    directory.apply(
        SimTime::ZERO,
        &SdEntry::Offer {
            instance,
            host: EcuId(0),
            version: 1,
            ttl,
        },
    );
    for sub in 1..=3u16 {
        directory.apply(
            SimTime::ZERO,
            &SdEntry::Subscribe {
                instance,
                group,
                subscriber: AppId(u32::from(sub)),
                host: EcuId(sub),
                ttl,
            },
        );
    }
    let publications: Vec<Publication> = (0..100u64)
        .map(|k| Publication {
            time: SimTime::from_micros(k * 500),
            instance,
            group,
            src: EcuId(0),
            payload: 256,
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        })
        .collect();
    let (mut published, mut delivered) = (0u64, 0u64);
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut fabric = Fabric::new(topo.clone());
        let mut bus = EventBus::new(&mut fabric, &directory);
        let deliveries = bus.publish_all(&publications);
        published += publications.len() as u64;
        delivered += deliveries.len() as u64;
    }
    (published, delivered, start.elapsed())
}

/// Message paradigm: RPC round-trip batches. Returns
/// `(calls, completed, elapsed)`.
fn run_rpc_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let calls: Vec<RpcCall> = (0..50u64)
        .map(|k| RpcCall {
            time: SimTime::from_micros(k * 1000),
            client: EcuId(0),
            server: EcuId(1),
            request_payload: 64,
            response_payload: 256,
            processing: SimDuration::from_micros(100),
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        })
        .collect();
    let (mut issued, mut completed) = (0u64, 0u64);
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut fabric = Fabric::new(topo.clone());
        let stats = run_rpc(&mut fabric, &calls);
        issued += calls.len() as u64;
        completed += stats.len() as u64;
    }
    (issued, completed, start.elapsed())
}

/// Stream paradigm: frame batches. Returns `(sent, delivered, elapsed)`.
fn run_stream_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let spec = StreamSpec {
        start: SimTime::ZERO,
        frames: 100,
        interval: SimDuration::from_millis(5),
        frame_payload: 4096,
        src: EcuId(0),
        dst: EcuId(1),
        class: TrafficClass::Stream,
        priority: 4,
        trace: TraceCtx::NONE,
    };
    let (mut sent, mut delivered) = (0u64, 0u64);
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut fabric = Fabric::new(topo.clone());
        let stats = run_stream(&mut fabric, &spec);
        sent += stats.sent as u64;
        delivered += stats.delivered as u64;
    }
    (sent, delivered, start.elapsed())
}

/// A 24-ECU gateway mesh: six CAN/Ethernet leaf segments bridged onto an
/// Ethernet backbone — routes of one to three hops.
fn gateway_mesh() -> HwTopology {
    let mut topo = HwTopology::new();
    let mut backbone = Vec::new();
    for seg in 0..6u16 {
        let gw = EcuId(seg * 4);
        backbone.push(gw);
        let mut leaf = vec![gw];
        topo.add_ecu(EcuSpec::of_class(gw, format!("gw{seg}"), EcuClass::Domain))
            .expect("fresh ids");
        for n in 1..4u16 {
            let id = EcuId(seg * 4 + n);
            leaf.push(id);
            topo.add_ecu(EcuSpec::of_class(
                id,
                format!("n{seg}-{n}"),
                EcuClass::LowEnd,
            ))
            .expect("fresh ids");
        }
        let kind = if seg % 2 == 0 {
            BusKind::can_500k()
        } else {
            BusKind::ethernet_100m()
        };
        topo.add_bus(BusSpec::new(BusId(seg), format!("seg{seg}"), kind, leaf))
            .expect("fresh bus");
    }
    topo.add_bus(BusSpec::new(
        BusId(100),
        "backbone",
        BusKind::ethernet_1g(),
        backbone,
    ))
    .expect("fresh bus");
    topo
}

/// Route resolution: all-pairs queries over the gateway mesh through the
/// dense cache, rebuilt each sweep the way `Fabric::new` would. Returns
/// `(routes_resolved, elapsed)`.
fn run_route_phase(budget: std::time::Duration) -> (u64, std::time::Duration) {
    let topo = gateway_mesh();
    let ecus: Vec<EcuId> = topo.ecus().map(|e| e.id()).collect();
    let mut resolved = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut cache = dynplat_hw::RouteCache::new(&topo);
        for &src in &ecus {
            for &dst in &ecus {
                if cache.route_buses(src, dst).is_ok() {
                    resolved += 1;
                }
            }
        }
    }
    (resolved, start.elapsed())
}

/// Scheduler dispatch: preemptive fixed-priority simulation over a
/// 20-task set. Returns `(completions, elapsed)`.
fn run_sched_phase(budget: std::time::Duration) -> (u64, std::time::Duration) {
    let set: TaskSet = (0..20u32)
        .map(|i| {
            TaskSpec::periodic(
                TaskId(i),
                format!("t{i}"),
                SimDuration::from_millis(5 * (u64::from(i % 6) + 1)),
                SimDuration::from_micros(200),
            )
            .with_priority(i)
        })
        .collect();
    let cfg = SchedSimConfig {
        horizon: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut completions = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let stats = simulate_schedule(&set, &Policy::FixedPriorityPreemptive, &cfg);
        completions += stats.tasks.iter().map(|t| t.completions).sum::<u64>();
    }
    (completions, start.elapsed())
}

fn ops_per_sec(ops: u64, elapsed: std::time::Duration) -> i64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0;
    }
    (ops as f64 / secs) as i64
}

/// Compares gated gauges against a baseline snapshot. Returns the list of
/// regressions as `(name, baseline, current, ratio)`.
fn gate(
    current: &MetricsSnapshot,
    baseline: &MetricsSnapshot,
) -> Vec<(&'static str, i64, i64, f64)> {
    let mut regressions = Vec::new();
    for name in GATED_GAUGES {
        let Some(&base) = baseline.gauges.get(name) else {
            continue; // gauge absent from baseline: nothing to gate on
        };
        if base <= 0 {
            continue;
        }
        let cur = current.gauges.get(name).copied().unwrap_or(0);
        let ratio = cur as f64 / base as f64;
        if ratio < PERF_GATE_RATIO {
            regressions.push((name, base, cur, ratio));
        }
    }
    regressions
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            eprintln!("usage: bench [--out PATH] [--check BASELINE] [--quick] [--threads N]");
            return ExitCode::from(2);
        }
    };
    let budget = if args.quick {
        std::time::Duration::from_millis(50)
    } else {
        std::time::Duration::from_millis(400)
    };

    let registry = dynplat_obs::global();
    registry.reset();

    let threads = args.threads;
    let (published, event_delivered, event_elapsed) = contended2(threads, budget, run_event_phase);
    let (rpc_calls, rpc_completed, rpc_elapsed) = contended2(threads, budget, run_rpc_phase);
    let (frames_sent, frames_delivered, stream_elapsed) =
        contended2(threads, budget, run_stream_phase);
    let (routes_resolved, route_elapsed) = contended1(threads, budget, run_route_phase);
    let (dispatch_completions, sched_elapsed) = contended1(threads, budget, run_sched_phase);

    let publish_ops = published + rpc_calls + frames_sent;
    let deliver_ops = event_delivered + rpc_completed + frames_delivered;
    let comm_elapsed = event_elapsed + rpc_elapsed + stream_elapsed;
    registry
        .gauge("bench.comm.publish_ops_per_sec")
        .set(ops_per_sec(publish_ops, comm_elapsed));
    registry
        .gauge("bench.comm.deliver_ops_per_sec")
        .set(ops_per_sec(deliver_ops, comm_elapsed));
    registry
        .gauge("bench.hw.route_ops_per_sec")
        .set(ops_per_sec(routes_resolved, route_elapsed));
    registry
        .gauge("bench.sched.dispatch_ops_per_sec")
        .set(ops_per_sec(dispatch_completions, sched_elapsed));

    let snapshot = registry.snapshot();

    let table = Table::new(
        &format!(
            "BENCH — instrumented hot paths (latencies ns, {threads} thread{})",
            if threads == 1 { "" } else { "s" }
        ),
        &["histogram", "count", "p50", "p95", "p99", "max"],
    );
    for name in [
        "comm.event.latency_ns",
        "comm.rpc.round_trip_ns",
        "comm.stream.latency_ns",
        "comm.fabric.latency_ns",
        "sched.dispatch.response_ns",
        "sched.dispatch.slack_ns",
    ] {
        if let Some(h) = snapshot.histograms.get(name) {
            table.row(&[
                name.to_owned(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
    }
    println!();
    println!("{}", snapshot.to_prometheus());

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("bench: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("bench: wrote snapshot to {path}");
    }

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match MetricsSnapshot::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench: baseline {path} is invalid: {e}");
                return ExitCode::from(2);
            }
        };
        let regressions = gate(&snapshot, &baseline);
        if !regressions.is_empty() {
            eprintln!(
                "bench: PERF REGRESSION (threshold {:.0}% of baseline):",
                PERF_GATE_RATIO * 100.0
            );
            for (name, base, cur, ratio) in &regressions {
                eprintln!(
                    "  {name}: baseline {base} -> current {cur} ({:.1}% of baseline)",
                    ratio * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("bench: perf gate passed against {path}");
    }
    ExitCode::SUCCESS
}
