//! Observability-driven performance benchmark and regression gate.
//!
//! Drives the instrumented hot paths — comm publish/deliver (Event, RPC,
//! Stream), topology route resolution, and the scheduler dispatch loop —
//! with wall-clock-calibrated workloads, then emits the global metrics
//! registry as a machine-readable
//! `BENCH_*.json` snapshot (schema `dynplat.bench.v1`) plus a
//! Prometheus-style exposition on stdout.
//!
//! Usage:
//!
//! ```text
//! bench [--out PATH] [--check BASELINE] [--quick] [--threads N]
//! ```
//!
//! With `--check`, throughput gauges are compared against the baseline
//! snapshot; a drop of more than 30% on any gated gauge prints the delta
//! and exits non-zero. This is the CI perf smoke gate.
//!
//! With `--threads N`, every phase runs on `N` OS threads concurrently
//! against the shared global registry; the gauges then report *aggregate*
//! ops over the slowest worker's elapsed time. This is the contended
//! variant of the gate: a change that serializes the hot paths (a new
//! lock, a widened critical section) shows up here even when the
//! single-thread numbers look fine.
//!
//! On a single-thread run the binary also counts heap allocations made
//! inside the comm phases' steady-state loops (after a warmup batch that
//! fills every scratch buffer to its high-water mark) via a counting
//! global allocator, and emits `bench.comm.allocs_per_delivery`. With
//! `--check` the gate fails if that number is non-zero: the fabric's
//! deliver path is required to be allocation-free once warmed.

use dynplat_bench::Table;
use dynplat_comm::fabric::Fabric;
use dynplat_comm::paradigm::{
    run_rpc_into, run_stream_into, EventBus, EventScratch, Publication, RpcCall, RpcScratch,
    StreamScratch, StreamSpec,
};
use dynplat_comm::sd::{SdEntry, ServiceDirectory};
use dynplat_common::ids::ServiceInstance;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppId, BusId, EcuId, EventGroupId, ServiceId, TaskId};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_net::TrafficClass;
use dynplat_obs::MetricsSnapshot;
use dynplat_obs::TraceCtx;
use dynplat_sched::simulate::{simulate_schedule, Policy, SchedSimConfig};
use dynplat_sched::task::{TaskSet, TaskSpec};
use std::process::ExitCode;
use std::time::Instant;

/// Hermetic allocation counter: wraps the system allocator and counts
/// allocation events (alloc / realloc / alloc_zeroed) while a phase has
/// switched counting on. Counting is armed only for single-thread runs —
/// under `--threads N` the workers' warmup batches would interleave with
/// other workers' timed windows and the count would be meaningless.
mod alloc_gate {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static ARMED: AtomicBool = AtomicBool::new(false);
    static COUNTING: AtomicBool = AtomicBool::new(false);
    static COUNT: AtomicU64 = AtomicU64::new(0);

    /// The `#[global_allocator]` shim. Pure pass-through to [`System`]
    /// plus one relaxed flag load per call when idle.
    pub struct CountingAlloc;

    // SAFETY: delegates every operation unchanged to `System`; the only
    // extra work is updating atomics, which cannot allocate or unwind.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // relaxed: the count is only read in single-thread mode, so
            // flag and tally are same-thread; nothing is published.
            if COUNTING.load(Ordering::Relaxed) {
                COUNT.fetch_add(1, Ordering::Relaxed); // relaxed: see above
            }
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // relaxed: the count is only read in single-thread mode, so
            // flag and tally are same-thread; nothing is published.
            if COUNTING.load(Ordering::Relaxed) {
                COUNT.fetch_add(1, Ordering::Relaxed); // relaxed: see above
            }
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            // relaxed: the count is only read in single-thread mode, so
            // flag and tally are same-thread; nothing is published.
            if COUNTING.load(Ordering::Relaxed) {
                COUNT.fetch_add(1, Ordering::Relaxed); // relaxed: see above
            }
            System.alloc_zeroed(layout)
        }
    }

    /// Arms the gate; phases' [`set_counting`] calls are no-ops until then.
    pub fn arm() {
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Turns counting on/off around a steady-state loop (if armed).
    pub fn set_counting(on: bool) {
        if ARMED.load(Ordering::SeqCst) {
            COUNTING.store(on, Ordering::SeqCst);
        }
    }

    /// Allocation events observed across all counted windows so far.
    pub fn total() -> u64 {
        COUNT.load(Ordering::SeqCst)
    }
}

#[global_allocator]
static GLOBAL: alloc_gate::CountingAlloc = alloc_gate::CountingAlloc;

/// Gauges gated by `--check`: current must stay above
/// `PERF_GATE_RATIO x baseline`.
const GATED_GAUGES: [&str; 4] = [
    "bench.comm.publish_ops_per_sec",
    "bench.comm.deliver_ops_per_sec",
    "bench.hw.route_ops_per_sec",
    "bench.sched.dispatch_ops_per_sec",
];

/// A gated gauge may drop to 70% of the baseline before the gate trips.
const PERF_GATE_RATIO: f64 = 0.70;

struct Args {
    out: Option<String>,
    check: Option<String>,
    quick: bool,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        quick: false,
        threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--check" => args.check = Some(it.next().ok_or("--check needs a path")?),
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse::<usize>()
                    .map_err(|_| "--threads needs a positive integer".to_owned())?;
                if args.threads == 0 {
                    return Err("--threads needs a positive integer".to_owned());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Runs a two-counter phase on `threads` workers concurrently, summing ops
/// and keeping the slowest worker's elapsed time — aggregate throughput
/// under contention on the shared registry.
fn contended2(
    threads: usize,
    budget: std::time::Duration,
    f: fn(std::time::Duration) -> (u64, u64, std::time::Duration),
) -> (u64, u64, std::time::Duration) {
    if threads <= 1 {
        return f(budget);
    }
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads).map(|_| s.spawn(move || f(budget))).collect();
        let mut ops_a = 0u64;
        let mut ops_b = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for w in workers {
            let (a, b, e) = w.join().expect("bench worker panicked");
            ops_a += a;
            ops_b += b;
            elapsed = elapsed.max(e);
        }
        (ops_a, ops_b, elapsed)
    })
}

/// One-counter variant of [`contended2`].
fn contended1(
    threads: usize,
    budget: std::time::Duration,
    f: fn(std::time::Duration) -> (u64, std::time::Duration),
) -> (u64, std::time::Duration) {
    if threads <= 1 {
        return f(budget);
    }
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads).map(|_| s.spawn(move || f(budget))).collect();
        let mut ops = 0u64;
        let mut elapsed = std::time::Duration::ZERO;
        for w in workers {
            let (o, e) = w.join().expect("bench worker panicked");
            ops += o;
            elapsed = elapsed.max(e);
        }
        (ops, elapsed)
    })
}

fn four_ecu_ethernet() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "a", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "b", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "c", EcuClass::Domain),
            EcuSpec::of_class(EcuId(3), "d", EcuClass::Domain),
        ],
        [BusSpec::new(
            BusId(0),
            "eth",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1), EcuId(2), EcuId(3)],
        )],
    )
    .expect("valid topology")
}

/// Event paradigm: repeated publish batches fanning out to three
/// subscribers, until `budget` wall-clock elapses. Returns
/// `(sends, deliveries, elapsed)` counted at the fabric level — one send
/// per subscriber leg, the same per-message accounting the rpc and
/// stream phases use (matches `comm.fabric.sends`/`.deliveries`).
fn run_event_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let instance = ServiceInstance::new(ServiceId(1), 1);
    let group = EventGroupId(1);
    let ttl = SimDuration::from_secs(3600);
    let mut directory = ServiceDirectory::new();
    directory.apply(
        SimTime::ZERO,
        &SdEntry::Offer {
            instance,
            host: EcuId(0),
            version: 1,
            ttl,
        },
    );
    for sub in 1..=3u16 {
        directory.apply(
            SimTime::ZERO,
            &SdEntry::Subscribe {
                instance,
                group,
                subscriber: AppId(u32::from(sub)),
                host: EcuId(sub),
                ttl,
            },
        );
    }
    let publications: Vec<Publication> = (0..100u64)
        .map(|k| Publication {
            time: SimTime::from_micros(k * 500),
            instance,
            group,
            src: EcuId(0),
            payload: 256,
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        })
        .collect();
    let mut fabric = Fabric::new(topo);
    let mut scratch = EventScratch::new();
    let mut out = Vec::new();
    let mut bus = EventBus::new(&mut fabric, &directory);
    // Warmup: two batches grow every scratch buffer, ring, arena class and
    // metric handle to its steady-state high-water mark before the counted
    // window opens.
    bus.publish_all_into(&publications, &mut scratch, &mut out);
    bus.publish_all_into(&publications, &mut scratch, &mut out);
    let (mut published, mut delivered) = (0u64, 0u64);
    alloc_gate::set_counting(true);
    let start = Instant::now();
    while start.elapsed() < budget {
        bus.publish_all_into(&publications, &mut scratch, &mut out);
        published += scratch.fanout_sends() as u64;
        delivered += out.len() as u64;
    }
    let elapsed = start.elapsed();
    alloc_gate::set_counting(false);
    // Republish the event fabric's occupancy so the snapshot's slab/arena
    // gauges describe the fanout workload, not whichever phase ran last.
    let slab = fabric.slab_stats();
    let arena = fabric.arena_stats();
    EVENT_SLAB.store(
        pack3(slab.live, slab.free, fabric.peak_slab_capacity()),
        std::sync::atomic::Ordering::SeqCst,
    );
    EVENT_ARENA.store(
        pack3(arena.live, arena.free, arena.bytes),
        std::sync::atomic::Ordering::SeqCst,
    );
    (published, delivered, elapsed)
}

/// Slab/arena occupancy of the event phase's fabric, packed with [`pack3`]
/// (phase functions are plain `fn` pointers, so results that are not part
/// of the `(ops, ops, elapsed)` tuple travel through statics).
static EVENT_SLAB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static EVENT_ARENA: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Packs three small counts into 21-bit lanes of one `u64`.
fn pack3(a: usize, b: usize, c: usize) -> u64 {
    const M: u64 = (1 << 21) - 1;
    (a as u64 & M) | ((b as u64 & M) << 21) | ((c as u64 & M) << 42)
}

/// Inverse of [`pack3`].
fn unpack3(v: u64) -> (i64, i64, i64) {
    const M: u64 = (1 << 21) - 1;
    (
        (v & M) as i64,
        ((v >> 21) & M) as i64,
        ((v >> 42) & M) as i64,
    )
}

/// Message paradigm: RPC round-trip batches. Returns
/// `(sends, deliveries, elapsed)` counted at the fabric level: every
/// completed round trip is two messages (request + response), the same
/// per-leg accounting the event phase uses for its fanout legs.
fn run_rpc_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let calls: Vec<RpcCall> = (0..50u64)
        .map(|k| RpcCall {
            time: SimTime::from_micros(k * 1000),
            client: EcuId(0),
            server: EcuId(1),
            request_payload: 64,
            response_payload: 256,
            processing: SimDuration::from_micros(100),
            class: TrafficClass::Critical,
            priority: 1,
            trace: TraceCtx::NONE,
        })
        .collect();
    let mut fabric = Fabric::new(topo);
    let mut scratch = RpcScratch::new();
    let mut stats = Vec::new();
    run_rpc_into(&mut fabric, &calls, &mut scratch, &mut stats);
    run_rpc_into(&mut fabric, &calls, &mut scratch, &mut stats);
    let (mut issued, mut completed) = (0u64, 0u64);
    alloc_gate::set_counting(true);
    let start = Instant::now();
    while start.elapsed() < budget {
        run_rpc_into(&mut fabric, &calls, &mut scratch, &mut stats);
        issued += 2 * calls.len() as u64;
        completed += 2 * stats.len() as u64;
    }
    let elapsed = start.elapsed();
    alloc_gate::set_counting(false);
    (issued, completed, elapsed)
}

/// Stream paradigm: frame batches. Returns `(sent, delivered, elapsed)`.
fn run_stream_phase(budget: std::time::Duration) -> (u64, u64, std::time::Duration) {
    let topo = four_ecu_ethernet();
    let spec = StreamSpec {
        start: SimTime::ZERO,
        frames: 100,
        interval: SimDuration::from_millis(5),
        frame_payload: 4096,
        src: EcuId(0),
        dst: EcuId(1),
        class: TrafficClass::Stream,
        priority: 4,
        trace: TraceCtx::NONE,
    };
    let mut fabric = Fabric::new(topo);
    let mut scratch = StreamScratch::new();
    run_stream_into(&mut fabric, &spec, &mut scratch);
    run_stream_into(&mut fabric, &spec, &mut scratch);
    let (mut sent, mut delivered) = (0u64, 0u64);
    alloc_gate::set_counting(true);
    let start = Instant::now();
    while start.elapsed() < budget {
        let stats = run_stream_into(&mut fabric, &spec, &mut scratch);
        sent += stats.sent as u64;
        delivered += stats.delivered as u64;
    }
    let elapsed = start.elapsed();
    alloc_gate::set_counting(false);
    (sent, delivered, elapsed)
}

/// A 24-ECU gateway mesh: six CAN/Ethernet leaf segments bridged onto an
/// Ethernet backbone — routes of one to three hops.
fn gateway_mesh() -> HwTopology {
    let mut topo = HwTopology::new();
    let mut backbone = Vec::new();
    for seg in 0..6u16 {
        let gw = EcuId(seg * 4);
        backbone.push(gw);
        let mut leaf = vec![gw];
        topo.add_ecu(EcuSpec::of_class(gw, format!("gw{seg}"), EcuClass::Domain))
            .expect("fresh ids");
        for n in 1..4u16 {
            let id = EcuId(seg * 4 + n);
            leaf.push(id);
            topo.add_ecu(EcuSpec::of_class(
                id,
                format!("n{seg}-{n}"),
                EcuClass::LowEnd,
            ))
            .expect("fresh ids");
        }
        let kind = if seg % 2 == 0 {
            BusKind::can_500k()
        } else {
            BusKind::ethernet_100m()
        };
        topo.add_bus(BusSpec::new(BusId(seg), format!("seg{seg}"), kind, leaf))
            .expect("fresh bus");
    }
    topo.add_bus(BusSpec::new(
        BusId(100),
        "backbone",
        BusKind::ethernet_1g(),
        backbone,
    ))
    .expect("fresh bus");
    topo
}

/// Route resolution: all-pairs queries over the gateway mesh through the
/// dense cache, rebuilt each sweep the way `Fabric::new` would. Returns
/// `(routes_resolved, elapsed)`.
fn run_route_phase(budget: std::time::Duration) -> (u64, std::time::Duration) {
    let topo = gateway_mesh();
    let ecus: Vec<EcuId> = topo.ecus().map(|e| e.id()).collect();
    let mut resolved = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut cache = dynplat_hw::RouteCache::new(&topo);
        for &src in &ecus {
            for &dst in &ecus {
                if cache.route_buses(src, dst).is_ok() {
                    resolved += 1;
                }
            }
        }
    }
    (resolved, start.elapsed())
}

/// Scheduler dispatch: preemptive fixed-priority simulation over a
/// 20-task set. Returns `(completions, elapsed)`.
fn run_sched_phase(budget: std::time::Duration) -> (u64, std::time::Duration) {
    let set: TaskSet = (0..20u32)
        .map(|i| {
            TaskSpec::periodic(
                TaskId(i),
                format!("t{i}"),
                SimDuration::from_millis(5 * (u64::from(i % 6) + 1)),
                SimDuration::from_micros(200),
            )
            .with_priority(i)
        })
        .collect();
    let cfg = SchedSimConfig {
        horizon: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut completions = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let stats = simulate_schedule(&set, &Policy::FixedPriorityPreemptive, &cfg);
        completions += stats.tasks.iter().map(|t| t.completions).sum::<u64>();
    }
    (completions, start.elapsed())
}

fn ops_per_sec(ops: u64, elapsed: std::time::Duration) -> i64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0;
    }
    (ops as f64 / secs) as i64
}

/// Compares gated gauges against a baseline snapshot. Returns the list of
/// regressions as `(name, baseline, current, ratio)`.
fn gate(
    current: &MetricsSnapshot,
    baseline: &MetricsSnapshot,
) -> Vec<(&'static str, i64, i64, f64)> {
    let mut regressions = Vec::new();
    for name in GATED_GAUGES {
        let Some(&base) = baseline.gauges.get(name) else {
            continue; // gauge absent from baseline: nothing to gate on
        };
        if base <= 0 {
            continue;
        }
        let cur = current.gauges.get(name).copied().unwrap_or(0);
        let ratio = cur as f64 / base as f64;
        if ratio < PERF_GATE_RATIO {
            regressions.push((name, base, cur, ratio));
        }
    }
    regressions
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            eprintln!("usage: bench [--out PATH] [--check BASELINE] [--quick] [--threads N]");
            return ExitCode::from(2);
        }
    };
    let budget = if args.quick {
        std::time::Duration::from_millis(50)
    } else {
        std::time::Duration::from_millis(400)
    };

    let registry = dynplat_obs::global();
    registry.reset();

    let threads = args.threads;
    if threads == 1 {
        alloc_gate::arm();
    }
    let (published, event_delivered, event_elapsed) = contended2(threads, budget, run_event_phase);
    let (rpc_calls, rpc_completed, rpc_elapsed) = contended2(threads, budget, run_rpc_phase);
    let (frames_sent, frames_delivered, stream_elapsed) =
        contended2(threads, budget, run_stream_phase);
    let (routes_resolved, route_elapsed) = contended1(threads, budget, run_route_phase);
    let (dispatch_completions, sched_elapsed) = contended1(threads, budget, run_sched_phase);

    let publish_ops = published + rpc_calls + frames_sent;
    let deliver_ops = event_delivered + rpc_completed + frames_delivered;
    let comm_elapsed = event_elapsed + rpc_elapsed + stream_elapsed;
    registry
        .gauge("bench.comm.publish_ops_per_sec")
        .set(ops_per_sec(publish_ops, comm_elapsed));
    registry
        .gauge("bench.comm.deliver_ops_per_sec")
        .set(ops_per_sec(deliver_ops, comm_elapsed));
    registry
        .gauge("bench.hw.route_ops_per_sec")
        .set(ops_per_sec(routes_resolved, route_elapsed));
    registry
        .gauge("bench.sched.dispatch_ops_per_sec")
        .set(ops_per_sec(dispatch_completions, sched_elapsed));

    // Republish the event-phase fabric's occupancy (see run_event_phase):
    // the snapshot's slab/arena gauges should describe the 3-subscriber
    // fanout workload, not the single-destination stream that ran last.
    let (slab_live, slab_free, slab_peak) =
        unpack3(EVENT_SLAB.load(std::sync::atomic::Ordering::SeqCst));
    let (arena_live, arena_free, arena_bytes) =
        unpack3(EVENT_ARENA.load(std::sync::atomic::Ordering::SeqCst));
    registry.gauge("bench.comm.slab_live").set(slab_live);
    registry.gauge("bench.comm.slab_free").set(slab_free);
    registry.gauge("bench.comm.slab_peak").set(slab_peak);
    registry.gauge("bench.comm.arena_live").set(arena_live);
    registry.gauge("bench.comm.arena_free").set(arena_free);
    registry.gauge("bench.comm.arena_bytes").set(arena_bytes);

    // Per-phase throughput diagnostics: the gated gauges aggregate the
    // three comm phases, so a regression in one can hide behind the others
    // without this breakdown.
    for (name, ops, elapsed) in [
        ("event.deliver", event_delivered, event_elapsed),
        ("rpc.complete", rpc_completed, rpc_elapsed),
        ("stream.deliver", frames_delivered, stream_elapsed),
    ] {
        eprintln!("bench: phase {name}: {} ops/s", ops_per_sec(ops, elapsed));
    }

    // Steady-state allocation accounting (single-thread runs only). The
    // per-delivery gauge is ceiling-rounded so even one stray allocation
    // anywhere in a counted window reads as >= 1 and trips the gate.
    let steady_allocs = alloc_gate::total();
    let allocs_per_delivery = if threads == 1 && deliver_ops > 0 {
        steady_allocs.div_ceil(deliver_ops) as i64
    } else {
        -1 // not measured under contention
    };
    registry
        .gauge("bench.comm.steady_allocs")
        .set(steady_allocs as i64);
    registry
        .gauge("bench.comm.allocs_per_delivery")
        .set(allocs_per_delivery);
    if threads == 1 {
        eprintln!(
            "bench: steady-state heap allocations: {steady_allocs} across {deliver_ops} deliveries"
        );
    }

    let snapshot = registry.snapshot();

    let table = Table::new(
        &format!(
            "BENCH — instrumented hot paths (latencies ns, {threads} thread{})",
            if threads == 1 { "" } else { "s" }
        ),
        &["histogram", "count", "p50", "p95", "p99", "max"],
    );
    for name in [
        "comm.event.latency_ns",
        "comm.rpc.round_trip_ns",
        "comm.stream.latency_ns",
        "comm.fabric.latency_ns",
        "sched.dispatch.response_ns",
        "sched.dispatch.slack_ns",
    ] {
        if let Some(h) = snapshot.histograms.get(name) {
            table.row(&[
                name.to_owned(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
    }
    println!();
    println!("{}", snapshot.to_prometheus());

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("bench: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("bench: wrote snapshot to {path}");
    }

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match MetricsSnapshot::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench: baseline {path} is invalid: {e}");
                return ExitCode::from(2);
            }
        };
        if threads == 1 && allocs_per_delivery > 0 {
            eprintln!(
                "bench: ALLOCATION REGRESSION: {steady_allocs} heap allocations in the \
                 steady-state deliver loop (expected 0; {deliver_ops} deliveries)"
            );
            return ExitCode::FAILURE;
        }
        let regressions = gate(&snapshot, &baseline);
        if !regressions.is_empty() {
            eprintln!(
                "bench: PERF REGRESSION (threshold {:.0}% of baseline):",
                PERF_GATE_RATIO * 100.0
            );
            for (name, base, cur, ratio) in &regressions {
                eprintln!(
                    "  {name}: baseline {base} -> current {cur} ({:.1}% of baseline)",
                    ratio * 100.0
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("bench: perf gate passed against {path}");
    }
    ExitCode::SUCCESS
}
