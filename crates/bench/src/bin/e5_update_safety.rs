//! E5 (§3.2): update safety — staged 4-phase update vs stop–restart vs the
//! centrally synchronized switch.
//!
//! Expected shape: staged updates have zero outage at the price of a
//! double-resource overlap that grows with the state to synchronize;
//! stop–restart outage is constant and large; the centralized switch's
//! mixed-version window grows linearly with clock error and collapses
//! entirely when the coordinator fails.

#![forbid(unsafe_code)]

use dynplat_bench::{ms, Table};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::VehicleId;
use dynplat_common::{AppId, AppKind, Asil, EcuId};
use dynplat_core::app::AppManifest;
use dynplat_core::campaign::{CampaignPolicy, UpdateCampaign, UpdateRequirements, VehicleConfig};
use dynplat_core::update::{
    centralized_switch_update, staged_update, stop_restart_update, StagedParams, StopRestartParams,
};
use dynplat_core::DynamicPlatform;
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_model::ir::AppModel;
use dynplat_security::package::{KeyRegistry, Version};
use dynplat_sim::jitter::ClockModel;
use std::collections::BTreeMap;

fn manifest(version: Version) -> AppManifest {
    AppManifest::new(
        AppModel {
            id: AppId(1),
            name: "ctrl".into(),
            kind: AppKind::Deterministic,
            asil: Asil::C,
            provides: vec![],
            consumes: vec![],
            period: SimDuration::from_millis(10),
            work_mi: 2.0,
            memory_kib: 512,
            needs_gpu: false,
        },
        version,
        [0; 32],
    )
}

fn fresh_platform() -> DynamicPlatform {
    let mut p = DynamicPlatform::new(KeyRegistry::new());
    p.add_node(EcuSpec::of_class(EcuId(1), "zone", EcuClass::Domain));
    p.node_mut(EcuId(1))
        .expect("node")
        .launch(manifest(Version::new(1, 0, 0)))
        .expect("initial deploy");
    p
}

fn main() {
    // -- staged vs stop-restart over state size -----------------------------
    let table = Table::new(
        "E5a — staged vs stop-restart: outage and overlap vs state size",
        &[
            "state_kib",
            "staged_outage_ms",
            "staged_overlap_ms",
            "stop_restart_outage_ms",
        ],
    );
    for state_kib in [0u64, 1024, 16 * 1024, 128 * 1024] {
        let mut p = fresh_platform();
        let staged = staged_update(
            &mut p,
            SimTime::from_secs(1),
            EcuId(1),
            manifest(Version::new(1, 1, 0)),
            state_kib,
            &StagedParams::default(),
        )
        .expect("staged update");
        let mut p2 = fresh_platform();
        let naive = stop_restart_update(
            &mut p2,
            SimTime::from_secs(1),
            EcuId(1),
            manifest(Version::new(1, 1, 0)),
            &StopRestartParams::default(),
        )
        .expect("stop-restart update");
        table.row(&[
            state_kib.to_string(),
            ms(staged.outage),
            ms(staged.overlap),
            ms(naive.outage),
        ]);
    }

    // -- centralized switch vs clock error -----------------------------------
    let table = Table::new(
        "E5b — centralized switch: mixed-version window vs clock error (4 replicas)",
        &["clock_error_ms", "mixed_window_ms"],
    );
    for err_ms in [0i64, 1, 2, 5, 10, 50] {
        let clocks: BTreeMap<EcuId, ClockModel> = [
            (EcuId(0), ClockModel::new(0, 0.0)),
            (EcuId(1), ClockModel::new(err_ms * 1_000_000, 0.0)),
            (EcuId(2), ClockModel::new(-err_ms * 1_000_000, 0.0)),
            (EcuId(3), ClockModel::new(err_ms * 500_000, 0.0)),
        ]
        .into_iter()
        .collect();
        let (report, _) = centralized_switch_update(&clocks, SimTime::from_secs(100), false);
        table.row(&[err_ms.to_string(), ms(report.mixed_version_window)]);
    }

    // -- the single point of failure -----------------------------------------
    let clocks: BTreeMap<EcuId, ClockModel> =
        [(EcuId(0), ClockModel::PERFECT)].into_iter().collect();
    let (failed, switched) = centralized_switch_update(&clocks, SimTime::from_secs(100), true);
    println!(
        "# E5c — coordinator failure: replicas switched = {}, phases = {:?}",
        switched.len(),
        failed.phases
    );

    // -- fleet campaign: per-vehicle backend validation + canary halt ---------
    let table = Table::new(
        "E5d — fleet campaign (1000 heterogeneous vehicles) vs field failure rate",
        &[
            "field_failure_pct",
            "updated",
            "rejected",
            "failed",
            "protected",
            "halted",
        ],
    );
    let fleet: Vec<VehicleConfig> = (0..1000u32)
        .map(|i| {
            let mut v = VehicleConfig::new(
                VehicleId(i),
                if i % 17 == 0 { 256 } else { 4096 }, // some lack overlap memory
                0.5,
            );
            if i % 23 != 0 {
                // most have the app installed; a few never got v1
                v.installed.insert(AppId(1), Version::new(1, 0, 0));
            }
            v
        })
        .collect();
    for failure_pct in [0u32, 2, 10, 40] {
        let req = UpdateRequirements {
            app: AppId(1),
            version: Version::new(1, 1, 0),
            staged_memory_kib: 1024,
            utilization: 0.2,
            depends_on: BTreeMap::new(),
        };
        let report = UpdateCampaign::new(req)
            .with_field_failures(f64::from(failure_pct) / 100.0, 77)
            .with_policy(CampaignPolicy {
                waves: vec![0.02, 0.2, 1.0],
                max_wave_failure_rate: 0.05,
            })
            .run(&fleet);
        let protected = fleet.len() - report.updated() - report.failed() - report.rejected();
        table.row(&[
            failure_pct.to_string(),
            report.updated().to_string(),
            report.rejected().to_string(),
            report.failed().to_string(),
            protected.to_string(),
            report.halted.to_string(),
        ]);
    }
}
