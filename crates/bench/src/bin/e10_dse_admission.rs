//! E10 (§2.3 + §3.1): design-space exploration quality/runtime, admission
//! control soundness, and the local-vs-cloud schedule management trade of
//! \[21\].
//!
//! Expected shape: greedy is fastest but can be beaten on cost; simulated
//! annealing matches or beats random search at equal budget; the unsound
//! utilization-only admission test accepts task sets the exact test
//! rejects; incremental (local) synthesis has zero disturbance but fails on
//! fragmented schedules where cloud resynthesis succeeds at the price of
//! slot migrations and a network round trip.

#![forbid(unsafe_code)]

use dynplat_bench::{ms, vehicle_functions, Table};
use dynplat_common::time::SimDuration;
use dynplat_common::{EcuId, TaskId};
use dynplat_dse::search::{
    explore, greedy_first_fit, random_search, simulated_annealing, DseConfig,
};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_model::ir::{Deployment, MappingChoice, SystemModel};
use dynplat_sched::admission::{AdmissionController, AdmissionTest};
use dynplat_sched::manage::{ScheduleManager, SynthesisBackend};
use dynplat_sched::rta;

type DseRun<'a> = (
    &'a str,
    Box<dyn Fn() -> dynplat_dse::search::DseResult + 'a>,
);
use dynplat_sched::task::{TaskSet, TaskSpec};
use std::time::Instant;

fn platform_model(n_apps: u32, pool: u16) -> SystemModel {
    let mut hardware = HwTopology::new();
    let ids: Vec<EcuId> = (0..pool).map(EcuId).collect();
    for &id in &ids {
        hardware
            .add_ecu(EcuSpec::of_class(
                id,
                format!("p{}", id.raw()),
                EcuClass::Domain,
            ))
            .expect("fresh");
    }
    hardware
        .add_bus(BusSpec::new(
            dynplat_common::BusId(0),
            "bb",
            BusKind::ethernet_1g(),
            ids.clone(),
        ))
        .expect("fresh");
    let applications = vehicle_functions(n_apps);
    let mut deployment = Deployment::default();
    for app in &applications {
        deployment
            .mapping
            .insert(app.id, MappingChoice::AnyOf(ids.clone()));
    }
    SystemModel {
        hardware,
        interfaces: vec![],
        applications,
        deployment,
    }
}

fn main() {
    // -- DSE quality / runtime ---------------------------------------------------
    let table = Table::new(
        "E10a — DSE algorithms over growing architectures",
        &[
            "apps",
            "algorithm",
            "feasible",
            "cost",
            "peak_U",
            "evals",
            "runtime_ms",
        ],
    );
    for n in [10u32, 30, 60] {
        let model = platform_model(n, (n / 6).clamp(2, 10) as u16);
        let cfg = DseConfig {
            iterations: 1200,
            seed: 3,
            ..Default::default()
        };

        let runs: Vec<DseRun> = vec![
            ("greedy", Box::new(|| greedy_first_fit(&model))),
            ("random", Box::new(|| random_search(&model, &cfg))),
            ("annealing", Box::new(|| simulated_annealing(&model, &cfg))),
            ("annealing-x4", Box::new(|| explore(&model, &cfg))),
        ];
        for (name, run) in runs {
            let start = Instant::now();
            let result = run();
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            let (_, obj) = result.best.expect("candidate exists");
            table.row(&[
                n.to_string(),
                name.to_owned(),
                obj.is_feasible().to_string(),
                obj.used_cost.to_string(),
                format!("{:.3}", obj.peak_utilization),
                result.evaluations.to_string(),
                format!("{elapsed:.1}"),
            ]);
        }
    }

    // -- admission soundness -------------------------------------------------------
    // Constrained-deadline sets: utilization-only admission is unsound.
    let table = Table::new(
        "E10b — admission tests on 200 random constrained-deadline task sets",
        &["test", "admitted_sets", "of_which_unschedulable"],
    );
    let mut rng = dynplat_common::rng::seeded_rng(17);
    use dynplat_common::rng::Rng;
    let mut results: Vec<(&str, u32, u32)> = vec![("utilization<=1", 0, 0), ("edf_exact", 0, 0)];
    for _ in 0..200 {
        let set: TaskSet = (0..4u32)
            .map(|i| {
                let period = SimDuration::from_millis(rng.gen_range(4u64..20));
                let wcet = SimDuration::from_millis(rng.gen_range(1u64..4)).min(period);
                let deadline = wcet.max(period / rng.gen_range(1u64..4));
                TaskSpec::periodic(TaskId(i), format!("t{i}"), period, wcet).with_deadline(deadline)
            })
            .collect();
        let truly_schedulable = dynplat_sched::edf::is_edf_schedulable(&set);
        for (idx, test) in [
            AdmissionTest::UtilizationOnly { limit_milli: 1000 },
            AdmissionTest::Edf,
        ]
        .into_iter()
        .enumerate()
        {
            let mut ctrl = AdmissionController::with_test(test);
            let all_admitted = set.tasks().iter().all(|t| {
                ctrl.try_admit(t.clone())
                    .map(|d| d.admitted)
                    .unwrap_or(false)
            });
            if all_admitted {
                results[idx].1 += 1;
                if !truly_schedulable {
                    results[idx].2 += 1;
                }
            }
        }
    }
    for (name, admitted, unsound) in results {
        table.row(&[name.to_owned(), admitted.to_string(), unsound.to_string()]);
    }

    // -- local vs cloud schedule management ([21]) -----------------------------------
    let table = Table::new(
        "E10c — schedule management: local incremental vs cloud resynthesis",
        &["scenario", "backend", "ok", "disturbance", "latency_ms"],
    );
    // Scenario A: plenty of slack — local insertion succeeds.
    let base: TaskSet = (0..4u32)
        .map(|i| {
            TaskSpec::periodic(
                TaskId(i),
                format!("t{i}"),
                SimDuration::from_millis(20),
                SimDuration::from_millis(1),
            )
        })
        .collect();
    let new_task = TaskSpec::periodic(
        TaskId(100),
        "added",
        SimDuration::from_millis(10),
        SimDuration::from_millis(1),
    );
    for backend in [
        SynthesisBackend::Local,
        SynthesisBackend::Cloud {
            round_trip: SimDuration::from_millis(120),
        },
    ] {
        let mut mgr = ScheduleManager::with_initial(base.clone()).expect("base synthesizes");
        match mgr.add_task(new_task.clone(), backend) {
            Ok(outcome) => table.row(&[
                "slack".into(),
                format!("{backend:?}"),
                "true".into(),
                outcome.disturbance.to_string(),
                ms(outcome.latency),
            ]),
            Err(e) => table.row(&[
                "slack".into(),
                format!("{backend:?}"),
                format!("false ({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    // Scenario B: fragmented — local fails, mixed strategy falls back to cloud.
    let fragmented: TaskSet = [
        TaskSpec::periodic(
            TaskId(0),
            "a",
            SimDuration::from_millis(8),
            SimDuration::from_millis(3),
        ),
        TaskSpec::periodic(
            TaskId(1),
            "b",
            SimDuration::from_millis(8),
            SimDuration::from_millis(3),
        ),
    ]
    .into_iter()
    .collect();
    let tight = TaskSpec::periodic(
        TaskId(100),
        "tight",
        SimDuration::from_millis(4),
        SimDuration::from_millis(1),
    );
    let mut mgr = ScheduleManager::with_initial(fragmented).expect("synthesizes");
    let local_fails = mgr
        .add_task(tight.clone(), SynthesisBackend::Local)
        .is_err();
    let outcome = mgr
        .add_task_mixed(tight, SimDuration::from_millis(120))
        .expect("mixed strategy succeeds");
    table.row(&[
        "fragmented".into(),
        "Local".into(),
        format!("{}", !local_fails),
        "-".into(),
        "-".into(),
    ]);
    table.row(&[
        "fragmented".into(),
        format!("{:?}(fallback)", outcome.backend),
        "true".into(),
        outcome.disturbance.to_string(),
        ms(outcome.latency),
    ]);

    // Sanity: every schedule the manager holds is still analyzable.
    let dm = rta::assign_deadline_monotonic(mgr.tasks());
    println!(
        "# post-update RTA schedulable: {}",
        rta::is_schedulable(&dm)
    );
}
