//! E8 (§4.1): package security — local verification cost per ECU crypto
//! class, rejection of tampered/unsigned/replayed packages, and the update
//! master path for crypto-less ECUs including master redundancy.
//!
//! Expected shape: verification throughput is bounded by the ECU's crypto
//! tier (software ≫ accelerator cost); the weak-ECU voucher check (one
//! HMAC) is far cheaper than a signature verification; every manipulated
//! package class is rejected; the redundant master keeps serving after a
//! primary failure.

#![forbid(unsafe_code)]

use dynplat_bench::{us, Table};
use dynplat_common::time::SimDuration;
use dynplat_common::{AppId, EcuId};
use dynplat_hw::ecu::CryptoSupport;
use dynplat_security::master::{RedundantMasters, UpdateMaster, WeakEcuVerifier};
use dynplat_security::package::{InstallGate, KeyRegistry, SignedPackage, UpdatePackage, Version};
use dynplat_security::sign::KeyPair;
use std::time::Instant;

fn main() {
    let authority = KeyPair::from_seed(b"oem");
    let mut registry = KeyRegistry::new();
    registry.trust(authority.public());
    let package = UpdatePackage::new(AppId(1), Version::new(2, 0, 0), 7, vec![0xAB; 64 * 1024]);
    let signed = SignedPackage::create(&package, &authority);

    // -- verification cost per crypto class ----------------------------------
    // Measure the real signature verification once, then scale by the
    // hardware cost model (DESIGN.md §5: relative cost, not absolute).
    let reps = 200u32;
    let start = Instant::now();
    for _ in 0..reps {
        signed.verify(&registry).expect("verifies");
    }
    let base = start.elapsed() / reps;
    let base_sim = SimDuration::from_nanos(base.as_nanos() as u64);

    let table = Table::new(
        "E8a — 64 KiB package verification cost by ECU crypto class",
        &["crypto_class", "relative_cost", "modeled_us"],
    );
    for class in [
        CryptoSupport::Hsm,
        CryptoSupport::Accelerator,
        CryptoSupport::Software,
    ] {
        let factor = class.verify_cost_factor().expect("verifying classes");
        table.row(&[
            class.to_string(),
            format!("{factor:.1}"),
            us(base_sim.mul_f64(factor)),
        ]);
    }
    println!("# crypto class `none`: cannot verify locally — delegated to the update master");

    // -- attack rejection -----------------------------------------------------
    let table = Table::new(
        "E8b — manipulated package rejection",
        &["attack", "rejected"],
    );
    let mut tampered = signed.clone();
    tampered.package_bytes[1000] ^= 0x80;
    table.row(&[
        "payload_bit_flip".into(),
        tampered.verify(&registry).is_err().to_string(),
    ]);

    let rogue = KeyPair::from_seed(b"rogue authority");
    let forged = SignedPackage::create(&package, &rogue);
    table.row(&[
        "unsigned_authority".into(),
        forged.verify(&registry).is_err().to_string(),
    ]);

    let mut gate = InstallGate::new();
    gate.accept(&signed, &registry).expect("first install");
    table.row(&[
        "replay".into(),
        gate.accept(&signed, &registry).is_err().to_string(),
    ]);
    let old = SignedPackage::create(
        &UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 3, vec![1]),
        &authority,
    );
    table.row(&[
        "rollback".into(),
        gate.accept(&old, &registry).is_err().to_string(),
    ]);

    let mut wrong_sig = signed.clone();
    wrong_sig.signature = authority.sign(b"something else");
    table.row(&[
        "signature_swap".into(),
        wrong_sig.verify(&registry).is_err().to_string(),
    ]);

    // -- update master for weak ECUs -------------------------------------------
    let psk = [0x55u8; 32];
    let mut m1 = UpdateMaster::new(registry.clone());
    let mut m2 = UpdateMaster::new(registry.clone());
    m1.enroll(EcuId(0), psk);
    m2.enroll(EcuId(0), psk);
    let weak = WeakEcuVerifier::new(EcuId(0), psk);

    // Voucher check vs signature verification, protocol cost only: both
    // sides must hash the image either way, so compare on a tiny package
    // where the asymmetric operation dominates. On a real low-end ECU the
    // gap is far larger still (software big-int vs one HMAC block).
    let small = UpdatePackage::new(AppId(2), Version::new(1, 0, 0), 1, vec![0u8; 64]);
    let small_signed = SignedPackage::create(&small, &authority);
    let (_, small_voucher) = m1
        .verify_for(&small_signed, EcuId(0))
        .expect("master verifies");
    let reps = 20_000u32;
    let start = Instant::now();
    for _ in 0..reps {
        assert!(weak.accept(&small_signed.package_bytes, &small_voucher));
    }
    let voucher_cost = start.elapsed() / reps;
    let start = Instant::now();
    for _ in 0..reps {
        small_signed.verify(&registry).expect("verifies");
    }
    let verify_cost = start.elapsed() / reps;
    println!(
        "# E8c — protocol cost on a 64 B package: voucher check {voucher_cost:?} vs signature \
         verification {verify_cost:?}. NOTE: the stand-in signature runs over a toy 61-bit \
         field (DESIGN.md S5), so asymmetric verification is unrealistically cheap here; on a \
         production curve it costs orders of magnitude more than the voucher single HMAC, \
         and the none-class ECU cannot run it at all."
    );

    // Redundant masters: primary fails, backup serves.
    let mut group = RedundantMasters::new(vec![m1, m2]);
    assert!(group.verify_for(&signed, EcuId(0)).is_ok());
    group.fail(0);
    let served_after_failure = group.verify_for(&signed, EcuId(0)).is_ok();
    group.fail(1);
    let served_after_total_loss = group.verify_for(&signed, EcuId(0)).is_ok();
    let table = Table::new(
        "E8d — redundant update masters",
        &["state", "weak_ecu_served"],
    );
    table.row(&["both_masters_up".into(), "true".into()]);
    table.row(&["primary_failed".into(), served_after_failure.to_string()]);
    table.row(&[
        "all_masters_failed".into(),
        served_after_total_loss.to_string(),
    ]);
}
