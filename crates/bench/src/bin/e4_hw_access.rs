//! E4 (§3.1 "Hardware Access & Communication"): an urgent deterministic
//! transmission vs. a non-deterministic bulk stream on a shared bus.
//!
//! Expected shape: FIFO Ethernet delays the urgent frame behind the entire
//! backlog (latency grows with load); 802.1p bounds it to one frame of
//! blocking; TSN bounds it to the critical window regardless of load.

#![forbid(unsafe_code)]

use dynplat_bench::{us, Table};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::MessageId;
use dynplat_net::ethernet::{ethernet_frame_time, FifoPort, StrictPriorityPort};
use dynplat_net::{simulate, Arbiter, Frame, GateControlList, TrafficClass, TsnGatedPort, TxEvent};

const MBIT100: u64 = 100_000_000;

fn scenario(bulk_frames: u64) -> Vec<TxEvent> {
    let mut events: Vec<TxEvent> = (0..bulk_frames)
        .map(|i| TxEvent {
            arrival: SimTime::from_micros(i * 50),
            frame: Frame::new(MessageId(1000 + i as u32), 1500)
                .with_priority(6)
                .with_class(TrafficClass::BestEffort),
        })
        .collect();
    // The urgent DA frame lands in the middle of the burst.
    events.push(TxEvent {
        arrival: SimTime::from_micros(bulk_frames * 25),
        frame: Frame::new(MessageId(1), 64)
            .with_priority(0)
            .with_class(TrafficClass::Critical),
    });
    events
}

fn urgent_latency<A: Arbiter>(mut port: A, events: Vec<TxEvent>) -> SimDuration {
    simulate(&mut port, events)
        .into_iter()
        .find(|t| t.frame.id == MessageId(1))
        .expect("urgent frame delivered")
        .latency()
}

fn main() {
    let table = Table::new(
        "E4 — urgent DA frame latency vs NDA bulk load on 100 Mbit/s Ethernet",
        &[
            "bulk_frames",
            "fifo_us",
            "strict_prio_us",
            "tsn_us",
            "one_frame_bound_us",
        ],
    );
    let bound = ethernet_frame_time(1500, MBIT100) + ethernet_frame_time(64, MBIT100);
    for bulk in [0u64, 50, 200, 800, 2000] {
        let fifo = urgent_latency(FifoPort::new(MBIT100), scenario(bulk));
        let prio = urgent_latency(StrictPriorityPort::new(MBIT100), scenario(bulk));
        let tsn = urgent_latency(
            TsnGatedPort::new(
                MBIT100,
                GateControlList::mixed_criticality(SimDuration::from_millis(1), 0.3),
            ),
            scenario(bulk),
        );
        table.row(&[bulk.to_string(), us(fifo), us(prio), us(tsn), us(bound)]);
    }
}
