//! E12 (§3.3/§3.4): chaos campaign — fault rate × retry policy.
//!
//! A mixed-criticality request/response workload (one ASIL-D control loop,
//! three QM clients) runs over a fault-injected fabric. The sweep crosses
//! message-fault intensity with the retry policy protecting the control
//! loop; a second scenario partitions the primary provider's bus for
//! 500 ms and watches detection, failover to the backup provider, and the
//! degradation ladder walking back to `Full`.
//!
//! Expected shape: the DA deadline-miss rate stays well below the QM
//! degradation rate at every non-zero fault rate — retries recover what
//! single-shot QM traffic loses, and under pressure the ladder sheds QM
//! load first (§3.3). Everything is seed-deterministic: running this
//! binary twice prints byte-identical tables.

#![forbid(unsafe_code)]

use dynplat_bench::chaos::{burst_plan, run_campaign, sweep_plan, CampaignConfig, CampaignSummary};
use dynplat_bench::Table;
use dynplat_comm::retry::RetryPolicy;

const SEED: u64 = 0xE12_5EED;

fn policies() -> [(RetryPolicy, &'static str); 3] {
    [
        (RetryPolicy::none(), "none"),
        (RetryPolicy::standard(), "standard"),
        (RetryPolicy::aggressive(), "aggressive"),
    ]
}

fn main() {
    let table = Table::new(
        "E12 — chaos campaign: fault rate x retry policy (seed 0xE12_5EED)",
        &CampaignSummary::columns(),
    );
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20, 0.30] {
        for (policy, name) in policies() {
            let cfg = CampaignConfig::new(SEED, sweep_plan(SEED, rate), policy, name);
            let summary = run_campaign(&cfg);
            summary.print_row(&table, &format!("rate={rate:.2}"));
        }
    }

    let table = Table::new(
        "E12 — burst scenario: 500 ms partition of the primary provider's bus at t=2s",
        &CampaignSummary::columns(),
    );
    for (policy, name) in policies() {
        let cfg = CampaignConfig::new(SEED, burst_plan(SEED), policy, name);
        let summary = run_campaign(&cfg);
        summary.print_row(&table, "burst");
        if name == "standard" {
            println!(
                "# burst/standard fault counters: {}",
                summary
                    .report
                    .fault_summary()
                    .iter()
                    .map(|(k, n)| format!("{k}={n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!(
                "# burst/standard ladder: {}",
                summary
                    .transitions
                    .iter()
                    .map(|(t, l)| format!("{:.2}s->{l}", t.as_secs_f64()))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
    }
}
