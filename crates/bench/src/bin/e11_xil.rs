//! E11 (§2.4): XiL testing — the same regression suite and the same
//! injected defect at MiL, SiL and HiL.
//!
//! Expected shape: suite wall clock and error-reproduction time are
//! dominated by the level's execution factor and setup cost, so MiL/SiL are
//! one to two orders of magnitude cheaper than HiL (flash programming +
//! real time) — the paper's argument for shifting testing to earlier
//! stages; certification effort multiplies with ASIL.

#![forbid(unsafe_code)]

use dynplat_bench::Table;
use dynplat_common::Asil;
use dynplat_xil::control::VirtualControlUnit;
use dynplat_xil::harness::{cruise_suite, FaultInjection, TestCase, TestHarness};
use dynplat_xil::TestLevel;

fn main() {
    let harness = TestHarness::new(VirtualControlUnit::cruise_control())
        .with_buggy_variant(VirtualControlUnit::cruise_control_buggy());
    let suite = cruise_suite();

    // -- regression suite cost per level ---------------------------------------
    let table = Table::new(
        "E11a — regression suite (4 cases) per level",
        &["level", "passed", "wall_clock_s", "speedup_vs_hil"],
    );
    let hil_cost = harness.run_suite(TestLevel::Hil, &suite).wall_clock;
    for level in TestLevel::ALL {
        let report = harness.run_suite(level, &suite);
        table.row(&[
            level.to_string(),
            format!(
                "{}/{}",
                report.outcomes.len() - report.failures(),
                report.outcomes.len()
            ),
            format!("{:.1}", report.wall_clock.as_secs_f64()),
            format!(
                "{:.1}x",
                hil_cost.as_secs_f64() / report.wall_clock.as_secs_f64()
            ),
        ]);
    }

    // -- error reproduction ------------------------------------------------------
    let table = Table::new(
        "E11b — reproducing an injected defect (10 debug iterations)",
        &["level", "single_repro_s", "ten_iterations_s"],
    );
    let case = TestCase::new("repro", 30.0, 10_000, 0.5);
    let injection = FaultInjection { at_step: 2_000 };
    for level in TestLevel::ALL {
        let (wall, _step) = harness
            .reproduce_error(level, &case, injection, 5.0)
            .expect("defect observable");
        table.row(&[
            level.to_string(),
            format!("{:.1}", wall.as_secs_f64()),
            format!("{:.1}", wall.as_secs_f64() * 10.0),
        ]);
    }

    // -- certification effort by ASIL ----------------------------------------------
    let table = Table::new(
        "E11c — certification effort (suite at SiL, scaled by ASIL factor)",
        &["asil", "effort_s"],
    );
    for asil in Asil::ALL {
        let cost = harness.certification_cost(TestLevel::Sil, &suite, asil);
        table.row(&[asil.to_string(), format!("{:.1}", cost.as_secs_f64())]);
    }

    // -- coverage note ----------------------------------------------------------
    println!(
        "# coverage: MiL covers model only; SiL adds production software; HiL adds target hardware"
    );
}
