//! E13 (§3.4): detection latency — fault injection to first verdict.
//!
//! Runs every detection scenario of [`dynplat_bench::detect`] with causal
//! tracing on and prints, per injected fault kind, the latency from the
//! first injection to (a) the first non-`Normal` drift verdict of the
//! RTT-watching detector and (b) the first flight-recorder incident dump.
//!
//! Flags:
//!
//! * `--horizon-ms N` — campaign horizon per scenario (default 6000);
//! * `--dump PATH` — write the first frozen flight dump as JSON
//!   (Chrome-independent `dynplat.flight.v1` schema) for artifact upload.
//!
//! Everything is seed-deterministic: running this binary twice prints
//! byte-identical tables.

#![forbid(unsafe_code)]

use dynplat_bench::detect::{run_all, DetectionOutcome};
use dynplat_bench::Table;
use dynplat_common::time::SimDuration;

const SEED: u64 = 0xE13_5EED;

fn main() {
    let mut horizon = SimDuration::from_millis(6_000);
    let mut dump_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--horizon-ms" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("--horizon-ms needs an integer");
                horizon = SimDuration::from_millis(v);
            }
            "--dump" => dump_path = Some(args.next().expect("--dump needs a path")),
            other => panic!("unknown flag {other}"),
        }
    }

    let table = Table::new(
        &format!(
            "E13 — detection latency per injected fault kind (seed {SEED:#x}, horizon {:.1}s)",
            horizon.as_secs_f64()
        ),
        &DetectionOutcome::columns(),
    );
    let outcomes = run_all(SEED, horizon);
    for out in &outcomes {
        table.row(&out.row());
    }
    let captured = outcomes
        .iter()
        .filter(|o| o.capture_latency.is_some())
        .count();
    println!("# captured {}/{} scenarios", captured, outcomes.len());

    if let Some(path) = dump_path {
        let dump = outcomes
            .iter()
            .flat_map(|o| o.dumps.first())
            .next()
            .expect("at least one scenario froze a dump");
        std::fs::write(&path, dump.to_json()).expect("write flight dump");
        println!("# first flight dump written to {path}");
    }
}
