//! E9 (§4.2): authentication and authorization — session setup after the
//! lightweight framework of \[10\], model-derived access control, and
//! runtime permission updates.
//!
//! Expected shape: session setup costs two MAC-ish operations (cheap),
//! data-plane authentication is one truncated HMAC per message; the
//! model-generated matrix grants exactly the declared bindings and nothing
//! else; wildcard diagnosis grants are visible for audit; permission packs
//! merged at runtime take effect immediately and bump the matrix version.

#![forbid(unsafe_code)]

use dynplat_bench::Table;
use dynplat_common::{AppId, MethodId, ServiceId};
use dynplat_model::dsl::parse_model;
use dynplat_model::generate::access_matrix;
use dynplat_security::authn::{service_accept_ticket, KeyServer, Principal, SecureChannel};
use dynplat_security::authz::{AccessControlMatrix, Permission};
use std::time::Instant;

const MODEL: &str = r#"
system {
  hardware {
    ecu "gw" { id 1 class domain }
    bus "e" { id 0 ethernet 100000000 attach [1] }
  }
  interface "climate"  { id 1 owner 1 version 1 method "set" { id 1 request u8 response bool } }
  interface "door"     { id 2 owner 1 version 1 method "lock" { id 1 request bool response bool } }
  interface "state"    { id 3 owner 1 version 1 event "speed" { id 1 payload {v: f64} } }
  application "server" { id 1 deterministic asil B provides [1 2 3] period 10ms work 1 memory 128 }
  application "hmi"    { id 2 non-deterministic asil QM consumes [1 method 1, 3 event 1] period 50ms work 1 memory 128 }
  application "keyfob" { id 3 non-deterministic asil B consumes [2 method 1] period 100ms work 1 memory 128 }
  deployment { app 1 on 1  app 2 on 1  app 3 on 1 }
}
"#;

fn main() {
    // -- session setup and data-plane costs -----------------------------------
    let mut ks = KeyServer::new();
    ks.enroll(Principal::Client(AppId(2)), [1; 32]);
    ks.enroll(Principal::Service(ServiceId(1)), [2; 32]);
    let reps = 5_000u32;
    let start = Instant::now();
    let mut last = None;
    for _ in 0..reps {
        last = Some(ks.grant_session(AppId(2), ServiceId(1)).expect("granted"));
    }
    let setup = start.elapsed() / reps;
    let grant = last.expect("at least one grant");

    let mut service =
        service_accept_ticket(&[2; 32], AppId(2), ServiceId(1), &grant).expect("ticket ok");
    let mut client = SecureChannel::new(grant.session_key);
    let payload = vec![0u8; 64];
    let reps = 20_000u32;
    let start = Instant::now();
    for _ in 0..reps {
        let msg = client.seal(&payload);
        service.open(&msg).expect("authentic");
    }
    let per_msg = start.elapsed() / reps;
    println!("# E9a — session setup {setup:?}; authenticated 64 B message round {per_msg:?}");

    // -- model-derived matrix ---------------------------------------------------
    let model = parse_model(MODEL).expect("parses");
    let matrix = access_matrix(&model);
    let table = Table::new(
        "E9b — model-derived access decisions (deny-by-default)",
        &["client", "service", "permission", "decision"],
    );
    let checks = [
        (AppId(2), ServiceId(1), Permission::Call(MethodId(1))), // declared
        (AppId(2), ServiceId(3), Permission::Subscribe),         // declared
        (AppId(2), ServiceId(2), Permission::Call(MethodId(1))), // NOT declared
        (AppId(3), ServiceId(2), Permission::Call(MethodId(1))), // declared
        (AppId(3), ServiceId(1), Permission::Call(MethodId(1))), // NOT declared
        (AppId(9), ServiceId(1), Permission::Call(MethodId(1))), // unknown app
    ];
    for (client, service, perm) in checks {
        table.row(&[
            client.to_string(),
            service.to_string(),
            perm.to_string(),
            format!("{:?}", matrix.check(client, service, perm)),
        ]);
    }

    // -- runtime permission adjustment & audit ----------------------------------
    let mut live = matrix.clone();
    let v0 = live.version();
    let mut diagnosis_pack = AccessControlMatrix::new();
    for service in [ServiceId(1), ServiceId(2), ServiceId(3)] {
        diagnosis_pack.grant(AppId(42), service, Permission::All);
    }
    live.merge(&diagnosis_pack);
    let table = Table::new(
        "E9c — runtime permission pack (data logger, §4.2)",
        &["metric", "value"],
    );
    table.row(&["version_before".into(), v0.to_string()]);
    table.row(&["version_after".into(), live.version().to_string()]);
    table.row(&[
        "logger_subscribe_state".into(),
        format!(
            "{:?}",
            live.check(AppId(42), ServiceId(3), Permission::Subscribe)
        ),
    ]);
    table.row(&[
        "wildcard_grants_for_audit".into(),
        live.wildcard_grants().count().to_string(),
    ]);
    // Revocation takes effect immediately.
    live.revoke(AppId(42), ServiceId(3), Permission::All);
    table.row(&[
        "logger_after_revoke".into(),
        format!(
            "{:?}",
            live.check(AppId(42), ServiceId(3), Permission::Subscribe)
        ),
    ]);
}
