//! The E15 fleet-campaign experiment core.
//!
//! E14 showed uncertainty-driven adaptation on one vehicle; E15 scales the
//! same machinery to the place the paper actually aims it (§4.1): an
//! update master rolling a release across 10⁵–10⁶ vehicles. Three arms run
//! the identical staged campaign (same seed, same fleet, same waves) under
//! different fault plans:
//!
//! * **quiet** — healthy fleet and network: every wave promotes, the
//!   completion distribution is tight;
//! * **degraded** — lossy links, latency spikes and two partitioned
//!   region buses: the campaign still promotes, but the straggler tail
//!   stretches by orders of magnitude;
//! * **broken** — a corrupted image: per-vehicle verification failures
//!   stream into the wave gate, the [`BoundaryEstimator`] trips with
//!   confidence, and the master rolls the wave back (the rollback storm)
//!   instead of pushing the release to the rest of the fleet.
//!
//! All reported quantities live on the *simulated* clock so the JSON
//! (schema `dynplat.e15.v1`) is byte-identical across reruns **and across
//! shard counts** — the CI gate pins both.
//!
//! [`BoundaryEstimator`]: dynplat_monitor::uncertainty::BoundaryEstimator

use crate::Table;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::BusId;
use dynplat_faults::FaultPlan;
use dynplat_fleet::{CampaignReport, CampaignSpec, UpdateMaster};

/// One arm of the E15 experiment.
#[derive(Clone, Debug)]
pub struct FleetArm {
    /// Arm label (`quiet` / `degraded` / `broken`).
    pub name: &'static str,
    /// The fault plan the campaign runs under.
    pub plan: FaultPlan,
}

/// The standard three arms over `seed`.
pub fn fleet_arms(seed: u64) -> Vec<FleetArm> {
    vec![
        FleetArm {
            name: "quiet",
            plan: FaultPlan::quiet(seed),
        },
        FleetArm {
            name: "degraded",
            // Lossy cellular links with latency spikes, plus two region
            // buses partitioned for thirteen minutes across the canary
            // wave: vehicles caught mid-download wait the window out, and
            // the completion tail stretches by most of an order of
            // magnitude (the straggler arm).
            plan: FaultPlan::quiet(seed)
                .with_message_faults(0.08, 0.0, 0.0)
                .with_delay_spikes(0.05, SimDuration::from_secs(2))
                .partition(BusId(0), SimTime::from_secs(100), SimTime::from_secs(900))
                .partition(BusId(1), SimTime::from_secs(100), SimTime::from_secs(900)),
        },
        FleetArm {
            name: "broken",
            // A bad release: heavy image corruption drives verification
            // failures far past the wave gate's boundary.
            plan: FaultPlan::quiet(seed).with_message_faults(0.02, 0.35, 0.0),
        },
    ]
}

/// One arm's merged campaign, reduced to the E15 figures.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Arm label.
    pub arm: &'static str,
    /// Fleet size offered the campaign.
    pub vehicles: u32,
    /// Vehicles that passed admission.
    pub admitted: u64,
    /// Vehicles running the new version at campaign end.
    pub updated: u64,
    /// Individual verification failures (vehicle-local rollbacks).
    pub verify_failed: u64,
    /// Vehicles reversed by wave-gate rollbacks (the storm total).
    pub storm: u64,
    /// Vehicles never offered the image because the campaign halted.
    pub skipped: u64,
    /// Waves promoted / waves opened.
    pub waves_promoted: u32,
    /// Waves opened before the campaign finished or halted.
    pub waves_opened: u32,
    /// `true` if a wave gate halted the campaign.
    pub halted: bool,
    /// Admission throughput on the simulated clock (vehicles per
    /// simulated second).
    pub admitted_per_sim_sec: f64,
    /// Completion-time distribution percentiles, in sim-clock ms.
    pub p50_ms: u64,
    /// 90th percentile completion, ms.
    pub p90_ms: u64,
    /// 99th percentile completion, ms.
    pub p99_ms: u64,
    /// Slowest completion, ms.
    pub max_ms: u64,
    /// Vehicles slower than 4× the median completion — the straggler tail.
    pub stragglers: u64,
    /// Campaign end on the simulated clock, ms.
    pub sim_end_ms: u64,
}

/// Percentile of a sorted sample set (nearest-rank; 0 for empty input).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl FleetResult {
    /// Reduces a merged campaign report to the E15 figures.
    pub fn from_report(arm: &'static str, report: &CampaignReport) -> Self {
        let ms = report.completion_ms_sorted();
        FleetResult {
            arm,
            vehicles: report.vehicles,
            admitted: report.totals.admitted,
            updated: report.totals.updated.saturating_sub(report.storm_total()),
            verify_failed: report.totals.verify_failed,
            storm: report.storm_total(),
            skipped: report.skipped,
            waves_promoted: report.waves.iter().filter(|w| w.promoted).count() as u32,
            waves_opened: report.waves.len() as u32,
            halted: report.halted,
            admitted_per_sim_sec: report.admitted_per_sim_sec(),
            p50_ms: percentile(&ms, 0.50),
            p90_ms: percentile(&ms, 0.90),
            p99_ms: percentile(&ms, 0.99),
            max_ms: ms.last().copied().unwrap_or(0),
            stragglers: report.straggler_count(4.0),
            sim_end_ms: report.completed_at.as_millis(),
        }
    }

    /// Table row (stable formatting).
    pub fn row(&self) -> Vec<String> {
        vec![
            self.arm.to_owned(),
            self.vehicles.to_string(),
            self.admitted.to_string(),
            self.updated.to_string(),
            self.verify_failed.to_string(),
            self.storm.to_string(),
            self.skipped.to_string(),
            format!("{}/{}", self.waves_promoted, self.waves_opened),
            format!("{:.1}", self.admitted_per_sim_sec),
            self.p50_ms.to_string(),
            self.p99_ms.to_string(),
            self.max_ms.to_string(),
            self.stragglers.to_string(),
        ]
    }

    /// Header matching [`FleetResult::row`].
    pub fn columns() -> [&'static str; 13] {
        [
            "arm",
            "vehicles",
            "admitted",
            "updated",
            "verify_failed",
            "storm",
            "skipped",
            "waves",
            "adm_per_sim_s",
            "p50_ms",
            "p99_ms",
            "max_ms",
            "stragglers",
        ]
    }

    /// Prints this result as one row of `table`.
    pub fn print_row(&self, table: &Table) {
        table.row(&self.row());
    }

    /// One JSON object (hand-rolled like every snapshot in the workspace,
    /// schema `dynplat.e15.v1` fields). Sim-clock quantities only: no
    /// wall-clock value may enter, or rerun/shard-count byte-identity dies.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"arm\":\"{}\",\"vehicles\":{},\"admitted\":{},\"updated\":{},",
                "\"verify_failed\":{},\"storm\":{},\"skipped\":{},",
                "\"waves_promoted\":{},\"waves_opened\":{},\"halted\":{},",
                "\"admitted_per_sim_sec\":{:.6},",
                "\"completion_ms\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},",
                "\"stragglers\":{},\"sim_end_ms\":{}}}"
            ),
            self.arm,
            self.vehicles,
            self.admitted,
            self.updated,
            self.verify_failed,
            self.storm,
            self.skipped,
            self.waves_promoted,
            self.waves_opened,
            self.halted,
            self.admitted_per_sim_sec,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.stragglers,
            self.sim_end_ms,
        )
    }
}

/// Serializes a whole E15 run as a JSON document (schema `dynplat.e15.v1`).
pub fn arms_to_json(seed: u64, vehicles: u32, results: &[FleetResult]) -> String {
    let rows: Vec<String> = results.iter().map(FleetResult::to_json).collect();
    format!(
        "{{\"schema\":\"dynplat.e15.v1\",\"seed\":{},\"vehicles\":{},\"arms\":[{}]}}\n",
        seed,
        vehicles,
        rows.join(",")
    )
}

/// Runs one arm over `vehicles` vehicles on `shards` shards.
pub fn run_arm(seed: u64, vehicles: u32, shards: usize, arm: &FleetArm) -> FleetResult {
    let spec = CampaignSpec::standard(seed, vehicles, arm.plan.clone());
    let report = UpdateMaster::new(spec, shards).run();
    FleetResult::from_report(arm.name, &report)
}

/// Runs the standard three-arm E15 campaign set.
pub fn run_arms(seed: u64, vehicles: u32, shards: usize) -> Vec<FleetResult> {
    fleet_arms(seed)
        .iter()
        .map(|arm| run_arm(seed, vehicles, shards, arm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xE15_5EED;

    #[test]
    fn arms_are_deterministic_across_shard_counts() {
        let a = arms_to_json(SEED, 6_000, &run_arms(SEED, 6_000, 1));
        let b = arms_to_json(SEED, 6_000, &run_arms(SEED, 6_000, 4));
        assert_eq!(a, b, "E15 JSON must not depend on the shard count");
    }

    #[test]
    fn quiet_promotes_degraded_straggles_broken_storms() {
        let results = run_arms(SEED, 6_000, 2);
        let by_name = |n: &str| results.iter().find(|r| r.arm == n).expect("arm present");
        let quiet = by_name("quiet");
        assert!(!quiet.halted);
        assert_eq!(quiet.storm, 0);
        assert_eq!(quiet.waves_promoted, quiet.waves_opened);

        let degraded = by_name("degraded");
        assert!(!degraded.halted, "degraded is slow, not broken");
        assert!(
            degraded.max_ms > quiet.max_ms * 4,
            "partitions must stretch the tail: degraded {} vs quiet {}",
            degraded.max_ms,
            quiet.max_ms
        );
        assert!(degraded.stragglers > quiet.stragglers);

        let broken = by_name("broken");
        assert!(broken.halted, "corrupted image must trip a wave gate");
        assert!(broken.storm > 0);
        assert!(broken.skipped > 0);
        assert!(broken.waves_promoted < broken.waves_opened);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 0.50), 20);
        assert_eq!(percentile(&s, 0.90), 40);
        assert_eq!(percentile(&s, 0.25), 10);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn updated_and_storm_partition_the_successes() {
        for r in run_arms(SEED, 4_000, 2) {
            assert_eq!(
                r.updated + r.storm + r.verify_failed,
                r.admitted,
                "{}: successes plus storms plus failures must equal admissions",
                r.arm
            );
        }
    }
}
