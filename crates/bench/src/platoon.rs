//! A three-vehicle V2X platoon over the chaos fabric.
//!
//! The paper's uncertainty story is not confined to one ECU: a platoon's
//! cooperative adaptive cruise control (CACC) holds a tight gap *because*
//! each follower receives the leader's state over V2X. When that link
//! degrades, the follower must fall back to radar-only ACC and a larger
//! gap — and the decision to fall back is exactly a boundary-exceedance
//! question about an uncertain, noisy signal. This module drives a leader
//! and two followers over a shared "air" bus, perturbs the beacons with a
//! [`FaultPlan`] (background loss plus a hard V2X outage starting at the
//! E13 onset), and lets a [`BoundaryEstimator`] per follower decide the
//! CACC → ACC switch. The same beacon-loss series is replayed through a
//! point-threshold rule, so the platoon reports the mode-switching
//! analogue of E14's ladder comparison:
//!
//! * a **spurious fallback** (leaving CACC while the link is healthy)
//!   costs efficiency — the platoon opens to the ACC gap for nothing;
//! * a **late fallback** (holding CACC into a real outage) costs safety —
//!   the follower is closing at a stale target.
//!
//! Radar range measurements carry [`GaussianNoise`], the estimator's
//! flight-recorder hook captures every mode flip with the beacon's
//! [`TraceCtx`], and the whole run is a pure function of its seed.

use crate::detect::onset;
use dynplat_comm::fabric::{Fabric, MessageSend};
use dynplat_common::rng::{seeded_rng, split_seed};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId};
use dynplat_faults::{ChaosFabric, FaultPlan};
use dynplat_hw::ecu::{EcuClass, EcuSpec};
use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
use dynplat_monitor::uncertainty::{BoundaryConfig, BoundaryEstimator};
use dynplat_net::TrafficClass;
use dynplat_obs::{FlightRecorder, TraceCtx};
use dynplat_sim::jitter::GaussianNoise;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Longitudinal control mode of a follower.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlMode {
    /// Cooperative ACC: V2X beacons fresh, tight gap.
    Cacc,
    /// Radar-only ACC: V2X distrusted, extended gap.
    Acc,
}

/// Platoon workload configuration.
#[derive(Clone, Debug)]
pub struct PlatoonConfig {
    /// Master seed.
    pub seed: u64,
    /// Run length.
    pub horizon: SimDuration,
    /// Leader beacon period (100 ms ⇒ 10 Hz, the V2X CAM default).
    pub beacon_period: SimDuration,
    /// Mode-decision window: beacon losses are aggregated per window.
    pub window: SimDuration,
    /// Background beacon drop rate (channel noise).
    pub noise_drop: f64,
    /// Inject a hard V2X outage over the E13 fault span (⅓ → ⅔ of the
    /// horizon).
    pub outage: bool,
    /// Windowed beacon-loss ratio above which CACC is no longer safe.
    pub loss_boundary: f64,
    /// Confidence the estimator must reach before a follower leaves CACC.
    pub trip_confidence: f64,
    /// Belief at or below which (with a tight band) CACC resumes.
    pub clear_confidence: f64,
    /// Radar range noise (meters, 1σ).
    pub radar_sigma_m: f64,
}

impl PlatoonConfig {
    /// The standard platoon: 9 s horizon, 10 Hz beacons, 500 ms windows,
    /// outage on.
    pub fn new(seed: u64) -> Self {
        PlatoonConfig {
            seed,
            horizon: SimDuration::from_secs(9),
            beacon_period: SimDuration::from_millis(100),
            window: SimDuration::from_millis(500),
            noise_drop: 0.05,
            outage: true,
            loss_boundary: 0.5,
            trip_confidence: 0.95,
            clear_confidence: 0.10,
            radar_sigma_m: 0.3,
        }
    }
}

/// What one switching rule did over one follower's beacon-loss series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchStats {
    /// CACC → ACC transitions.
    pub fallbacks: u64,
    /// Fallbacks charged to windows outside the injected outage.
    pub spurious_fallbacks: u64,
    /// Outage onset to the first fallback inside the outage (`None` when
    /// the rule never fell back, or no outage was injected).
    pub fallback_latency: Option<SimDuration>,
    /// Outage windows ridden out in CACC — closing on stale leader state.
    pub unsafe_windows: u64,
    /// Healthy windows spent in ACC — gap opened for nothing.
    pub inefficient_windows: u64,
}

/// Outcome of one platoon run.
#[derive(Clone, Debug)]
pub struct PlatoonOutcome {
    /// Beacons transmitted per follower.
    pub beacons_per_follower: u64,
    /// Beacons lost, summed over both followers.
    pub beacons_lost: u64,
    /// Decision windows per follower.
    pub windows: u64,
    /// Point-threshold switching, aggregated over both followers.
    pub threshold: SwitchStats,
    /// Estimator-driven switching, aggregated over both followers.
    pub uncertainty: SwitchStats,
    /// Mean absolute radar-range measurement error (m) — the Gaussian
    /// sensor model's contribution, reported for the example output.
    pub mean_radar_error_m: f64,
}

/// veh0 (leader) — veh1, veh2 (followers), all on one shared V2X channel.
fn platoon_topology() -> HwTopology {
    HwTopology::from_parts(
        [
            EcuSpec::of_class(EcuId(0), "veh0-obu", EcuClass::Domain),
            EcuSpec::of_class(EcuId(1), "veh1-obu", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "veh2-obu", EcuClass::Domain),
        ],
        [BusSpec::new(
            BusId(0),
            "v2x-air",
            BusKind::ethernet_100m(),
            [EcuId(0), EcuId(1), EcuId(2)],
        )],
    )
    .expect("static platoon topology is valid")
}

// Beacon id layout: | follower (bits 32..) | sequence (0..32) |
fn beacon_id(follower: u64, seq: u64) -> u64 {
    (follower << 32) | seq
}

fn apply_rule(
    losses: &[(SimTime, f64)],
    decide: &mut dyn FnMut(SimTime, f64) -> ControlMode,
    outage_span: Option<(SimTime, SimTime)>,
    window: SimDuration,
) -> SwitchStats {
    let mut stats = SwitchStats {
        fallbacks: 0,
        spurious_fallbacks: 0,
        fallback_latency: None,
        unsafe_windows: 0,
        inefficient_windows: 0,
    };
    let in_outage = |w_end: SimTime| {
        outage_span.is_some_and(|(from, until)| w_end > from && w_end - window < until)
    };
    let mut mode = ControlMode::Cacc;
    for &(w_end, loss) in losses {
        let next = decide(w_end, loss);
        let faulty = in_outage(w_end);
        if next == ControlMode::Acc && mode == ControlMode::Cacc {
            stats.fallbacks += 1;
            if faulty {
                if let Some((from, _)) = outage_span {
                    stats
                        .fallback_latency
                        .get_or_insert(w_end.saturating_since(from));
                }
            } else {
                stats.spurious_fallbacks += 1;
            }
        }
        mode = next;
        match (faulty, mode) {
            (true, ControlMode::Cacc) => stats.unsafe_windows += 1,
            (false, ControlMode::Acc) => stats.inefficient_windows += 1,
            _ => {}
        }
    }
    stats
}

fn merge(a: SwitchStats, b: SwitchStats) -> SwitchStats {
    SwitchStats {
        fallbacks: a.fallbacks + b.fallbacks,
        spurious_fallbacks: a.spurious_fallbacks + b.spurious_fallbacks,
        fallback_latency: match (a.fallback_latency, b.fallback_latency) {
            (Some(x), Some(y)) => Some(x.max(y)), // report the worse follower
            (x, y) => x.or(y),
        },
        unsafe_windows: a.unsafe_windows + b.unsafe_windows,
        inefficient_windows: a.inefficient_windows + b.inefficient_windows,
    }
}

/// Runs one platoon to completion.
///
/// # Panics
///
/// Panics if the config's periods are degenerate (window shorter than the
/// beacon period, zero horizon).
pub fn run_platoon(cfg: &PlatoonConfig, flight: Option<Arc<FlightRecorder>>) -> PlatoonOutcome {
    assert!(
        cfg.window >= cfg.beacon_period,
        "window must hold at least one beacon"
    );
    assert!(!cfg.horizon.is_zero(), "horizon must be non-zero");

    let outage_span = cfg
        .outage
        // The outage starts at the E13 onset but lasts half the E13 span:
        // re-engaging CACC takes roughly as many clean windows as the
        // outage fed the estimator, so the shorter span leaves the
        // recovery visible inside the horizon.
        .then(|| (onset(cfg.horizon), onset(cfg.horizon) + cfg.horizon / 6));
    let mut plan = FaultPlan::quiet(cfg.seed);
    if cfg.noise_drop > 0.0 {
        plan = plan.with_message_faults(cfg.noise_drop, 0.0, 0.0);
    }
    if let Some((from, until)) = outage_span {
        plan = plan.partition(BusId(0), from, until);
    }
    let mut chaos = ChaosFabric::new(Fabric::new(platoon_topology()), plan);
    if let Some(fr) = &flight {
        chaos.attach_flight_recorder(fr.clone());
    }

    // The leader unicasts its state beacon to each follower (the fabric is
    // point-to-point; the shared medium is the bus underneath).
    let beacons = cfg.horizon.as_nanos() / cfg.beacon_period.as_nanos();
    let mut sends = Vec::with_capacity((beacons * 2) as usize);
    for seq in 0..beacons {
        let t = SimTime::ZERO + cfg.beacon_period * seq;
        for follower in 1..=2u64 {
            sends.push(MessageSend {
                id: beacon_id(follower, seq),
                time: t,
                src: EcuId(0),
                dst: EcuId(follower as u16),
                payload: 48, // CAM-sized state vector
                class: TrafficClass::Critical,
                priority: 1,
                // One causal chain per beacon sequence; the follower is
                // the span.
                trace: TraceCtx::new(seq + 1, follower),
            });
        }
    }
    let deliveries = chaos.run(sends, |_| Vec::new());
    let mut received: BTreeSet<u64> = BTreeSet::new();
    for d in &deliveries {
        received.insert(d.id);
    }

    // Per-follower, per-window beacon-loss ratio.
    let windows = cfg.horizon.as_nanos().div_ceil(cfg.window.as_nanos());
    let per_window = (cfg.window.as_nanos() / cfg.beacon_period.as_nanos()).max(1);
    let mut beacons_lost = 0u64;
    let mut loss_series: [Vec<(SimTime, f64)>; 2] = [Vec::new(), Vec::new()];
    for w in 0..windows {
        let w_end = SimTime::ZERO + cfg.window * (w + 1);
        for follower in 1..=2u64 {
            let mut lost = 0u64;
            let mut expected = 0u64;
            for k in 0..per_window {
                let seq = w * per_window + k;
                if seq >= beacons {
                    break;
                }
                expected += 1;
                if !received.contains(&beacon_id(follower, seq)) {
                    lost += 1;
                }
            }
            if expected == 0 {
                continue;
            }
            beacons_lost += lost;
            loss_series[(follower - 1) as usize].push((w_end, lost as f64 / expected as f64));
        }
    }

    // Radar model: each follower ranges the vehicle ahead every window;
    // the Gaussian error is what ACC must tolerate that CACC's V2X state
    // exchange avoids.
    let radar = GaussianNoise::centered(cfg.radar_sigma_m);
    let mut radar_rng = seeded_rng(split_seed(cfg.seed, 0xDA_DA));
    let mut radar_error = 0.0;
    let mut radar_samples = 0u64;
    for _ in 0..windows * 2 {
        radar_error += radar.sample(&mut radar_rng).abs();
        radar_samples += 1;
    }

    // Both rules over each follower's series, aggregated.
    let mut thr = None;
    let mut unc = None;
    for series in &loss_series {
        let boundary = cfg.loss_boundary;
        let mut thr_decide = |_: SimTime, loss: f64| {
            if loss >= boundary {
                ControlMode::Acc
            } else {
                ControlMode::Cacc
            }
        };
        let t = apply_rule(series, &mut thr_decide, outage_span, cfg.window);

        let mut estimator = BoundaryEstimator::new(BoundaryConfig::for_boundary(boundary));
        if let Some(fr) = &flight {
            estimator.attach_flight_recorder(fr.clone());
        }
        let mut mode = ControlMode::Cacc;
        let clear = cfg.clear_confidence;
        let trip = cfg.trip_confidence;
        let mut unc_decide = |w_end: SimTime, loss: f64| {
            let est = estimator.ingest_traced(w_end, loss, TraceCtx::new(w_end.as_nanos(), 0));
            mode = match mode {
                // A totally silent window is the CACC timeout watchdog —
                // a hard signal, not a statistical question. The estimator
                // decides the ambiguous regime below it.
                ControlMode::Cacc if loss >= 1.0 => ControlMode::Acc,
                ControlMode::Cacc if est.exceeds_with_confidence(trip) => ControlMode::Acc,
                // Re-engage on belief hysteresis alone: the exceedance
                // must clear well below the trip gate, but waiting for the
                // regression band to also forget the outage samples would
                // hold the gap open for a full ring length. The stricter
                // band-tightening gate belongs to the in-vehicle
                // degradation ladder, not the CACC re-engage.
                ControlMode::Acc if est.converged && est.exceed <= clear => ControlMode::Cacc,
                m => m,
            };
            mode
        };
        let u = apply_rule(series, &mut unc_decide, outage_span, cfg.window);

        thr = Some(thr.map_or(t, |prev| merge(prev, t)));
        unc = Some(unc.map_or(u, |prev| merge(prev, u)));
    }

    PlatoonOutcome {
        beacons_per_follower: beacons,
        beacons_lost,
        windows,
        threshold: thr.expect("two followers"),
        uncertainty: unc.expect("two followers"),
        mean_radar_error_m: if radar_samples == 0 {
            0.0
        } else {
            radar_error / radar_samples as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platoon_is_deterministic() {
        let cfg = PlatoonConfig::new(0xCACC);
        let a = run_platoon(&cfg, None);
        let b = run_platoon(&cfg, None);
        assert_eq!(a.threshold, b.threshold);
        assert_eq!(a.uncertainty, b.uncertainty);
        assert_eq!(a.beacons_lost, b.beacons_lost);
    }

    #[test]
    fn outage_forces_fallback_and_recovery() {
        let cfg = PlatoonConfig::new(0xCACC);
        let o = run_platoon(&cfg, None);
        assert!(o.beacons_lost > 0, "outage must cost beacons");
        for (name, s) in [("threshold", o.threshold), ("uncertainty", o.uncertainty)] {
            assert!(s.fallbacks >= 2, "{name}: both followers must fall back");
            assert!(
                s.fallback_latency.is_some(),
                "{name}: fallback latency must be measured"
            );
        }
    }

    #[test]
    fn estimator_switching_is_less_jumpy_on_a_noisy_link() {
        // Heavy channel noise, no outage: the point rule flaps into ACC on
        // every bad window; the estimator holds CACC.
        let mut cfg = PlatoonConfig::new(0xCACC);
        cfg.outage = false;
        cfg.noise_drop = 0.25;
        let o = run_platoon(&cfg, None);
        assert!(
            o.uncertainty.spurious_fallbacks < o.threshold.spurious_fallbacks,
            "uncertainty {} vs threshold {} spurious fallbacks",
            o.uncertainty.spurious_fallbacks,
            o.threshold.spurious_fallbacks
        );
        assert!(
            o.uncertainty.inefficient_windows <= o.threshold.inefficient_windows,
            "estimator must not spend more healthy time in ACC"
        );
    }

    #[test]
    fn uncertainty_fallback_is_not_late() {
        let cfg = PlatoonConfig::new(0xCACC);
        let o = run_platoon(&cfg, None);
        let (t, u) = (
            o.threshold.fallback_latency.expect("threshold falls back"),
            o.uncertainty
                .fallback_latency
                .expect("estimator falls back"),
        );
        // The outage is total (loss ratio 1.0): the silence watchdog must
        // fall back in the same window as the point rule — statistical
        // caution is not allowed to cost safety margin.
        assert!(u <= t, "uncertainty latency {u} worse than threshold {t}");
        assert_eq!(o.uncertainty.unsafe_windows, o.threshold.unsafe_windows);
    }

    #[test]
    fn mode_flips_are_flight_recorded() {
        let flight = Arc::new(FlightRecorder::new(256));
        flight.arm();
        let cfg = PlatoonConfig::new(0xCACC);
        run_platoon(&cfg, Some(flight.clone()));
        assert!(
            flight
                .events()
                .iter()
                .any(|e| e.stage == "monitor.uncertainty" && e.detail.contains("asserted")),
            "estimator crossings must land in the flight ring"
        );
    }
}
