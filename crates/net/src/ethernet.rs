//! Switched-Ethernet egress ports.
//!
//! The paper names Ethernet the bandwidth answer (§1) but plain Ethernet
//! offers no freedom of interference: a best-effort bulk stream delays
//! urgent frames behind it in the FIFO. [`FifoPort`] models that baseline;
//! [`StrictPriorityPort`] models 802.1p strict-priority transmission
//! selection, which protects urgent traffic up to one maximum-size frame of
//! blocking (non-preemptive). Full time-triggered isolation is provided by
//! the [`crate::tsn`] module on top of the same timing model.

use crate::{Arbiter, Frame, Grant, Transmission};
use dynplat_common::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Minimum Ethernet frame size on the wire (without preamble), bytes.
pub const MIN_FRAME_BYTES: usize = 64;
/// L2 overhead added to payload: MAC header + FCS (18) + 802.1Q tag (4).
pub const L2_OVERHEAD_BYTES: usize = 22;
/// Preamble + start-frame delimiter + inter-frame gap, bytes.
pub const GAP_BYTES: usize = 20;

/// Wire time of an Ethernet frame carrying `payload` bytes at `bitrate`
/// bit/s, including L2 overhead, minimum-size padding, preamble and IFG.
///
/// # Panics
///
/// Panics if `bitrate` is zero.
pub fn ethernet_frame_time(payload: usize, bitrate: u64) -> SimDuration {
    assert!(bitrate > 0, "bitrate must be non-zero");
    let on_wire = (payload + L2_OVERHEAD_BYTES).max(MIN_FRAME_BYTES) + GAP_BYTES;
    SimDuration::from_nanos(on_wire as u64 * 8 * 1_000_000_000 / bitrate)
}

/// Nanoseconds per on-wire byte when the byte time is integral at
/// `bitrate` (every standard Ethernet rate), else 0. Lets ports replace
/// the per-frame `u64` division in [`ethernet_frame_time`] with one
/// multiplication on the hot path.
fn ns_per_byte(bitrate: u64) -> u64 {
    if 8_000_000_000 % bitrate == 0 {
        8_000_000_000 / bitrate
    } else {
        0
    }
}

/// [`ethernet_frame_time`] with the division pre-resolved: `npb` is this
/// port's cached [`ns_per_byte`] (0 = fall back to the dividing path).
#[inline]
fn frame_time_cached(payload: usize, bitrate: u64, npb: u64) -> SimDuration {
    if npb != 0 {
        let on_wire = (payload + L2_OVERHEAD_BYTES).max(MIN_FRAME_BYTES) + GAP_BYTES;
        SimDuration::from_nanos(on_wire as u64 * npb)
    } else {
        ethernet_frame_time(payload, bitrate)
    }
}

/// Maximum payload per Ethernet frame (standard MTU).
pub const MTU_BYTES: usize = 1500;

/// Plain FIFO egress port — the no-isolation baseline.
#[derive(Debug)]
pub struct FifoPort {
    bitrate: u64,
    ns_per_byte: u64,
    queue: VecDeque<(SimTime, Frame)>,
}

impl FifoPort {
    /// Creates a FIFO port at `bitrate` bit/s.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn new(bitrate: u64) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        FifoPort {
            bitrate,
            ns_per_byte: ns_per_byte(bitrate),
            queue: VecDeque::new(),
        }
    }
}

impl Arbiter for FifoPort {
    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        self.queue.push_back((now, frame));
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        match self.queue.pop_front() {
            Some((arrival, frame)) => {
                let end = now + frame_time_cached(frame.payload, self.bitrate, self.ns_per_byte);
                Grant::Tx(Transmission {
                    frame,
                    arrival,
                    start: now,
                    end,
                })
            }
            None => Grant::Idle,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Strict-priority (802.1p) egress port: of all queued frames the one with
/// the numerically lowest `priority` transmits next; ties break FIFO.
/// Non-preemptive, so urgent traffic still suffers up to one frame of
/// blocking from an in-flight bulk frame.
#[derive(Debug)]
pub struct StrictPriorityPort {
    bitrate: u64,
    ns_per_byte: u64,
    queue: Vec<(u32, u64, SimTime, Frame)>,
    seq: u64,
}

impl StrictPriorityPort {
    /// Creates a strict-priority port at `bitrate` bit/s.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn new(bitrate: u64) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        StrictPriorityPort {
            bitrate,
            ns_per_byte: ns_per_byte(bitrate),
            queue: Vec::new(),
            seq: 0,
        }
    }
}

impl Arbiter for StrictPriorityPort {
    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push((frame.priority, seq, now, frame));
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        // A one-deep queue (the uncongested fast path) needs no
        // transmission-selection scan at all.
        let best = match self.queue.len() {
            0 => return Grant::Idle,
            1 => 0,
            _ => self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(_, (p, s, _, _))| (*p, *s))
                .map(|(i, _)| i)
                .expect("non-empty queue has a minimum"),
        };
        let (_, _, arrival, frame) = self.queue.swap_remove(best);
        let end = now + frame_time_cached(frame.payload, self.bitrate, self.ns_per_byte);
        Grant::Tx(Transmission {
            frame,
            arrival,
            start: now,
            end,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Splits a payload of arbitrary size into MTU-sized frame payloads — the
/// segmentation the middleware applies before handing data to a port.
pub fn segment_payload(total: usize) -> Vec<usize> {
    if total == 0 {
        return vec![0];
    }
    let full = total / MTU_BYTES;
    let rest = total % MTU_BYTES;
    let mut out = vec![MTU_BYTES; full];
    if rest > 0 {
        out.push(rest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TxEvent};
    use dynplat_common::MessageId;

    const MBIT100: u64 = 100_000_000;

    #[test]
    fn frame_time_includes_overheads() {
        // 1500 B payload: (1500+22+20)*8 bits / 100 Mbit/s = 123.36 us.
        assert_eq!(
            ethernet_frame_time(1500, MBIT100),
            SimDuration::from_nanos(1542 * 80)
        );
        // Tiny payload is padded to the 64-byte minimum.
        assert_eq!(
            ethernet_frame_time(1, MBIT100),
            ethernet_frame_time(42, MBIT100)
        );
    }

    #[test]
    fn fifo_keeps_arrival_order_regardless_of_priority() {
        let mut port = FifoPort::new(MBIT100);
        let events = vec![
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1), 1500).with_priority(7),
            },
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(2), 64).with_priority(0),
            },
        ];
        let done = simulate(&mut port, events);
        assert_eq!(done[0].frame.id, MessageId(1), "FIFO ignores priority");
        assert!(done[1].start >= done[0].end);
    }

    #[test]
    fn strict_priority_preempts_queue_order() {
        let mut port = StrictPriorityPort::new(MBIT100);
        let events = vec![
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1), 1500).with_priority(7),
            },
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(2), 1500).with_priority(7),
            },
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(3), 64).with_priority(0),
            },
        ];
        let done = simulate(&mut port, events);
        // All three contend at t=0: the urgent frame goes first, bulk
        // frames follow in FIFO order.
        assert_eq!(done[0].frame.id, MessageId(3));
        assert_eq!(done[1].frame.id, MessageId(1));
        assert_eq!(done[2].frame.id, MessageId(2));
    }

    #[test]
    fn urgent_latency_bounded_by_one_frame_under_strict_priority() {
        // Saturate with bulk, inject urgent mid-stream.
        let mut port = StrictPriorityPort::new(MBIT100);
        let bulk_time = ethernet_frame_time(1500, MBIT100);
        let mut events: Vec<TxEvent> = (0..50)
            .map(|i| TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(100 + i), 1500).with_priority(7),
            })
            .collect();
        let urgent_at = SimTime::ZERO + bulk_time * 10 + SimDuration::from_micros(3);
        events.push(TxEvent {
            arrival: urgent_at,
            frame: Frame::new(MessageId(1), 64).with_priority(0),
        });
        let done = simulate(&mut port, events);
        let urgent = done.iter().find(|t| t.frame.id == MessageId(1)).unwrap();
        let worst = bulk_time + ethernet_frame_time(64, MBIT100);
        assert!(
            urgent.latency() <= worst,
            "urgent latency {} exceeds blocking bound {}",
            urgent.latency(),
            worst
        );
    }

    #[test]
    fn fifo_urgent_latency_grows_with_backlog() {
        let mut port = FifoPort::new(MBIT100);
        let mut events: Vec<TxEvent> = (0..50)
            .map(|i| TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(100 + i), 1500).with_priority(7),
            })
            .collect();
        events.push(TxEvent {
            arrival: SimTime::ZERO,
            frame: Frame::new(MessageId(1), 64).with_priority(0),
        });
        let done = simulate(&mut port, events);
        let urgent = done.iter().find(|t| t.frame.id == MessageId(1)).unwrap();
        let bulk_time = ethernet_frame_time(1500, MBIT100);
        assert!(
            urgent.latency() >= bulk_time * 50,
            "FIFO should make urgent wait out the backlog"
        );
    }

    #[test]
    fn segmentation_covers_total() {
        assert_eq!(segment_payload(0), vec![0]);
        assert_eq!(segment_payload(100), vec![100]);
        assert_eq!(segment_payload(1500), vec![1500]);
        assert_eq!(segment_payload(3001), vec![1500, 1500, 1]);
        let segs = segment_payload(1_000_000);
        assert_eq!(segs.iter().sum::<usize>(), 1_000_000);
        assert!(segs.iter().all(|&s| s <= MTU_BYTES));
    }
}
