//! FlexRay model.
//!
//! FlexRay (§5.3 of the paper) "offers a combination of time-triggered
//! deterministic communication and priority-based communication, which can
//! be used to partition and isolate deterministic and non-deterministic
//! applications": each communication cycle has a **static segment** of
//! equal-length TDMA slots owned by specific messages, followed by a
//! **dynamic segment** of minislots arbitrated by frame identifier.
//!
//! [`FlexRayBus`] implements the [`Arbiter`] protocol: statically assigned
//! frames are granted their next slot occurrence; unassigned frames contend
//! for the dynamic segment in priority (identifier) order. The dynamic-
//! segment model is a faithful simplification of FTDMA: one frame per grant,
//! starting at the next dynamic segment with free capacity, in priority
//! order, never crossing the segment end (`pLatestTx` semantics).

use crate::{Arbiter, Frame, Grant, Transmission};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::MessageId;
use std::collections::BTreeMap;

/// Static configuration of a FlexRay cluster (single channel).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlexRayConfig {
    /// Raw bit rate in bit/s (canonically 10 Mbit/s).
    pub bitrate: u64,
    /// Number of static slots per cycle.
    pub static_slots: u16,
    /// Duration of each static slot.
    pub static_slot_len: SimDuration,
    /// Number of minislots in the dynamic segment.
    pub minislots: u16,
    /// Duration of one minislot.
    pub minislot_len: SimDuration,
}

impl FlexRayConfig {
    /// A representative 10 Mbit/s configuration: 5 ms cycle with 60 static
    /// slots of 50 µs and 40 minislots of 50 µs.
    pub fn typical_10mbit() -> Self {
        FlexRayConfig {
            bitrate: 10_000_000,
            static_slots: 60,
            static_slot_len: SimDuration::from_micros(50),
            minislots: 40,
            minislot_len: SimDuration::from_micros(50),
        }
    }

    /// Total cycle duration.
    pub fn cycle(&self) -> SimDuration {
        self.static_slot_len * u64::from(self.static_slots)
            + self.minislot_len * u64::from(self.minislots)
    }

    /// Offset of the dynamic segment from cycle start.
    pub fn dynamic_offset(&self) -> SimDuration {
        self.static_slot_len * u64::from(self.static_slots)
    }

    /// Start time of static slot `slot` (0-based) in the cycle containing or
    /// following `now`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= static_slots`.
    pub fn next_slot_start(&self, now: SimTime, slot: u16) -> SimTime {
        assert!(slot < self.static_slots, "slot index out of range");
        let cycle = self.cycle();
        let offset = self.static_slot_len * u64::from(slot);
        let cycle_start = now - (now % cycle);
        let candidate = cycle_start + offset;
        if candidate >= now {
            candidate
        } else {
            candidate + cycle
        }
    }

    /// Wire time of `payload` bytes plus frame overhead (~9 bytes header +
    /// trailer) at this bitrate.
    pub fn frame_time(&self, payload: usize) -> SimDuration {
        let bits = (payload as u64 + 9) * 8;
        SimDuration::from_nanos(bits * 1_000_000_000 / self.bitrate)
    }
}

/// Assignment of messages to static slots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlotAssignment {
    slots: BTreeMap<MessageId, u16>,
}

impl SlotAssignment {
    /// Creates an empty assignment (all traffic goes to the dynamic segment).
    pub fn new() -> Self {
        SlotAssignment::default()
    }

    /// Assigns `message` to static `slot`.
    ///
    /// # Errors
    ///
    /// Returns the previous owner if the slot is already taken.
    pub fn assign(&mut self, message: MessageId, slot: u16) -> Result<(), MessageId> {
        if let Some((&owner, _)) = self.slots.iter().find(|(_, &s)| s == slot) {
            if owner != message {
                return Err(owner);
            }
        }
        self.slots.insert(message, slot);
        Ok(())
    }

    /// The slot of `message`, if statically assigned.
    pub fn slot_of(&self, message: MessageId) -> Option<u16> {
        self.slots.get(&message).copied()
    }

    /// Number of assigned slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A FlexRay channel implementing the [`Arbiter`] protocol.
#[derive(Clone, Debug)]
pub struct FlexRayBus {
    config: FlexRayConfig,
    assignment: SlotAssignment,
    queue: Vec<(u32, u64, SimTime, Frame)>,
    seq: u64,
    /// Cycle index whose dynamic segment has already been consumed up to
    /// `dyn_used` minislots.
    dyn_cycle: u64,
    dyn_used: u64,
}

impl FlexRayBus {
    /// Creates a bus with the given configuration and static assignment.
    pub fn new(config: FlexRayConfig, assignment: SlotAssignment) -> Self {
        FlexRayBus {
            config,
            assignment,
            queue: Vec::new(),
            seq: 0,
            dyn_cycle: 0,
            dyn_used: 0,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &FlexRayConfig {
        &self.config
    }

    fn earliest_start(&mut self, now: SimTime, frame: &Frame) -> Option<SimTime> {
        match self.assignment.slot_of(frame.id) {
            Some(slot) => Some(self.config.next_slot_start(now, slot)),
            None => {
                // Dynamic segment: frame occupies ceil(tx / minislot) minislots.
                let tx = self.config.frame_time(frame.payload);
                let need = tx.as_nanos().div_ceil(self.config.minislot_len.as_nanos());
                if need > u64::from(self.config.minislots) {
                    return None; // can never fit the dynamic segment
                }
                let cycle = self.config.cycle();
                let mut k = now.as_nanos() / cycle.as_nanos();
                loop {
                    let used = if k == self.dyn_cycle {
                        self.dyn_used
                    } else {
                        0
                    };
                    if used + need <= u64::from(self.config.minislots) {
                        let seg_start = SimTime::from_nanos(k * cycle.as_nanos())
                            + self.config.dynamic_offset()
                            + self.config.minislot_len * used;
                        if seg_start >= now {
                            return Some(seg_start);
                        }
                        // Segment position already passed within this cycle.
                        if now <= SimTime::from_nanos(k * cycle.as_nanos()) + cycle
                            && seg_start + self.config.minislot_len * need > now
                            && now >= seg_start
                        {
                            // We are inside the usable window; start now,
                            // aligned to the next minislot boundary.
                            let seg0 = SimTime::from_nanos(k * cycle.as_nanos())
                                + self.config.dynamic_offset();
                            let into = now.saturating_since(seg0);
                            let slot_idx = into
                                .as_nanos()
                                .div_ceil(self.config.minislot_len.as_nanos());
                            if slot_idx + need <= u64::from(self.config.minislots) {
                                return Some(seg0 + self.config.minislot_len * slot_idx);
                            }
                        }
                    }
                    k += 1;
                }
            }
        }
    }
}

impl Arbiter for FlexRayBus {
    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push((frame.priority, seq, now, frame));
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        // Drop frames that can never be served, then find which frame can
        // start earliest; ties break by priority, then FIFO order.
        let mut candidates: Vec<(SimTime, u32, u64)> = Vec::new();
        let mut unfit: Vec<u64> = Vec::new();
        let queue_snapshot: Vec<(u32, u64, Frame)> = self
            .queue
            .iter()
            .map(|(p, s, _, f)| (*p, *s, f.clone()))
            .collect();
        for (prio, seq, frame) in &queue_snapshot {
            match self.earliest_start(now, frame) {
                Some(start) => candidates.push((start, *prio, *seq)),
                None => unfit.push(*seq),
            }
        }
        if !unfit.is_empty() {
            self.queue.retain(|(_, seq, _, _)| !unfit.contains(seq));
        }
        let Some((start, _, chosen)) = candidates.into_iter().min() else {
            return Grant::Idle;
        };
        if start > now {
            return Grant::WaitUntil(start);
        }
        let idx = self
            .queue
            .iter()
            .position(|(_, seq, _, _)| *seq == chosen)
            .expect("chosen frame present");
        let (_, _, arrival, frame) = self.queue.swap_remove(idx);
        let tx = self.config.frame_time(frame.payload);
        // Book dynamic-segment capacity.
        if self.assignment.slot_of(frame.id).is_none() {
            let cycle = self.config.cycle();
            let k = start.as_nanos() / cycle.as_nanos();
            let seg0 = SimTime::from_nanos(k * cycle.as_nanos()) + self.config.dynamic_offset();
            let first = start.saturating_since(seg0) / self.config.minislot_len;
            let need = tx.as_nanos().div_ceil(self.config.minislot_len.as_nanos());
            if k != self.dyn_cycle {
                self.dyn_cycle = k;
                self.dyn_used = 0;
            }
            self.dyn_used = self.dyn_used.max(first + need);
        }
        Grant::Tx(Transmission {
            frame,
            arrival,
            start,
            end: start + tx,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TxEvent};

    fn cfg() -> FlexRayConfig {
        FlexRayConfig::typical_10mbit()
    }

    #[test]
    fn cycle_arithmetic() {
        let c = cfg();
        assert_eq!(c.cycle(), SimDuration::from_millis(5));
        assert_eq!(c.dynamic_offset(), SimDuration::from_millis(3));
    }

    #[test]
    fn next_slot_start_wraps_to_next_cycle() {
        let c = cfg();
        // Slot 2 starts at 100 us into each 5 ms cycle.
        assert_eq!(
            c.next_slot_start(SimTime::ZERO, 2),
            SimTime::from_micros(100)
        );
        assert_eq!(
            c.next_slot_start(SimTime::from_micros(101), 2),
            SimTime::from_micros(100) + SimDuration::from_millis(5)
        );
    }

    #[test]
    fn slot_assignment_rejects_double_booking() {
        let mut a = SlotAssignment::new();
        a.assign(MessageId(1), 3).unwrap();
        assert_eq!(a.assign(MessageId(2), 3), Err(MessageId(1)));
        // Re-assigning the same message is fine.
        a.assign(MessageId(1), 3).unwrap();
        assert_eq!(a.slot_of(MessageId(1)), Some(3));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn static_frame_transmits_in_its_slot() {
        let mut assignment = SlotAssignment::new();
        assignment.assign(MessageId(1), 4).unwrap();
        let mut bus = FlexRayBus::new(cfg(), assignment);
        let done = simulate(
            &mut bus,
            vec![TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1), 16),
            }],
        );
        // Slot 4 starts at 200 us.
        assert_eq!(done[0].start, SimTime::from_micros(200));
    }

    #[test]
    fn static_isolation_from_dynamic_load() {
        // A statically assigned frame keeps its slot even under heavy
        // dynamic-segment load — the §5.3 partitioning argument.
        let mut assignment = SlotAssignment::new();
        assignment.assign(MessageId(1), 0).unwrap();
        let mut bus = FlexRayBus::new(cfg(), assignment);
        let mut events: Vec<TxEvent> = (0..30)
            .map(|i| TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(100 + i), 200).with_priority(100 + i),
            })
            .collect();
        events.push(TxEvent {
            arrival: SimTime::from_millis(4), // after this cycle's slot 0
            frame: Frame::new(MessageId(1), 16).with_priority(1),
        });
        let done = simulate(&mut bus, events);
        let stat = done.iter().find(|t| t.frame.id == MessageId(1)).unwrap();
        // Next slot-0 occurrence after 4 ms is 5 ms.
        assert_eq!(stat.start, SimTime::from_millis(5));
    }

    #[test]
    fn dynamic_frames_cannot_cross_segment_end() {
        let c = cfg();
        let mut bus = FlexRayBus::new(c.clone(), SlotAssignment::new());
        let events: Vec<TxEvent> = (0..60)
            .map(|i| TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(i), 500).with_priority(i),
            })
            .collect();
        let done = simulate(&mut bus, events);
        assert_eq!(done.len(), 60, "all frames eventually transmit");
        for tx in &done {
            let into_cycle = tx.start % c.cycle();
            assert!(
                into_cycle >= c.dynamic_offset(),
                "dynamic frame in static segment"
            );
            let end_into = tx.end % c.cycle();
            assert!(
                end_into.is_zero() || end_into <= c.cycle(),
                "frame crosses cycle boundary"
            );
        }
        // Transmissions never overlap.
        let mut sorted = done.clone();
        sorted.sort_by_key(|t| t.start);
        for pair in sorted.windows(2) {
            assert!(pair[1].start >= pair[0].end);
        }
    }

    #[test]
    fn lower_id_dynamic_frame_goes_first() {
        let mut bus = FlexRayBus::new(cfg(), SlotAssignment::new());
        let done = simulate(
            &mut bus,
            vec![
                TxEvent {
                    arrival: SimTime::ZERO,
                    frame: Frame::new(MessageId(9), 32).with_priority(9),
                },
                TxEvent {
                    arrival: SimTime::ZERO,
                    frame: Frame::new(MessageId(2), 32).with_priority(2),
                },
            ],
        );
        assert_eq!(
            done[0].frame.id,
            MessageId(2),
            "lower id wins minislot order"
        );
        assert!(done[1].start >= done[0].end);
    }

    #[test]
    fn oversized_dynamic_frame_is_dropped() {
        let c = cfg();
        // 40 minislots * 50us at 10 Mbit/s = 2 ms => max ~2500 bytes; 5 KiB cannot fit.
        let mut bus = FlexRayBus::new(c, SlotAssignment::new());
        let done = simulate(
            &mut bus,
            vec![TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1), 5000),
            }],
        );
        assert!(done.is_empty());
        assert_eq!(bus.pending(), 0);
    }
}
