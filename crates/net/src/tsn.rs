//! IEEE 802.1Qbv time-aware shaping.
//!
//! The paper's §5.3 points at TSN as the Ethernet answer to mixed-criticality
//! communication: critical traffic gets exclusive time-triggered windows,
//! best-effort traffic uses the remaining windows with priority selection,
//! and "transmission selection on switches will prevent its interference on
//! deterministic communication". [`TsnGatedPort`] implements one egress port
//! with a repeating [`GateControlList`] and guard-band semantics: a frame
//! may only start if it finishes before its window closes.

use crate::ethernet::ethernet_frame_time;
use crate::{Arbiter, Frame, Grant, TrafficClass, Transmission};
use dynplat_common::time::{SimDuration, SimTime};

/// One open-gate window within the gating cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateWindow {
    /// Traffic class whose gate is open.
    pub class: TrafficClass,
    /// Window start offset from cycle start.
    pub offset: SimDuration,
    /// Window length.
    pub length: SimDuration,
}

impl GateWindow {
    /// Creates a window.
    pub fn new(class: TrafficClass, offset: SimDuration, length: SimDuration) -> Self {
        GateWindow {
            class,
            offset,
            length,
        }
    }
}

/// Errors raised when validating a gate control list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GclError {
    /// The cycle duration is zero.
    ZeroCycle,
    /// A window extends past the end of the cycle.
    WindowBeyondCycle(usize),
    /// Two windows overlap in time.
    OverlappingWindows(usize, usize),
    /// A traffic class has no window at all.
    ClassUnserved(TrafficClass),
}

impl std::fmt::Display for GclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GclError::ZeroCycle => write!(f, "gating cycle must be non-zero"),
            GclError::WindowBeyondCycle(i) => write!(f, "window {i} extends beyond the cycle"),
            GclError::OverlappingWindows(a, b) => write!(f, "windows {a} and {b} overlap"),
            GclError::ClassUnserved(c) => write!(f, "traffic class {c:?} has no gate window"),
        }
    }
}

impl std::error::Error for GclError {}

/// A repeating gate control list: which class may transmit when.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GateControlList {
    cycle: SimDuration,
    windows: Vec<GateWindow>,
}

impl GateControlList {
    /// Creates and validates a gate control list.
    ///
    /// # Errors
    ///
    /// Returns a [`GclError`] if the cycle is zero, a window leaves the
    /// cycle, or windows overlap. (A class without any window is legal here
    /// — its frames are simply never granted — but can be detected with
    /// [`GateControlList::serves`].)
    pub fn new(cycle: SimDuration, windows: Vec<GateWindow>) -> Result<Self, GclError> {
        if cycle.is_zero() {
            return Err(GclError::ZeroCycle);
        }
        for (i, w) in windows.iter().enumerate() {
            if w.offset + w.length > cycle {
                return Err(GclError::WindowBeyondCycle(i));
            }
        }
        let mut sorted: Vec<(usize, &GateWindow)> = windows.iter().enumerate().collect();
        sorted.sort_by_key(|(_, w)| w.offset);
        for pair in sorted.windows(2) {
            let (ia, a) = pair[0];
            let (ib, b) = pair[1];
            if a.offset + a.length > b.offset {
                return Err(GclError::OverlappingWindows(ia, ib));
            }
        }
        Ok(GateControlList { cycle, windows })
    }

    /// The canonical mixed-criticality list of the paper's discussion: an
    /// exclusive critical window of `critical_share` of the cycle up front,
    /// the rest shared by stream and best-effort traffic.
    ///
    /// # Panics
    ///
    /// Panics if `critical_share` is not within `(0, 1)`.
    pub fn mixed_criticality(cycle: SimDuration, critical_share: f64) -> Self {
        assert!(
            critical_share > 0.0 && critical_share < 1.0,
            "critical share must be in (0, 1)"
        );
        let crit = cycle.mul_f64(critical_share);
        let rest = cycle - crit;
        GateControlList::new(
            cycle,
            vec![
                GateWindow::new(TrafficClass::Critical, SimDuration::ZERO, crit),
                GateWindow::new(TrafficClass::Stream, crit, rest / 2),
                GateWindow::new(TrafficClass::BestEffort, crit + rest / 2, rest - rest / 2),
            ],
        )
        .expect("constructed list is valid")
    }

    /// The gating cycle duration.
    pub fn cycle(&self) -> SimDuration {
        self.cycle
    }

    /// The configured windows.
    pub fn windows(&self) -> &[GateWindow] {
        &self.windows
    }

    /// `true` if `class` has at least one window.
    pub fn serves(&self, class: TrafficClass) -> bool {
        self.windows.iter().any(|w| w.class == class)
    }

    /// Earliest instant `t >= now` at which a transmission of `class`
    /// lasting `tx` may start such that it completes within its window
    /// (guard band). Returns `None` if no window of the class can ever fit
    /// a transmission of that length.
    pub fn earliest_fit(
        &self,
        now: SimTime,
        class: TrafficClass,
        tx: SimDuration,
    ) -> Option<SimTime> {
        let fits_any = self
            .windows
            .iter()
            .any(|w| w.class == class && w.length >= tx);
        if !fits_any {
            return None;
        }
        let cycle_start = now - (now % self.cycle);
        // Search this cycle and the next (a fitting window repeats each cycle).
        for k in 0..2u64 {
            let base = cycle_start + self.cycle * k;
            let mut candidates: Vec<&GateWindow> = self
                .windows
                .iter()
                .filter(|w| w.class == class && w.length >= tx)
                .collect();
            candidates.sort_by_key(|w| w.offset);
            for w in candidates {
                let open = base + w.offset;
                let close = open + w.length;
                let start = if now > open { now } else { open };
                if start + tx <= close {
                    return Some(start);
                }
            }
        }
        None
    }
}

/// A TSN egress port: strict priority among currently-eligible frames,
/// gated by a [`GateControlList`].
///
/// Because grants only ever start at the poll instant, a closed gate never
/// pre-commits the port: an urgent critical frame arriving just before its
/// window opens wins over a best-effort frame queued earlier.
#[derive(Clone, Debug)]
pub struct TsnGatedPort {
    bitrate: u64,
    gcl: GateControlList,
    queue: Vec<(u32, u64, SimTime, Frame)>,
    seq: u64,
    dropped: u64,
}

impl TsnGatedPort {
    /// Creates a gated port at `bitrate` bit/s with the given list.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn new(bitrate: u64, gcl: GateControlList) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        TsnGatedPort {
            bitrate,
            gcl,
            queue: Vec::new(),
            seq: 0,
            dropped: 0,
        }
    }

    /// Frames discarded because no gate window can ever fit them.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured gate control list.
    pub fn gcl(&self) -> &GateControlList {
        &self.gcl
    }
}

impl Arbiter for TsnGatedPort {
    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push((frame.priority, seq, now, frame));
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        // Discard frames that can never fit any window (oversized). Among
        // the rest: if any may start right now, grant the highest-priority
        // one; otherwise report the earliest future start.
        let mut unfit: Vec<u64> = Vec::new();
        let mut now_best: Option<(u32, u64)> = None;
        let mut future_best: Option<SimTime> = None;
        for (prio, seq, _, frame) in &self.queue {
            let tx = ethernet_frame_time(frame.payload, self.bitrate);
            match self.gcl.earliest_fit(now, frame.class, tx) {
                Some(start) if start == now => {
                    let key = (*prio, *seq);
                    if now_best.is_none_or(|bk| key < bk) {
                        now_best = Some(key);
                    }
                }
                Some(start) => {
                    if future_best.is_none_or(|b| start < b) {
                        future_best = Some(start);
                    }
                }
                None => unfit.push(*seq),
            }
        }
        if !unfit.is_empty() {
            self.queue.retain(|(_, seq, _, _)| !unfit.contains(seq));
            self.dropped += unfit.len() as u64;
        }
        if let Some((_, chosen_seq)) = now_best {
            let idx = self
                .queue
                .iter()
                .position(|(_, seq, _, _)| *seq == chosen_seq)
                .expect("chosen frame is in the queue");
            let (_, _, arrival, frame) = self.queue.swap_remove(idx);
            let tx = ethernet_frame_time(frame.payload, self.bitrate);
            return Grant::Tx(Transmission {
                frame,
                arrival,
                start: now,
                end: now + tx,
            });
        }
        match future_best {
            Some(t) => Grant::WaitUntil(t),
            None => Grant::Idle,
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TxEvent};
    use dynplat_common::MessageId;

    const MBIT100: u64 = 100_000_000;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn demo_gcl() -> GateControlList {
        // 1 ms cycle: 0-300 us critical, 300-650 stream, 650-1000 best effort.
        GateControlList::new(
            ms(1),
            vec![
                GateWindow::new(
                    TrafficClass::Critical,
                    SimDuration::ZERO,
                    SimDuration::from_micros(300),
                ),
                GateWindow::new(
                    TrafficClass::Stream,
                    SimDuration::from_micros(300),
                    SimDuration::from_micros(350),
                ),
                GateWindow::new(
                    TrafficClass::BestEffort,
                    SimDuration::from_micros(650),
                    SimDuration::from_micros(350),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_lists() {
        assert_eq!(
            GateControlList::new(SimDuration::ZERO, vec![]),
            Err(GclError::ZeroCycle)
        );
        let too_long = GateControlList::new(
            ms(1),
            vec![GateWindow::new(
                TrafficClass::Critical,
                SimDuration::from_micros(900),
                SimDuration::from_micros(200),
            )],
        );
        assert_eq!(too_long, Err(GclError::WindowBeyondCycle(0)));
        let overlap = GateControlList::new(
            ms(1),
            vec![
                GateWindow::new(
                    TrafficClass::Critical,
                    SimDuration::ZERO,
                    SimDuration::from_micros(500),
                ),
                GateWindow::new(
                    TrafficClass::Stream,
                    SimDuration::from_micros(400),
                    SimDuration::from_micros(100),
                ),
            ],
        );
        assert_eq!(overlap, Err(GclError::OverlappingWindows(0, 1)));
    }

    #[test]
    fn earliest_fit_honors_guard_band() {
        let gcl = demo_gcl();
        let tx = SimDuration::from_micros(100);
        // At t=250us, only 50us remain in the critical window: push to next cycle.
        let t = SimTime::from_micros(250);
        let start = gcl.earliest_fit(t, TrafficClass::Critical, tx).unwrap();
        assert_eq!(start, SimTime::from_millis(1));
        // At t=100us it fits immediately.
        let start = gcl
            .earliest_fit(SimTime::from_micros(100), TrafficClass::Critical, tx)
            .unwrap();
        assert_eq!(start, SimTime::from_micros(100));
    }

    #[test]
    fn oversized_frame_never_fits() {
        let gcl = demo_gcl();
        assert_eq!(
            gcl.earliest_fit(
                SimTime::ZERO,
                TrafficClass::Critical,
                SimDuration::from_micros(301)
            ),
            None
        );
    }

    #[test]
    fn critical_traffic_is_isolated_from_bulk() {
        let gcl = demo_gcl();
        let mut port = TsnGatedPort::new(MBIT100, gcl);
        // Saturating best-effort backlog plus one critical frame per cycle.
        let mut events: Vec<TxEvent> = (0..100)
            .map(|i| TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1000 + i), 1500)
                    .with_priority(7)
                    .with_class(TrafficClass::BestEffort),
            })
            .collect();
        for k in 0..5u64 {
            events.push(TxEvent {
                arrival: SimTime::from_millis(k) + SimDuration::from_micros(10),
                frame: Frame::new(MessageId(k as u32), 200)
                    .with_priority(0)
                    .with_class(TrafficClass::Critical),
            });
        }
        let done = simulate(&mut port, events);
        for tx in done
            .iter()
            .filter(|t| t.frame.class == TrafficClass::Critical)
        {
            // Critical frame transmits within its own cycle's window.
            assert!(
                tx.latency() <= SimDuration::from_micros(300),
                "critical frame {} delayed {} — interference!",
                tx.frame.id,
                tx.latency()
            );
        }
        // Best-effort traffic still makes progress.
        assert!(
            done.iter()
                .filter(|t| t.frame.class == TrafficClass::BestEffort)
                .count()
                > 10
        );
    }

    #[test]
    fn best_effort_waits_for_its_window() {
        let gcl = demo_gcl();
        let mut port = TsnGatedPort::new(MBIT100, gcl);
        let done = simulate(
            &mut port,
            vec![TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(1), 100).with_class(TrafficClass::BestEffort),
            }],
        );
        assert_eq!(done[0].start, SimTime::from_micros(650));
    }

    #[test]
    fn unfittable_frames_are_dropped_and_counted() {
        // Best-effort window is 350 us; a 16 KiB "frame" would need ~1.3 ms.
        let gcl = demo_gcl();
        let mut port = TsnGatedPort::new(MBIT100, gcl);
        let done = simulate(
            &mut port,
            vec![
                TxEvent {
                    arrival: SimTime::ZERO,
                    frame: Frame::new(MessageId(1), 16_000).with_class(TrafficClass::BestEffort),
                },
                TxEvent {
                    arrival: SimTime::ZERO,
                    frame: Frame::new(MessageId(2), 100).with_class(TrafficClass::BestEffort),
                },
            ],
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].frame.id, MessageId(2));
        assert_eq!(port.dropped(), 1);
    }

    #[test]
    fn mixed_criticality_preset_is_valid_and_serves_all() {
        let gcl = GateControlList::mixed_criticality(ms(1), 0.3);
        assert!(gcl.serves(TrafficClass::Critical));
        assert!(gcl.serves(TrafficClass::Stream));
        assert!(gcl.serves(TrafficClass::BestEffort));
        assert_eq!(gcl.cycle(), ms(1));
    }
}
