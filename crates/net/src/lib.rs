//! Communication substrates for the dynamic platform.
//!
//! The paper (§1) names rising bandwidth demand as a core challenge and (§3.1,
//! "Hardware Access & Communication") requires that an urgent transmission of
//! a deterministic application is never delayed by a non-deterministic
//! application's bulk traffic. This crate implements frame-level models of
//! the four automotive media the paper discusses, all from scratch:
//!
//! * [`can`] — CAN with identifier-based non-preemptive priority arbitration
//!   and the classic worst-case response-time analysis;
//! * [`flexray`] — FlexRay with a time-triggered static segment and a
//!   minislot-arbitrated dynamic segment;
//! * [`ethernet`] — switched Ethernet egress ports with FIFO or strict
//!   802.1p priority selection;
//! * [`tsn`] — IEEE 802.1Qbv time-aware gates with guard-band semantics,
//!   the mixed-criticality scheme the paper's §5.3 points to.
//!
//! All media implement the same poll-based [`Arbiter`] state machine so
//! callers (the middleware in `dynplat-comm`, the experiment harness) can
//! drive any of them from a discrete-event loop, plus an offline
//! [`simulate`] helper for batch experiments.
//!
//! # Driving an [`Arbiter`]
//!
//! 1. call [`Arbiter::enqueue`] whenever a frame arrives;
//! 2. whenever the medium is idle and frames may be pending, call
//!    [`Arbiter::poll`]: it either grants a [`Transmission`] starting *now*
//!    (the medium is then busy until `end`, when you poll again), asks to be
//!    polled again at a later time (gate/slot opens then), or reports idle.
//!
//! Because grants always start at the poll instant, a late-arriving urgent
//! frame is never beaten by an earlier-queued bulk frame whose gate has not
//! opened yet.
//!
//! # Examples
//!
//! ```
//! use dynplat_common::time::SimTime;
//! use dynplat_common::MessageId;
//! use dynplat_net::{simulate, Frame, TxEvent};
//! use dynplat_net::can::CanArbiter;
//!
//! // Two frames contend at t=0; the lower CAN id (higher priority) wins.
//! let mut bus = CanArbiter::new(500_000);
//! let urgent = Frame::new(MessageId(0x10), 8).with_priority(0x10);
//! let bulk = Frame::new(MessageId(0x300), 8).with_priority(0x300);
//! let results = simulate(
//!     &mut bus,
//!     vec![
//!         TxEvent { arrival: SimTime::ZERO, frame: bulk },
//!         TxEvent { arrival: SimTime::ZERO, frame: urgent },
//!     ],
//! );
//! assert_eq!(results[0].frame.id, MessageId(0x10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod can;
pub mod ethernet;
pub mod flexray;
pub mod tsn;

pub use analysis::{worst_case_gate_delay, EthFlowSpec, EthernetAnalysis};
pub use can::{can_frame_time, CanAnalysis, CanArbiter, CanMessageSpec};
pub use ethernet::{ethernet_frame_time, FifoPort, StrictPriorityPort};
pub use flexray::{FlexRayBus, FlexRayConfig, SlotAssignment};
pub use tsn::{GateControlList, GateWindow, TsnGatedPort};

use dynplat_common::time::SimTime;
use dynplat_common::MessageId;

/// Traffic class of a frame, deciding which isolation mechanism applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Deterministic-application traffic with a deadline (scheduled/ST).
    Critical,
    /// Latency-sensitive but not safety-critical (audio/video streams).
    Stream,
    /// Best effort — bulk NDA traffic.
    #[default]
    BestEffort,
}

/// A frame queued for transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Flow identifier. On CAN this doubles as the arbitration identifier.
    pub id: MessageId,
    /// Payload length in bytes.
    pub payload: usize,
    /// Numeric priority; **lower value = higher priority** (CAN convention,
    /// mapped onto 802.1p internally for Ethernet media).
    pub priority: u32,
    /// Traffic class for gate/priority mapping.
    pub class: TrafficClass,
}

impl Frame {
    /// Creates a best-effort frame with priority equal to its raw id.
    pub fn new(id: MessageId, payload: usize) -> Self {
        Frame {
            id,
            payload,
            priority: id.raw(),
            class: TrafficClass::BestEffort,
        }
    }

    /// Sets the priority (lower = more urgent).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the traffic class.
    pub fn with_class(mut self, class: TrafficClass) -> Self {
        self.class = class;
        self
    }
}

/// A frame together with its arrival time at the egress queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxEvent {
    /// When the frame becomes ready to send.
    pub arrival: SimTime,
    /// The frame.
    pub frame: Frame,
}

/// A granted transmission: the frame occupies the medium in `[start, end)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transmission {
    /// The transmitted frame.
    pub frame: Frame,
    /// When the frame arrived at the queue.
    pub arrival: SimTime,
    /// First bit on the wire.
    pub start: SimTime,
    /// Last bit (plus inter-frame gap) off the wire; delivery instant.
    pub end: SimTime,
}

impl Transmission {
    /// Queue + transmission latency experienced by this frame.
    pub fn latency(&self) -> dynplat_common::time::SimDuration {
        self.end.saturating_since(self.arrival)
    }
}

/// Outcome of polling an idle medium.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Grant {
    /// A frame starts transmitting now; the medium is busy until `end`.
    Tx(Transmission),
    /// Frames are queued but none may start yet (closed gate / future
    /// slot); poll again at the given time.
    WaitUntil(SimTime),
    /// Nothing is queued.
    Idle,
}

/// The shared egress state machine all media implement.
///
/// See the crate-level docs for the driving protocol. Implementations are
/// passive: they never assume wall-clock progress beyond the `now` values
/// handed to them, and `now` must be non-decreasing across calls.
pub trait Arbiter {
    /// Records that `frame` arrived at time `now`.
    fn enqueue(&mut self, now: SimTime, frame: Frame);

    /// Asks the idle medium what to do at time `now`.
    fn poll(&mut self, now: SimTime) -> Grant;

    /// Number of frames waiting.
    fn pending(&self) -> usize;
}

/// Runs an [`Arbiter`] over a batch of arrivals and returns all completed
/// transmissions in completion order — the offline harness used by the
/// E3/E4 experiments.
pub fn simulate<A: Arbiter>(arbiter: &mut A, mut events: Vec<TxEvent>) -> Vec<Transmission> {
    events.sort_by_key(|e| e.arrival);
    let mut done: Vec<Transmission> = Vec::with_capacity(events.len());
    let mut iter = events.into_iter().peekable();
    // Time from which the medium is free.
    let mut free_at = SimTime::ZERO;
    // Next time we intend to poll, if any.
    let mut poll_at: Option<SimTime> = None;

    loop {
        let next_arrival = iter.peek().map(|e| e.arrival);
        let next_time = match (next_arrival, poll_at) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(p)) => p,
            (Some(a), Some(p)) => a.min(p),
        };

        // Ingest all arrivals at `next_time`.
        let mut arrived = false;
        while iter.peek().is_some_and(|e| e.arrival <= next_time) {
            let ev = iter.next().expect("peeked");
            arbiter.enqueue(ev.arrival, ev.frame);
            arrived = true;
        }
        if arrived {
            // (Re-)poll as soon as the medium is free; an earlier poll than a
            // pending WaitUntil is always safe (poll re-evaluates).
            let t = if free_at > next_time {
                free_at
            } else {
                next_time
            };
            poll_at = Some(poll_at.map_or(t, |p| p.min(t)));
        }

        if poll_at == Some(next_time) && next_time >= free_at {
            poll_at = None;
            match arbiter.poll(next_time) {
                Grant::Tx(tx) => {
                    debug_assert_eq!(tx.start, next_time, "grants start at the poll instant");
                    free_at = tx.end;
                    done.push(tx);
                    poll_at = Some(free_at);
                }
                Grant::WaitUntil(t) => {
                    debug_assert!(t > next_time, "WaitUntil must make progress");
                    poll_at = Some(t);
                }
                Grant::Idle => {}
            }
        } else if poll_at == Some(next_time) {
            // Poll came due while the medium is busy; defer to idle time.
            poll_at = Some(free_at);
        }
    }
    done
}

/// Convenience id used across tests and benches.
#[doc(hidden)]
pub fn mid(raw: u32) -> MessageId {
    MessageId(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_builders() {
        let f = Frame::new(MessageId(7), 16)
            .with_priority(2)
            .with_class(TrafficClass::Critical);
        assert_eq!(f.priority, 2);
        assert_eq!(f.class, TrafficClass::Critical);
        assert_eq!(Frame::new(MessageId(9), 1).priority, 9);
    }

    #[test]
    fn traffic_class_ordering_critical_first() {
        assert!(TrafficClass::Critical < TrafficClass::Stream);
        assert!(TrafficClass::Stream < TrafficClass::BestEffort);
    }
}
