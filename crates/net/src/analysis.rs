//! Worst-case analyses for the Ethernet media.
//!
//! The verification engine needs latency bounds before deployment (§2.2):
//! [`EthernetAnalysis`] gives the classic non-preemptive strict-priority
//! response-time bound per flow (one lower-priority frame of blocking plus
//! higher-priority interference — the 802.1p analogue of the CAN analysis),
//! and [`worst_case_gate_delay`] bounds how long a frame of a traffic class
//! can wait for its 802.1Qbv gate when the port is otherwise idle.

use crate::ethernet::ethernet_frame_time;
use crate::tsn::GateControlList;
use crate::TrafficClass;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::MessageId;

/// A periodic Ethernet flow for response-time analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthFlowSpec {
    /// Flow identifier.
    pub id: MessageId,
    /// Frame payload in bytes (≤ MTU; larger messages are per-frame flows).
    pub payload: usize,
    /// Frame priority (lower = more urgent).
    pub priority: u32,
    /// Activation period.
    pub period: SimDuration,
}

impl EthFlowSpec {
    /// Creates a flow.
    pub fn new(id: MessageId, payload: usize, priority: u32, period: SimDuration) -> Self {
        EthFlowSpec {
            id,
            payload,
            priority,
            period,
        }
    }
}

/// Per-flow analysis result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthWcrt {
    /// The analyzed flow.
    pub id: MessageId,
    /// Worst-case response time (arrival to last bit), or `None` when the
    /// fixed point exceeds the flow's period (analysis bails out).
    pub wcrt: Option<SimDuration>,
}

/// Strict-priority (802.1p) egress-port analysis.
#[derive(Clone, Debug)]
pub struct EthernetAnalysis {
    bitrate: u64,
    flows: Vec<EthFlowSpec>,
}

impl EthernetAnalysis {
    /// Creates an analysis over `flows` on a port at `bitrate` bit/s.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero or any period is zero.
    pub fn new(bitrate: u64, flows: Vec<EthFlowSpec>) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        assert!(
            flows.iter().all(|f| !f.period.is_zero()),
            "periods must be non-zero"
        );
        EthernetAnalysis { bitrate, flows }
    }

    /// Port utilization of the flow set.
    pub fn utilization(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| {
                ethernet_frame_time(f.payload, self.bitrate).as_nanos() as f64
                    / f.period.as_nanos() as f64
            })
            .sum()
    }

    /// Worst-case response times under non-preemptive strict priority.
    ///
    /// For flow *i*: `w = B_i + Σ_{j ∈ hp(i)} ⌈(w + ε) / T_j⌉ · C_j`,
    /// `R_i = w + C_i`, with `B_i` the largest lower-or-equal-priority
    /// frame (ties interfere, so equal priorities count as blocking *and*
    /// the FIFO ahead-of-us term is absorbed into the bound by treating
    /// them as higher priority once).
    pub fn response_times(&self) -> Vec<EthWcrt> {
        let eps = SimDuration::from_nanos(1);
        self.flows
            .iter()
            .map(|f| {
                let c = ethernet_frame_time(f.payload, self.bitrate);
                let blocking = self
                    .flows
                    .iter()
                    .filter(|o| o.priority >= f.priority && o.id != f.id)
                    .map(|o| ethernet_frame_time(o.payload, self.bitrate))
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let hp: Vec<&EthFlowSpec> = self
                    .flows
                    .iter()
                    .filter(|o| {
                        o.priority < f.priority || (o.priority == f.priority && o.id != f.id)
                    })
                    .collect();
                let mut w = blocking;
                let wcrt = loop {
                    let interference: SimDuration = hp
                        .iter()
                        .map(|o| {
                            let c_o = ethernet_frame_time(o.payload, self.bitrate);
                            let releases = (w + eps).as_nanos().div_ceil(o.period.as_nanos());
                            c_o * releases
                        })
                        .sum();
                    let w_next = blocking + interference;
                    if w_next == w {
                        break Some(w + c);
                    }
                    if w_next + c > f.period {
                        break None;
                    }
                    w = w_next;
                };
                EthWcrt { id: f.id, wcrt }
            })
            .collect()
    }

    /// `true` when every flow has a bounded WCRT within its period.
    pub fn is_schedulable(&self) -> bool {
        self.response_times().iter().all(|r| r.wcrt.is_some())
    }
}

/// Worst-case delay a frame of `class` lasting `tx` can wait for an open
/// gate on an otherwise idle TSN port.
///
/// Evaluated exactly by probing [`GateControlList::earliest_fit`] at the
/// critical arrival instants: just after each fitting window's latest
/// feasible start, and at each window boundary.
///
/// Returns `None` if no window of the class can ever fit the frame.
pub fn worst_case_gate_delay(
    gcl: &GateControlList,
    class: TrafficClass,
    tx: SimDuration,
) -> Option<SimDuration> {
    let cycle = gcl.cycle();
    let mut candidates: Vec<SimTime> = vec![SimTime::ZERO];
    for w in gcl.windows() {
        let open = SimTime::ZERO + w.offset;
        candidates.push(open);
        if w.length >= tx {
            // Just past the latest feasible start inside this window.
            let latest = open + (w.length - tx);
            candidates.push(latest + SimDuration::from_nanos(1));
        }
        candidates.push(open + w.length);
    }
    let mut worst: Option<SimDuration> = None;
    for t in candidates {
        if t >= SimTime::ZERO + cycle * 2 {
            continue;
        }
        let start = gcl.earliest_fit(t, class, tx)?;
        let wait = start.saturating_since(t);
        worst = Some(worst.map_or(wait, |w| w.max(wait)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::StrictPriorityPort;
    use crate::tsn::{GateWindow, TsnGatedPort};
    use crate::{simulate, Frame, TxEvent};

    const MBIT100: u64 = 100_000_000;

    fn flows() -> Vec<EthFlowSpec> {
        vec![
            EthFlowSpec::new(MessageId(1), 64, 0, SimDuration::from_millis(1)),
            EthFlowSpec::new(MessageId(2), 512, 1, SimDuration::from_millis(2)),
            EthFlowSpec::new(MessageId(3), 1500, 2, SimDuration::from_millis(5)),
        ]
    }

    #[test]
    fn top_priority_bound_is_blocking_plus_own_frame() {
        let analysis = EthernetAnalysis::new(MBIT100, flows());
        let rts = analysis.response_times();
        let c1 = ethernet_frame_time(64, MBIT100);
        let c3 = ethernet_frame_time(1500, MBIT100);
        assert_eq!(
            rts[0].wcrt,
            Some(c3 + c1),
            "blocked by the largest lower frame"
        );
        assert!(analysis.is_schedulable());
    }

    #[test]
    fn overload_is_flagged() {
        let heavy: Vec<EthFlowSpec> = (0..200)
            .map(|i| EthFlowSpec::new(MessageId(i), 1500, i, SimDuration::from_millis(20)))
            .collect();
        let analysis = EthernetAnalysis::new(MBIT100, heavy);
        assert!(analysis.utilization() > 1.0);
        assert!(!analysis.is_schedulable());
    }

    #[test]
    fn simulation_respects_the_bound() {
        let flows = flows();
        let analysis = EthernetAnalysis::new(MBIT100, flows.clone());
        let bounds = analysis.response_times();
        let mut port = StrictPriorityPort::new(MBIT100);
        let mut events = Vec::new();
        for f in &flows {
            let mut t = SimTime::ZERO;
            while t < SimTime::from_millis(50) {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(f.id, f.payload).with_priority(f.priority),
                });
                t += f.period;
            }
        }
        for tx in simulate(&mut port, events) {
            let bound = bounds
                .iter()
                .find(|b| b.id == tx.frame.id)
                .and_then(|b| b.wcrt)
                .expect("schedulable");
            assert!(
                tx.latency() <= bound,
                "{}: simulated {} > bound {}",
                tx.frame.id,
                tx.latency(),
                bound
            );
        }
    }

    fn demo_gcl() -> GateControlList {
        GateControlList::new(
            SimDuration::from_millis(1),
            vec![
                GateWindow::new(
                    TrafficClass::Critical,
                    SimDuration::ZERO,
                    SimDuration::from_micros(200),
                ),
                GateWindow::new(
                    TrafficClass::BestEffort,
                    SimDuration::from_micros(200),
                    SimDuration::from_micros(800),
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn gate_delay_bound_shape() {
        let gcl = demo_gcl();
        let tx = SimDuration::from_micros(50);
        // Worst case: arrive just after the last feasible start at 150 us;
        // wait until the next cycle = 1000 - (150 + 1ns) ≈ 850 us.
        let bound = worst_case_gate_delay(&gcl, TrafficClass::Critical, tx).expect("fits");
        assert!(bound >= SimDuration::from_micros(849));
        assert!(bound <= SimDuration::from_micros(851));
        // Best-effort gets a wide window: shorter worst wait.
        let be = worst_case_gate_delay(&gcl, TrafficClass::BestEffort, tx).expect("fits");
        assert!(be < bound);
        // A frame too large for any window has no bound.
        assert_eq!(
            worst_case_gate_delay(&gcl, TrafficClass::Critical, SimDuration::from_micros(300)),
            None
        );
    }

    #[test]
    fn simulated_gate_delay_never_exceeds_bound() {
        let gcl = demo_gcl();
        let tx_payload = 500usize; // ~41.76 us at 100 Mbit/s
        let tx = ethernet_frame_time(tx_payload, MBIT100);
        let bound = worst_case_gate_delay(&gcl, TrafficClass::Critical, tx).expect("fits");
        // Probe many arrival phases on an idle port.
        for phase_us in (0..1000).step_by(7) {
            let mut port = TsnGatedPort::new(MBIT100, gcl.clone());
            let events = vec![TxEvent {
                arrival: SimTime::from_micros(phase_us),
                frame: Frame::new(MessageId(1), tx_payload)
                    .with_priority(0)
                    .with_class(TrafficClass::Critical),
            }];
            let done = simulate(&mut port, events);
            let wait = done[0].latency().saturating_sub(tx);
            assert!(
                wait <= bound,
                "phase {phase_us}us: wait {wait} > bound {bound}"
            );
        }
    }
}
