//! Controller Area Network model.
//!
//! CAN is the incumbent automotive bus the paper contrasts with Ethernet.
//! Two faces are provided:
//!
//! * [`CanArbiter`] — an online state machine with identifier-based,
//!   non-preemptive priority arbitration (lower identifier wins the bus);
//! * [`CanAnalysis`] — the classic worst-case response-time analysis for
//!   periodic CAN message sets (blocking by at most one lower-priority
//!   frame plus interference from higher-priority frames), which the
//!   verification engine uses at integration time.
//!
//! Frame timing uses the standard worst-case bit-stuffing bound for an
//! 11-bit-identifier data frame: `8·s + g + 13 + ⌊(g + 8·s − 1)/4⌋` bits on
//! the wire with `g = 34` exposed control bits, i.e. 135 bit times for an
//! 8-byte frame.

use crate::{Arbiter, Frame, Grant, Transmission};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::MessageId;
use std::collections::VecDeque;

const EXPOSED_CONTROL_BITS: u64 = 34;

/// Worst-case wire time of a CAN data frame with `payload` bytes (0..=8) at
/// `bitrate` bit/s, including worst-case stuff bits and the 3-bit
/// interframe space.
///
/// # Panics
///
/// Panics if `payload > 8` or `bitrate == 0`.
pub fn can_frame_time(payload: usize, bitrate: u64) -> SimDuration {
    assert!(payload <= 8, "classic CAN carries at most 8 payload bytes");
    assert!(bitrate > 0, "bitrate must be non-zero");
    let s = payload as u64;
    let bits = 8 * s + EXPOSED_CONTROL_BITS + 13 + (EXPOSED_CONTROL_BITS + 8 * s - 1) / 4;
    SimDuration::from_nanos(bits * 1_000_000_000 / bitrate)
}

/// Online CAN bus: non-preemptive, lowest-identifier-first arbitration.
#[derive(Debug)]
pub struct CanArbiter {
    bitrate: u64,
    /// Cached ns per bit when integral at `bitrate` (all standard CAN
    /// rates), else 0 — replaces the per-frame division of
    /// [`can_frame_time`] with one multiplication on the poll path.
    ns_per_bit: u64,
    // Arbitration picks the minimum (priority, fifo seq) at poll time.
    queue: Vec<(u32, u64, SimTime, Frame)>,
    seq: u64,
}

impl CanArbiter {
    /// Creates a CAN bus at `bitrate` bit/s.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero.
    pub fn new(bitrate: u64) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        CanArbiter {
            bitrate,
            ns_per_bit: if 1_000_000_000 % bitrate == 0 {
                1_000_000_000 / bitrate
            } else {
                0
            },
            queue: Vec::new(),
            seq: 0,
        }
    }
}

impl Arbiter for CanArbiter {
    fn enqueue(&mut self, now: SimTime, frame: Frame) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push((frame.priority, seq, now, frame));
    }

    fn poll(&mut self, now: SimTime) -> Grant {
        // Lowest (priority, seq) wins arbitration. A one-deep queue (the
        // uncongested fast path) needs no arbitration scan at all.
        let best = match self.queue.len() {
            0 => return Grant::Idle,
            1 => 0,
            _ => self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(_, (p, s, _, _))| (*p, *s))
                .map(|(i, _)| i)
                .expect("non-empty queue has a minimum"),
        };
        let (_, _, arrival, frame) = self.queue.swap_remove(best);
        let wire = if self.ns_per_bit != 0 {
            let s = frame.payload as u64;
            let bits = 8 * s + EXPOSED_CONTROL_BITS + 13 + (EXPOSED_CONTROL_BITS + 8 * s - 1) / 4;
            SimDuration::from_nanos(bits * self.ns_per_bit)
        } else {
            can_frame_time(frame.payload, self.bitrate)
        };
        let end = now + wire;
        Grant::Tx(Transmission {
            frame,
            arrival,
            start: now,
            end,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A periodic CAN message for response-time analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanMessageSpec {
    /// Flow identifier (= arbitration id; lower is more urgent).
    pub id: MessageId,
    /// Payload bytes, 0..=8.
    pub payload: usize,
    /// Activation period.
    pub period: SimDuration,
    /// Release jitter bound.
    pub jitter: SimDuration,
}

impl CanMessageSpec {
    /// Creates a jitter-free periodic message.
    pub fn periodic(id: MessageId, payload: usize, period: SimDuration) -> Self {
        CanMessageSpec {
            id,
            payload,
            period,
            jitter: SimDuration::ZERO,
        }
    }
}

/// Result of the worst-case response-time analysis for one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanWcrt {
    /// The analyzed message.
    pub id: MessageId,
    /// Worst-case response time (release to end of transmission), or `None`
    /// if the fixed-point iteration exceeded the message's period (the
    /// simple analysis then does not apply and the set is deemed
    /// unschedulable for that message).
    pub wcrt: Option<SimDuration>,
}

/// Worst-case response-time analysis for a CAN message set.
#[derive(Clone, Debug)]
pub struct CanAnalysis {
    bitrate: u64,
    messages: Vec<CanMessageSpec>,
}

impl CanAnalysis {
    /// Creates an analysis context over `messages` on a bus at `bitrate`.
    ///
    /// # Panics
    ///
    /// Panics if `bitrate` is zero or any period is zero.
    pub fn new(bitrate: u64, messages: Vec<CanMessageSpec>) -> Self {
        assert!(bitrate > 0, "bitrate must be non-zero");
        assert!(
            messages.iter().all(|m| !m.period.is_zero()),
            "periods must be non-zero"
        );
        CanAnalysis { bitrate, messages }
    }

    /// Bus utilization of the message set (1.0 = saturated).
    pub fn utilization(&self) -> f64 {
        self.messages
            .iter()
            .map(|m| {
                can_frame_time(m.payload, self.bitrate).as_nanos() as f64
                    / m.period.as_nanos() as f64
            })
            .sum()
    }

    /// Computes the worst-case response time of every message.
    ///
    /// Classic analysis: for message *m*, the queueing delay `w` satisfies
    /// `w = B_m + Σ_{k ∈ hp(m)} ⌈(w + J_k + τ_bit) / T_k⌉ · C_k`, where
    /// `B_m` is the longest lower-priority frame (non-preemptive blocking),
    /// and `R_m = J_m + w + C_m`.
    pub fn response_times(&self) -> Vec<CanWcrt> {
        let tau_bit = SimDuration::from_nanos(1_000_000_000 / self.bitrate);
        self.messages
            .iter()
            .map(|m| {
                let c_m = can_frame_time(m.payload, self.bitrate);
                let blocking = self
                    .messages
                    .iter()
                    .filter(|k| k.id.raw() > m.id.raw())
                    .map(|k| can_frame_time(k.payload, self.bitrate))
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                let hp: Vec<&CanMessageSpec> = self
                    .messages
                    .iter()
                    .filter(|k| k.id.raw() < m.id.raw())
                    .collect();

                let mut w = blocking;
                let wcrt = loop {
                    let interference: SimDuration = hp
                        .iter()
                        .map(|k| {
                            let c_k = can_frame_time(k.payload, self.bitrate);
                            let num = (w + k.jitter + tau_bit).as_nanos();
                            let releases = num.div_ceil(k.period.as_nanos());
                            c_k * releases
                        })
                        .sum();
                    let w_next = blocking + interference;
                    if w_next == w {
                        break Some(m.jitter + w + c_m);
                    }
                    if m.jitter + w_next + c_m > m.period {
                        break None; // exceeds period: simple analysis bails out
                    }
                    w = w_next;
                };
                CanWcrt { id: m.id, wcrt }
            })
            .collect()
    }

    /// `true` if every message has a finite WCRT not exceeding its period.
    pub fn is_schedulable(&self) -> bool {
        self.response_times().iter().all(|r| r.wcrt.is_some())
    }
}

/// Convenience: generate `n` periodic messages with descending priority and
/// evenly spread periods, as used by workload generators.
pub fn uniform_message_set(
    n: usize,
    payload: usize,
    base_period: SimDuration,
) -> Vec<CanMessageSpec> {
    (0..n)
        .map(|i| {
            CanMessageSpec::periodic(MessageId(i as u32), payload, base_period * (1 + i as u64))
        })
        .collect()
}

// Re-export for offline replay of CAN traffic in experiments.
#[doc(hidden)]
pub type CanQueue = VecDeque<Frame>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, TxEvent};

    const KBIT500: u64 = 500_000;

    #[test]
    fn frame_time_matches_standard_bound() {
        // 8-byte frame: 135 bits at 500 kbit/s = 270 us.
        assert_eq!(can_frame_time(8, KBIT500), SimDuration::from_micros(270));
        // 0-byte frame: 34 + 13 + 8 = 55 bits = 110 us.
        assert_eq!(can_frame_time(0, KBIT500), SimDuration::from_micros(110));
    }

    #[test]
    #[should_panic(expected = "at most 8 payload bytes")]
    fn oversized_payload_panics() {
        can_frame_time(9, KBIT500);
    }

    #[test]
    fn lower_id_wins_contention() {
        let mut bus = CanArbiter::new(KBIT500);
        let events = vec![
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(0x200), 8),
            },
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(0x100), 8),
            },
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(0x001), 8),
            },
        ];
        let done = simulate(&mut bus, events);
        // All three contend at t=0: pure priority order.
        assert_eq!(done[0].frame.id, MessageId(0x001));
        assert_eq!(done[1].frame.id, MessageId(0x100));
        assert_eq!(done[2].frame.id, MessageId(0x200));
    }

    #[test]
    fn non_preemptive_blocking() {
        let mut bus = CanArbiter::new(KBIT500);
        let c = can_frame_time(8, KBIT500);
        let events = vec![
            TxEvent {
                arrival: SimTime::ZERO,
                frame: Frame::new(MessageId(0x700), 8),
            },
            // Urgent frame arrives mid-transmission; must wait for completion.
            TxEvent {
                arrival: SimTime::ZERO + c / 2,
                frame: Frame::new(MessageId(0x001), 8),
            },
        ];
        let done = simulate(&mut bus, events);
        assert_eq!(done[0].frame.id, MessageId(0x700));
        assert_eq!(done[1].start, done[0].end);
        assert_eq!(done[1].end, done[0].end + c);
    }

    #[test]
    fn back_to_back_transmissions_do_not_overlap() {
        let mut bus = CanArbiter::new(KBIT500);
        let events: Vec<TxEvent> = (0..20)
            .map(|i| TxEvent {
                arrival: SimTime::from_micros(i * 10),
                frame: Frame::new(MessageId(i as u32), (i % 9) as usize),
            })
            .collect();
        let done = simulate(&mut bus, events);
        assert_eq!(done.len(), 20);
        for pair in done.windows(2) {
            assert!(pair[1].start >= pair[0].end, "transmissions overlap");
        }
    }

    #[test]
    fn wcrt_of_highest_priority_is_blocking_plus_own_time() {
        let msgs = vec![
            CanMessageSpec::periodic(MessageId(1), 8, SimDuration::from_millis(10)),
            CanMessageSpec::periodic(MessageId(2), 8, SimDuration::from_millis(10)),
        ];
        let analysis = CanAnalysis::new(KBIT500, msgs);
        let rts = analysis.response_times();
        let c = can_frame_time(8, KBIT500);
        // Highest priority: blocked by one lower frame, then transmits.
        assert_eq!(rts[0].wcrt, Some(c + c));
        // Lowest: no blocking, one interference hit from msg 1.
        assert_eq!(rts[1].wcrt, Some(c + c));
        assert!(analysis.is_schedulable());
    }

    #[test]
    fn overload_is_flagged_unschedulable() {
        // 20 8-byte messages at 2 ms each on 500 kbit/s: U = 20*270us/2ms = 2.7.
        let msgs = uniform_message_set(20, 8, SimDuration::from_millis(2))
            .into_iter()
            .map(|mut m| {
                m.period = SimDuration::from_millis(2);
                m
            })
            .collect();
        let analysis = CanAnalysis::new(KBIT500, msgs);
        assert!(analysis.utilization() > 1.0);
        assert!(!analysis.is_schedulable());
    }

    #[test]
    fn analysis_bounds_hold_in_simulation() {
        // Synchronous release (critical instant) must not beat the analysis.
        let msgs = vec![
            CanMessageSpec::periodic(MessageId(1), 4, SimDuration::from_millis(5)),
            CanMessageSpec::periodic(MessageId(2), 8, SimDuration::from_millis(10)),
            CanMessageSpec::periodic(MessageId(3), 8, SimDuration::from_millis(20)),
        ];
        let analysis = CanAnalysis::new(KBIT500, msgs.clone());
        let rts = analysis.response_times();

        let mut bus = CanArbiter::new(KBIT500);
        let horizon = SimDuration::from_millis(40);
        let mut events = Vec::new();
        for m in &msgs {
            let mut t = SimTime::ZERO;
            while t < SimTime::ZERO + horizon {
                events.push(TxEvent {
                    arrival: t,
                    frame: Frame::new(m.id, m.payload).with_priority(m.id.raw()),
                });
                t += m.period;
            }
        }
        let done = simulate(&mut bus, events);
        for tx in done {
            let bound = rts
                .iter()
                .find(|r| r.id == tx.frame.id)
                .and_then(|r| r.wcrt)
                .expect("schedulable");
            assert!(
                tx.latency() <= bound,
                "observed {} exceeds analytic bound {} for {}",
                tx.latency(),
                bound,
                tx.frame.id
            );
        }
    }

    #[test]
    fn utilization_formula() {
        let msgs = vec![CanMessageSpec::periodic(
            MessageId(1),
            8,
            SimDuration::from_millis(1),
        )];
        let analysis = CanAnalysis::new(KBIT500, msgs);
        let u = analysis.utilization();
        assert!((u - 0.27).abs() < 1e-9, "got {u}");
    }
}
