//! Distributed access control (§4.2).
//!
//! "Such an access control method needs to define which client is allowed
//! to access which service. These definitions should be automatically
//! extracted from the modeling approach" — the `dynplat-model` crate's
//! generator emits an [`AccessControlMatrix`]; the middleware consults it
//! on every binding. Semantics are **deny by default**; wildcard grants
//! (the paper's data-logger discussion) exist but are flagged for audit and
//! can be adjusted at runtime, with a version counter so distributed copies
//! can detect staleness.

use dynplat_common::{AppId, MethodId, ServiceId};
use std::collections::BTreeSet;
use std::fmt;

/// What a client is allowed to do on a service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Permission {
    /// Subscribe to an event group.
    Subscribe,
    /// Call a specific method.
    Call(MethodId),
    /// Receive a stream.
    Stream,
    /// Everything on the service — audited wildcard (diagnosis clients).
    All,
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Permission::Subscribe => write!(f, "subscribe"),
            Permission::Call(m) => write!(f, "call:{m}"),
            Permission::Stream => write!(f, "stream"),
            Permission::All => write!(f, "ALL"),
        }
    }
}

/// Outcome of an access check, with the reason for auditability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessDecision {
    /// Granted by an explicit rule.
    Granted,
    /// Granted through a wildcard — should appear in audit logs.
    GrantedByWildcard,
    /// No matching rule: denied (default).
    Denied,
}

impl AccessDecision {
    /// `true` for either grant variant.
    pub fn is_granted(&self) -> bool {
        !matches!(self, AccessDecision::Denied)
    }
}

/// The (client, service, permission) relation, versioned for distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessControlMatrix {
    rules: BTreeSet<(AppId, ServiceId, Permission)>,
    version: u64,
}

impl AccessControlMatrix {
    /// Creates an empty (deny-everything) matrix.
    pub fn new() -> Self {
        AccessControlMatrix::default()
    }

    /// Current version; bumped on every mutation so distributed copies can
    /// detect staleness.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Grants `permission` to `client` on `service`.
    pub fn grant(&mut self, client: AppId, service: ServiceId, permission: Permission) {
        if self.rules.insert((client, service, permission)) {
            self.version += 1;
        }
    }

    /// Revokes a previously granted permission; returns whether it existed.
    pub fn revoke(&mut self, client: AppId, service: ServiceId, permission: Permission) -> bool {
        let removed = self.rules.remove(&(client, service, permission));
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Checks whether `client` may perform `permission` on `service`.
    pub fn check(
        &self,
        client: AppId,
        service: ServiceId,
        permission: Permission,
    ) -> AccessDecision {
        if self.rules.contains(&(client, service, permission)) {
            return AccessDecision::Granted;
        }
        if self.rules.contains(&(client, service, Permission::All)) {
            return AccessDecision::GrantedByWildcard;
        }
        AccessDecision::Denied
    }

    /// All wildcard grants — the audit surface of the paper's data-logger
    /// discussion.
    pub fn wildcard_grants(&self) -> impl Iterator<Item = (AppId, ServiceId)> + '_ {
        self.rules
            .iter()
            .filter(|(_, _, p)| *p == Permission::All)
            .map(|(c, s, _)| (*c, *s))
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when nothing is granted.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Merges another matrix in (e.g. a runtime-loaded permission pack);
    /// the version jumps past both inputs.
    pub fn merge(&mut self, other: &AccessControlMatrix) {
        let before = self.rules.len();
        self.rules.extend(other.rules.iter().cloned());
        if self.rules.len() != before {
            self.version = self.version.max(other.version) + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_by_default() {
        let m = AccessControlMatrix::new();
        assert_eq!(
            m.check(AppId(1), ServiceId(1), Permission::Subscribe),
            AccessDecision::Denied
        );
        assert!(m.is_empty());
    }

    #[test]
    fn explicit_grant_and_revoke() {
        let mut m = AccessControlMatrix::new();
        m.grant(AppId(1), ServiceId(2), Permission::Call(MethodId(3)));
        assert_eq!(
            m.check(AppId(1), ServiceId(2), Permission::Call(MethodId(3))),
            AccessDecision::Granted
        );
        // A different method on the same service is still denied.
        assert_eq!(
            m.check(AppId(1), ServiceId(2), Permission::Call(MethodId(4))),
            AccessDecision::Denied
        );
        assert!(m.revoke(AppId(1), ServiceId(2), Permission::Call(MethodId(3))));
        assert_eq!(
            m.check(AppId(1), ServiceId(2), Permission::Call(MethodId(3))),
            AccessDecision::Denied
        );
        assert!(!m.revoke(AppId(1), ServiceId(2), Permission::Call(MethodId(3))));
    }

    #[test]
    fn wildcard_is_flagged() {
        let mut m = AccessControlMatrix::new();
        m.grant(AppId(7), ServiceId(2), Permission::All);
        let d = m.check(AppId(7), ServiceId(2), Permission::Subscribe);
        assert_eq!(d, AccessDecision::GrantedByWildcard);
        assert!(d.is_granted());
        assert_eq!(
            m.wildcard_grants().collect::<Vec<_>>(),
            vec![(AppId(7), ServiceId(2))]
        );
        // Wildcard on one service grants nothing on another.
        assert_eq!(
            m.check(AppId(7), ServiceId(3), Permission::Subscribe),
            AccessDecision::Denied
        );
    }

    #[test]
    fn version_advances_on_every_change() {
        let mut m = AccessControlMatrix::new();
        assert_eq!(m.version(), 0);
        m.grant(AppId(1), ServiceId(1), Permission::Stream);
        assert_eq!(m.version(), 1);
        // Idempotent grant does not bump.
        m.grant(AppId(1), ServiceId(1), Permission::Stream);
        assert_eq!(m.version(), 1);
        m.revoke(AppId(1), ServiceId(1), Permission::Stream);
        assert_eq!(m.version(), 2);
    }

    #[test]
    fn merge_unions_rules() {
        let mut a = AccessControlMatrix::new();
        a.grant(AppId(1), ServiceId(1), Permission::Subscribe);
        let mut b = AccessControlMatrix::new();
        b.grant(AppId(2), ServiceId(2), Permission::Stream);
        b.grant(AppId(2), ServiceId(3), Permission::Stream);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a
            .check(AppId(2), ServiceId(2), Permission::Stream)
            .is_granted());
        assert!(a.version() > b.version());
        // Merging identical content is a no-op for the version.
        let v = a.version();
        a.merge(&b);
        assert_eq!(a.version(), v);
    }
}
