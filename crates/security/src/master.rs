//! The update master (§4.1).
//!
//! "Not all ECUs might have sufficient power to perform cryptographic
//! operations at runtime. For such ECUs we propose to use an update master
//! to which a trust relationship can be established. … To avoid a single
//! point of failure, the update master would need to be instantiated in a
//! redundant fashion."
//!
//! An [`UpdateMaster`] holds the trust registry and verifies signed
//! packages on behalf of weak ECUs. It re-authenticates the verified
//! package to each weak ECU with a [`Voucher`]: an HMAC over the package
//! digest under the pre-shared key of that ECU — a symmetric operation
//! cheap enough for the weakest microcontroller.

use crate::package::{KeyRegistry, PackageError, SignedPackage, UpdatePackage};
use crate::sha256::{ct_eq, hmac_sha256, sha256};
use dynplat_common::EcuId;
use std::collections::BTreeMap;

/// MAC-based proof that a master verified a package for a specific ECU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Voucher {
    /// The ECU this voucher addresses.
    pub ecu: EcuId,
    /// SHA-256 of the package bytes the voucher covers.
    pub package_digest: [u8; 32],
    /// HMAC over (ecu ‖ digest) under the ECU's pre-shared key.
    pub tag: [u8; 32],
}

/// A capable ECU that verifies packages for crypto-less peers.
#[derive(Clone, Debug)]
pub struct UpdateMaster {
    registry: KeyRegistry,
    // Pre-shared symmetric keys with the weak ECUs it serves.
    psk: BTreeMap<EcuId, [u8; 32]>,
}

impl UpdateMaster {
    /// Creates a master trusting `registry`.
    pub fn new(registry: KeyRegistry) -> Self {
        UpdateMaster {
            registry,
            psk: BTreeMap::new(),
        }
    }

    /// Establishes the trust relationship with a weak ECU (factory
    /// provisioning of a pre-shared key).
    pub fn enroll(&mut self, ecu: EcuId, psk: [u8; 32]) {
        self.psk.insert(ecu, psk);
    }

    /// Number of enrolled weak ECUs.
    pub fn enrolled(&self) -> usize {
        self.psk.len()
    }

    /// Verifies `signed` with public-key cryptography and, on success,
    /// issues a voucher for `ecu`.
    ///
    /// # Errors
    ///
    /// All [`PackageError`] variants, plus
    /// [`PackageError::UntrustedSigner`] with a zero id if `ecu` is not
    /// enrolled (no trust relationship exists).
    pub fn verify_for(
        &self,
        signed: &SignedPackage,
        ecu: EcuId,
    ) -> Result<(UpdatePackage, Voucher), PackageError> {
        let psk = self
            .psk
            .get(&ecu)
            .ok_or(PackageError::UntrustedSigner([0; 8]))?;
        let package = signed.verify(&self.registry)?;
        let package_digest = sha256(&signed.package_bytes);
        let tag = voucher_tag(psk, ecu, &package_digest);
        Ok((
            package,
            Voucher {
                ecu,
                package_digest,
                tag,
            },
        ))
    }
}

fn voucher_tag(psk: &[u8; 32], ecu: EcuId, digest: &[u8; 32]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(2 + 32);
    msg.extend_from_slice(&ecu.raw().to_be_bytes());
    msg.extend_from_slice(digest);
    hmac_sha256(psk, &msg)
}

/// The weak-ECU side: accepts a package only with a valid voucher under its
/// pre-shared key — a single HMAC, no public-key operations.
#[derive(Clone, Debug)]
pub struct WeakEcuVerifier {
    ecu: EcuId,
    psk: [u8; 32],
}

impl WeakEcuVerifier {
    /// Creates the verifier with the factory-provisioned key.
    pub fn new(ecu: EcuId, psk: [u8; 32]) -> Self {
        WeakEcuVerifier { ecu, psk }
    }

    /// Checks that `voucher` covers `package_bytes` and addresses this ECU.
    pub fn accept(&self, package_bytes: &[u8], voucher: &Voucher) -> bool {
        if voucher.ecu != self.ecu {
            return false;
        }
        let digest = sha256(package_bytes);
        if !ct_eq(&digest, &voucher.package_digest) {
            return false;
        }
        let expect = voucher_tag(&self.psk, self.ecu, &digest);
        ct_eq(&expect, &voucher.tag)
    }
}

/// Redundant master deployment: the primary serves requests; on failure the
/// backup takes over (no single point of failure, §4.1).
#[derive(Clone, Debug)]
pub struct RedundantMasters {
    masters: Vec<UpdateMaster>,
    failed: Vec<bool>,
}

impl RedundantMasters {
    /// Creates a redundant group; all masters should share registry and
    /// enrollments.
    ///
    /// # Panics
    ///
    /// Panics if `masters` is empty.
    pub fn new(masters: Vec<UpdateMaster>) -> Self {
        assert!(!masters.is_empty(), "need at least one master");
        let failed = vec![false; masters.len()];
        RedundantMasters { masters, failed }
    }

    /// Marks master `idx` as failed.
    pub fn fail(&mut self, idx: usize) {
        if let Some(f) = self.failed.get_mut(idx) {
            *f = true;
        }
    }

    /// The index of the currently serving master, if any survives.
    pub fn active(&self) -> Option<usize> {
        self.failed.iter().position(|f| !f)
    }

    /// Serves a verification request through the first healthy master.
    ///
    /// # Errors
    ///
    /// [`PackageError`] from the serving master; `UntrustedSigner([0xFF;8])`
    /// if every master has failed (service unavailable).
    pub fn verify_for(
        &self,
        signed: &SignedPackage,
        ecu: EcuId,
    ) -> Result<(UpdatePackage, Voucher), PackageError> {
        match self.active() {
            Some(idx) => self.masters[idx].verify_for(signed, ecu),
            None => Err(PackageError::UntrustedSigner([0xFF; 8])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{UpdatePackage, Version};
    use crate::sign::KeyPair;
    use dynplat_common::AppId;

    fn setup() -> (KeyPair, KeyRegistry, SignedPackage) {
        let authority = KeyPair::from_seed(b"authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let package = UpdatePackage::new(AppId(3), Version::new(1, 0, 0), 5, vec![9, 9]);
        let signed = SignedPackage::create(&package, &authority);
        (authority, registry, signed)
    }

    #[test]
    fn master_verifies_and_weak_ecu_accepts() {
        let (_, registry, signed) = setup();
        let mut master = UpdateMaster::new(registry);
        let psk = [0x42; 32];
        master.enroll(EcuId(5), psk);
        let (package, voucher) = master.verify_for(&signed, EcuId(5)).unwrap();
        assert_eq!(package.app, AppId(3));

        let weak = WeakEcuVerifier::new(EcuId(5), psk);
        assert!(weak.accept(&signed.package_bytes, &voucher));
    }

    #[test]
    fn voucher_does_not_transfer_between_ecus() {
        let (_, registry, signed) = setup();
        let mut master = UpdateMaster::new(registry);
        master.enroll(EcuId(5), [0x42; 32]);
        master.enroll(EcuId(6), [0x43; 32]);
        let (_, voucher5) = master.verify_for(&signed, EcuId(5)).unwrap();
        let weak6 = WeakEcuVerifier::new(EcuId(6), [0x43; 32]);
        assert!(!weak6.accept(&signed.package_bytes, &voucher5));
    }

    #[test]
    fn tampered_payload_fails_at_weak_ecu() {
        let (_, registry, signed) = setup();
        let mut master = UpdateMaster::new(registry);
        let psk = [0x42; 32];
        master.enroll(EcuId(5), psk);
        let (_, voucher) = master.verify_for(&signed, EcuId(5)).unwrap();
        let weak = WeakEcuVerifier::new(EcuId(5), psk);
        let mut tampered = signed.package_bytes.clone();
        tampered[0] ^= 1;
        assert!(!weak.accept(&tampered, &voucher));
    }

    #[test]
    fn unenrolled_ecu_is_refused() {
        let (_, registry, signed) = setup();
        let master = UpdateMaster::new(registry);
        assert!(master.verify_for(&signed, EcuId(9)).is_err());
        assert_eq!(master.enrolled(), 0);
    }

    #[test]
    fn master_rejects_untrusted_package() {
        let rogue = KeyPair::from_seed(b"rogue");
        let package = UpdatePackage::new(AppId(3), Version::new(9, 9, 9), 99, vec![6, 6, 6]);
        let signed = SignedPackage::create(&package, &rogue);
        let mut master = UpdateMaster::new(KeyRegistry::new());
        master.enroll(EcuId(5), [0; 32]);
        assert!(master.verify_for(&signed, EcuId(5)).is_err());
    }

    #[test]
    fn redundant_masters_fail_over() {
        let (_, registry, signed) = setup();
        let psk = [1; 32];
        let mut m1 = UpdateMaster::new(registry.clone());
        let mut m2 = UpdateMaster::new(registry);
        m1.enroll(EcuId(5), psk);
        m2.enroll(EcuId(5), psk);
        let mut group = RedundantMasters::new(vec![m1, m2]);
        assert_eq!(group.active(), Some(0));
        group.verify_for(&signed, EcuId(5)).unwrap();

        group.fail(0);
        assert_eq!(group.active(), Some(1));
        // Backup produces an equally valid voucher (same PSK).
        let (_, voucher) = group.verify_for(&signed, EcuId(5)).unwrap();
        assert!(WeakEcuVerifier::new(EcuId(5), psk).accept(&signed.package_bytes, &voucher));

        group.fail(1);
        assert_eq!(group.active(), None);
        assert!(group.verify_for(&signed, EcuId(5)).is_err());
    }
}
