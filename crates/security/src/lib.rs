//! Security substrate for the dynamic platform (§4 of the paper).
//!
//! Dynamic loading and over-the-air updating of software raise the security
//! bar: packages must be authentic, service bindings authenticated, and
//! access authorized — with ECUs that sometimes cannot even afford
//! public-key cryptography. This crate implements the full stack from
//! scratch (the offline crate set contains no cryptography):
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC-SHA256, verified
//!   against the standard test vectors;
//! * [`sign`] — a Schnorr-style signature scheme over a 61-bit prime field.
//!   **This is a simulation stand-in, not production cryptography**: the
//!   structure (keygen / deterministic nonce / sign / verify / tamper
//!   rejection) is faithful, the parameters are toy-sized so the whole
//!   system stays dependency-free (see DESIGN.md §5);
//! * [`package`] — signed update packages and the trusted-key registry;
//! * [`master`] — the *update master* of §4.1: a capable ECU that verifies
//!   packages on behalf of crypto-less ECUs and re-authenticates them over
//!   pre-shared MAC keys, deployable redundantly;
//! * [`authn`] — lightweight session authentication in the spirit of the
//!   paper's reference \[10\]: a key server grants HMAC-derived session keys
//!   and tickets, messages carry truncated MACs with replay counters;
//! * [`authz`] — the distributed access-control matrix of §4.2:
//!   deny-by-default, generated from the interface model, updatable at
//!   runtime, with audited wildcard grants for diagnosis clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authn;
pub mod authz;
pub mod master;
pub mod package;
pub mod sha256;
pub mod sign;

pub use authn::{AuthError, KeyServer, SecureChannel};
pub use authz::{AccessControlMatrix, AccessDecision, Permission};
pub use master::{UpdateMaster, Voucher};
pub use package::{KeyRegistry, PackageError, SignedPackage, UpdatePackage, Version};
pub use sha256::{hmac_sha256, sha256, Sha256};
pub use sign::{KeyPair, PublicKey, Signature};
