//! Lightweight session authentication (§4.2, after reference \[10\]).
//!
//! The paper's reference \[10\] (Mundhenk et al., TODAES 2017) proposes a
//! lightweight authentication and authorization framework for automotive
//! networks: asymmetric crypto only at session setup with a central
//! security module, symmetric MACs for the data plane. This module
//! reproduces the structure:
//!
//! 1. every participant shares a long-term key with the [`KeyServer`]
//!    (factory provisioning);
//! 2. a client requests a session with a service; the key server derives a
//!    fresh session key and issues a *ticket* the service can check without
//!    talking to the server (Needham–Schroeder/Kerberos shape);
//! 3. data-plane messages carry truncated HMAC tags and a monotonic counter
//!    for replay protection.

use crate::sha256::{ct_eq, derive_key, hmac_sha256};
use dynplat_common::{AppId, ServiceId};
use std::collections::BTreeMap;
use std::fmt;

/// Length of the truncated per-message MAC tag in bytes.
pub const TAG_LEN: usize = 8;

/// Errors of the authentication layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// The principal has no long-term key at the server.
    UnknownPrincipal,
    /// The ticket MAC does not verify.
    BadTicket,
    /// The message MAC does not verify.
    BadTag,
    /// The message counter did not advance (replay).
    Replay {
        /// Counter in the message.
        got: u64,
        /// Last accepted counter.
        last: u64,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownPrincipal => write!(f, "principal not enrolled at key server"),
            AuthError::BadTicket => write!(f, "ticket authentication failed"),
            AuthError::BadTag => write!(f, "message tag verification failed"),
            AuthError::Replay { got, last } => {
                write!(f, "replayed message: counter {got} not above {last}")
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// A principal: either a client application or a service provider.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Principal {
    /// A client application.
    Client(AppId),
    /// A service instance.
    Service(ServiceId),
}

/// A session grant: the session key for the client plus a ticket that
/// proves the grant to the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionGrant {
    /// Fresh symmetric session key.
    pub session_key: [u8; 32],
    /// Opaque ticket for the service: MAC over (client, service, session id)
    /// under the service's long-term key.
    pub ticket: [u8; 32],
    /// Unique session identifier.
    pub session_id: u64,
}

/// Central security module holding long-term keys.
#[derive(Clone, Debug, Default)]
pub struct KeyServer {
    long_term: BTreeMap<Principal, [u8; 32]>,
    next_session: u64,
}

impl KeyServer {
    /// Creates an empty key server.
    pub fn new() -> Self {
        KeyServer::default()
    }

    /// Enrolls a principal with its long-term key.
    pub fn enroll(&mut self, who: Principal, key: [u8; 32]) {
        self.long_term.insert(who, key);
    }

    /// Grants a session between `client` and `service`.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnknownPrincipal`] if either party is not enrolled.
    pub fn grant_session(
        &mut self,
        client: AppId,
        service: ServiceId,
    ) -> Result<SessionGrant, AuthError> {
        let client_key = self
            .long_term
            .get(&Principal::Client(client))
            .ok_or(AuthError::UnknownPrincipal)?;
        let service_key = self
            .long_term
            .get(&Principal::Service(service))
            .ok_or(AuthError::UnknownPrincipal)?;
        let session_id = self.next_session;
        self.next_session += 1;
        // Session key bound to both parties and the session id.
        let mut material = Vec::new();
        material.extend_from_slice(client_key);
        material.extend_from_slice(&client.raw().to_be_bytes());
        material.extend_from_slice(&service.raw().to_be_bytes());
        material.extend_from_slice(&session_id.to_be_bytes());
        let session_key = hmac_sha256(&derive_key(client_key, "session"), &material);
        let ticket = ticket_tag(service_key, client, service, session_id, &session_key);
        Ok(SessionGrant {
            session_key,
            ticket,
            session_id,
        })
    }
}

fn ticket_tag(
    service_key: &[u8; 32],
    client: AppId,
    service: ServiceId,
    session_id: u64,
    session_key: &[u8; 32],
) -> [u8; 32] {
    let mut msg = Vec::new();
    msg.extend_from_slice(&client.raw().to_be_bytes());
    msg.extend_from_slice(&service.raw().to_be_bytes());
    msg.extend_from_slice(&session_id.to_be_bytes());
    msg.extend_from_slice(session_key);
    hmac_sha256(&derive_key(service_key, "ticket"), &msg)
}

/// Service-side admission of a presented ticket.
///
/// The service recomputes the expected ticket from its long-term key and
/// the session parameters forwarded by the client; no key-server round trip
/// is needed.
///
/// # Errors
///
/// [`AuthError::BadTicket`] on mismatch.
pub fn service_accept_ticket(
    service_key: &[u8; 32],
    client: AppId,
    service: ServiceId,
    grant: &SessionGrant,
) -> Result<SecureChannel, AuthError> {
    let expect = ticket_tag(
        service_key,
        client,
        service,
        grant.session_id,
        &grant.session_key,
    );
    if !ct_eq(&expect, &grant.ticket) {
        return Err(AuthError::BadTicket);
    }
    Ok(SecureChannel::new(grant.session_key))
}

/// An authenticated message: payload, counter and truncated MAC.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthenticatedMessage {
    /// Application payload.
    pub payload: Vec<u8>,
    /// Monotonic counter for replay protection.
    pub counter: u64,
    /// Truncated HMAC over (counter ‖ payload).
    pub tag: [u8; TAG_LEN],
}

/// One direction of an authenticated session.
#[derive(Clone, Debug)]
pub struct SecureChannel {
    key: [u8; 32],
    send_counter: u64,
    recv_counter: u64,
}

impl SecureChannel {
    /// Creates a channel over an established session key.
    pub fn new(session_key: [u8; 32]) -> Self {
        SecureChannel {
            key: session_key,
            send_counter: 0,
            recv_counter: 0,
        }
    }

    /// Wraps a payload for sending.
    pub fn seal(&mut self, payload: &[u8]) -> AuthenticatedMessage {
        self.send_counter += 1;
        let tag = message_tag(&self.key, self.send_counter, payload);
        AuthenticatedMessage {
            payload: payload.to_vec(),
            counter: self.send_counter,
            tag,
        }
    }

    /// Verifies and unwraps a received message.
    ///
    /// # Errors
    ///
    /// [`AuthError::BadTag`] on MAC failure, [`AuthError::Replay`] on a
    /// stale counter.
    pub fn open(&mut self, msg: &AuthenticatedMessage) -> Result<Vec<u8>, AuthError> {
        let expect = message_tag(&self.key, msg.counter, &msg.payload);
        if !ct_eq(&expect, &msg.tag) {
            return Err(AuthError::BadTag);
        }
        if msg.counter <= self.recv_counter {
            return Err(AuthError::Replay {
                got: msg.counter,
                last: self.recv_counter,
            });
        }
        self.recv_counter = msg.counter;
        Ok(msg.payload.clone())
    }
}

fn message_tag(key: &[u8; 32], counter: u64, payload: &[u8]) -> [u8; TAG_LEN] {
    let mut msg = Vec::with_capacity(8 + payload.len());
    msg.extend_from_slice(&counter.to_be_bytes());
    msg.extend_from_slice(payload);
    let full = hmac_sha256(key, &msg);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&full[..TAG_LEN]);
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyServer, [u8; 32], AppId, ServiceId) {
        let mut ks = KeyServer::new();
        let client_key = [0x11; 32];
        let service_key = [0x22; 32];
        let client = AppId(4);
        let service = ServiceId(9);
        ks.enroll(Principal::Client(client), client_key);
        ks.enroll(Principal::Service(service), service_key);
        (ks, service_key, client, service)
    }

    #[test]
    fn full_handshake_and_messaging() {
        let (mut ks, service_key, client, service) = setup();
        let grant = ks.grant_session(client, service).unwrap();
        let mut service_chan =
            service_accept_ticket(&service_key, client, service, &grant).unwrap();
        let mut client_chan = SecureChannel::new(grant.session_key);

        let msg = client_chan.seal(b"set_target_speed 80");
        let opened = service_chan.open(&msg).unwrap();
        assert_eq!(opened, b"set_target_speed 80");
    }

    #[test]
    fn unknown_principals_are_refused() {
        let (mut ks, _, client, service) = setup();
        assert_eq!(
            ks.grant_session(AppId(99), service),
            Err(AuthError::UnknownPrincipal)
        );
        assert_eq!(
            ks.grant_session(client, ServiceId(99)),
            Err(AuthError::UnknownPrincipal)
        );
    }

    #[test]
    fn forged_ticket_is_rejected() {
        let (mut ks, service_key, client, service) = setup();
        let mut grant = ks.grant_session(client, service).unwrap();
        grant.ticket[0] ^= 1;
        assert!(matches!(
            service_accept_ticket(&service_key, client, service, &grant),
            Err(AuthError::BadTicket)
        ));
    }

    #[test]
    fn ticket_is_bound_to_client_identity() {
        let (mut ks, service_key, client, service) = setup();
        let grant = ks.grant_session(client, service).unwrap();
        // A different client presenting the stolen grant fails.
        assert!(matches!(
            service_accept_ticket(&service_key, AppId(77), service, &grant),
            Err(AuthError::BadTicket)
        ));
    }

    #[test]
    fn tampered_message_and_replay_are_rejected() {
        let (mut ks, service_key, client, service) = setup();
        let grant = ks.grant_session(client, service).unwrap();
        let mut rx = service_accept_ticket(&service_key, client, service, &grant).unwrap();
        let mut tx = SecureChannel::new(grant.session_key);

        let msg = tx.seal(b"brake");
        let mut tampered = msg.clone();
        tampered.payload = b"accel".to_vec();
        assert_eq!(rx.open(&tampered), Err(AuthError::BadTag));

        rx.open(&msg).unwrap();
        assert_eq!(rx.open(&msg), Err(AuthError::Replay { got: 1, last: 1 }));
    }

    #[test]
    fn sessions_have_unique_keys() {
        let (mut ks, _, client, service) = setup();
        let g1 = ks.grant_session(client, service).unwrap();
        let g2 = ks.grant_session(client, service).unwrap();
        assert_ne!(g1.session_key, g2.session_key);
        assert_ne!(g1.session_id, g2.session_id);
    }

    #[test]
    fn counters_increase_monotonically() {
        let mut chan = SecureChannel::new([9; 32]);
        let m1 = chan.seal(b"a");
        let m2 = chan.seal(b"b");
        assert_eq!(m1.counter, 1);
        assert_eq!(m2.counter, 2);
        // Receiving out of order counts the later one, then rejects the earlier.
        let mut rx = SecureChannel::new([9; 32]);
        rx.open(&m2).unwrap();
        assert!(matches!(rx.open(&m1), Err(AuthError::Replay { .. })));
    }
}
