//! SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104), implemented from
//! scratch and checked against the published test vectors.

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use dynplat_security::sha256::{sha256, Sha256};
///
/// let one_shot = sha256(b"abc");
/// let mut h = Sha256::new();
/// h.update(b"a");
/// h.update(b"bc");
/// assert_eq!(h.finalize(), one_shot);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Length block bypasses total_len accounting.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA256 per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time byte-slice equality (length leak only).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Lowercase hex rendering of a byte string (used by tests and benches).
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Derives a 32-byte subkey from `parent` with a context label — a
/// single-step HKDF-expand used throughout the security stack.
pub fn derive_key(parent: &[u8], label: &str) -> [u8; 32] {
    hmac_sha256(parent, label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot_at_odd_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn rfc4231_hmac_vectors() {
        // Test case 1.
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: key "Jefe".
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 3: 20x 0xaa key, 50x 0xdd message.
        let mac = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Test case 6: oversized key (131 bytes of 0xaa).
        let mac = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn derive_key_separates_contexts() {
        let parent = [7u8; 32];
        let a = derive_key(&parent, "session");
        let b = derive_key(&parent, "ticket");
        assert_ne!(a, b);
        assert_eq!(a, derive_key(&parent, "session"));
    }
}
