//! Signed update packages (§4.1 "Package Security").
//!
//! An [`UpdatePackage`] is the unit an OTA campaign ships: application id,
//! version, payload image and deployment metadata. A signing authority
//! wraps it into a [`SignedPackage`]; receivers verify against a
//! [`KeyRegistry`] of trusted authorities. The canonical byte encoding is
//! the signed surface — any bit flip in id, version, payload or metadata
//! invalidates the signature.

use crate::sign::{KeyPair, PublicKey, Signature};
use dynplat_common::codec::{ByteReader, ByteWriter, CodecError};
use dynplat_common::AppId;
use std::collections::BTreeMap;
use std::fmt;

/// A semantic application version.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Major version (breaking interface changes).
    pub major: u16,
    /// Minor version (compatible additions).
    pub minor: u16,
    /// Patch level.
    pub patch: u16,
}

impl Version {
    /// Creates a version.
    pub const fn new(major: u16, minor: u16, patch: u16) -> Self {
        Version {
            major,
            minor,
            patch,
        }
    }

    /// `true` if a consumer built against `required` can bind to this
    /// provider version (same major, at least the required minor).
    pub fn is_compatible_with(self, required: Version) -> bool {
        self.major == required.major && (self.minor, self.patch) >= (required.minor, required.patch)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// An unsigned update package.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdatePackage {
    /// Application being shipped.
    pub app: AppId,
    /// New version.
    pub version: Version,
    /// Monotonic release counter — receivers reject non-increasing values
    /// (replay/rollback protection).
    pub release_counter: u64,
    /// The binary image.
    pub payload: Vec<u8>,
    /// Free-form metadata (deployment constraints, changelog id, …).
    pub metadata: BTreeMap<String, String>,
}

impl UpdatePackage {
    /// Creates a package.
    pub fn new(app: AppId, version: Version, release_counter: u64, payload: Vec<u8>) -> Self {
        UpdatePackage {
            app,
            version,
            release_counter,
            payload,
            metadata: BTreeMap::new(),
        }
    }

    /// Adds a metadata entry (builder style).
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Canonical byte encoding — the exact surface that gets signed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + self.payload.len());
        w.put_u32(self.app.raw());
        w.put_u16(self.version.major);
        w.put_u16(self.version.minor);
        w.put_u16(self.version.patch);
        w.put_u64(self.release_counter);
        w.put_len_prefixed(&self.payload);
        w.put_u32(self.metadata.len() as u32);
        for (k, v) in &self.metadata {
            w.put_string(k);
            w.put_string(v);
        }
        w.into_vec()
    }

    /// Decodes the canonical encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let app = AppId(r.take_u32()?);
        let version = Version::new(r.take_u16()?, r.take_u16()?, r.take_u16()?);
        let release_counter = r.take_u64()?;
        let payload = r.take_len_prefixed(1 << 26)?.to_vec();
        let n = r.take_u32()? as usize;
        if n > 4096 {
            return Err(CodecError::LengthOutOfRange { len: n, max: 4096 });
        }
        let mut metadata = BTreeMap::new();
        for _ in 0..n {
            let k = r.take_string()?;
            let v = r.take_string()?;
            metadata.insert(k, v);
        }
        Ok(UpdatePackage {
            app,
            version,
            release_counter,
            payload,
            metadata,
        })
    }
}

/// Errors raised during package verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackageError {
    /// The signing key is not in the trust registry.
    UntrustedSigner([u8; 8]),
    /// The signature does not match the package bytes.
    BadSignature,
    /// The package decodes but its release counter does not advance.
    ReplayOrRollback {
        /// The counter in the package.
        got: u64,
        /// The last accepted counter.
        expected_above: u64,
    },
    /// The raw bytes are malformed.
    Malformed(CodecError),
}

impl fmt::Display for PackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackageError::UntrustedSigner(id) => write!(f, "untrusted signer {id:02x?}"),
            PackageError::BadSignature => write!(f, "signature verification failed"),
            PackageError::ReplayOrRollback {
                got,
                expected_above,
            } => {
                write!(f, "release counter {got} not above {expected_above}")
            }
            PackageError::Malformed(e) => write!(f, "malformed package: {e}"),
        }
    }
}

impl std::error::Error for PackageError {}

#[doc(hidden)]
impl From<CodecError> for PackageError {
    fn from(e: CodecError) -> Self {
        PackageError::Malformed(e)
    }
}

/// A package plus its authority signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedPackage {
    /// Canonical package bytes (the signed surface).
    pub package_bytes: Vec<u8>,
    /// Authority signature over `package_bytes`.
    pub signature: Signature,
    /// Key id of the signer, for registry lookup.
    pub signer: [u8; 8],
}

impl SignedPackage {
    /// Signs `package` with `authority`.
    pub fn create(package: &UpdatePackage, authority: &KeyPair) -> Self {
        let package_bytes = package.to_bytes();
        let signature = authority.sign(&package_bytes);
        SignedPackage {
            package_bytes,
            signature,
            signer: authority.public().key_id(),
        }
    }

    /// Verifies against `registry` and decodes the package.
    ///
    /// # Errors
    ///
    /// Returns [`PackageError::UntrustedSigner`], [`PackageError::BadSignature`]
    /// or [`PackageError::Malformed`].
    pub fn verify(&self, registry: &KeyRegistry) -> Result<UpdatePackage, PackageError> {
        let key = registry
            .lookup(self.signer)
            .ok_or(PackageError::UntrustedSigner(self.signer))?;
        if !key.verify(&self.package_bytes, &self.signature) {
            return Err(PackageError::BadSignature);
        }
        Ok(UpdatePackage::from_bytes(&self.package_bytes)?)
    }
}

/// Registry of trusted authority keys, with revocation.
#[derive(Clone, Debug, Default)]
pub struct KeyRegistry {
    keys: BTreeMap<[u8; 8], PublicKey>,
}

impl KeyRegistry {
    /// Creates an empty registry (nothing is trusted).
    pub fn new() -> Self {
        KeyRegistry::default()
    }

    /// Trusts `key`.
    pub fn trust(&mut self, key: PublicKey) {
        self.keys.insert(key.key_id(), key);
    }

    /// Revokes a key by id; returns whether it was present.
    pub fn revoke(&mut self, key_id: [u8; 8]) -> bool {
        self.keys.remove(&key_id).is_some()
    }

    /// Looks up a trusted key.
    pub fn lookup(&self, key_id: [u8; 8]) -> Option<&PublicKey> {
        self.keys.get(&key_id)
    }

    /// Number of trusted keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if nothing is trusted.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Receiver-side installation gate: verifies signature *and* enforces the
/// monotonic release counter per application.
#[derive(Clone, Debug, Default)]
pub struct InstallGate {
    last_counter: BTreeMap<AppId, u64>,
}

impl InstallGate {
    /// Creates a gate with no installation history.
    pub fn new() -> Self {
        InstallGate::default()
    }

    /// Verifies `signed` and, if acceptable, records its counter.
    ///
    /// # Errors
    ///
    /// All [`PackageError`] variants, including
    /// [`PackageError::ReplayOrRollback`] when the counter does not advance.
    pub fn accept(
        &mut self,
        signed: &SignedPackage,
        registry: &KeyRegistry,
    ) -> Result<UpdatePackage, PackageError> {
        let package = signed.verify(registry)?;
        let last = self.last_counter.get(&package.app).copied().unwrap_or(0);
        if package.release_counter <= last {
            return Err(PackageError::ReplayOrRollback {
                got: package.release_counter,
                expected_above: last,
            });
        }
        self.last_counter
            .insert(package.app, package.release_counter);
        Ok(package)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_package() -> UpdatePackage {
        UpdatePackage::new(AppId(7), Version::new(2, 1, 0), 42, vec![1, 2, 3, 4])
            .with_metadata("changelog", "CL-1138")
            .with_metadata("target", "zone-controller")
    }

    #[test]
    fn encoding_roundtrip() {
        let p = sample_package();
        let bytes = p.to_bytes();
        assert_eq!(UpdatePackage::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn truncated_encoding_is_malformed() {
        let bytes = sample_package().to_bytes();
        assert!(UpdatePackage::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn sign_and_verify() {
        let authority = KeyPair::from_seed(b"oem release authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let signed = SignedPackage::create(&sample_package(), &authority);
        let verified = signed.verify(&registry).unwrap();
        assert_eq!(verified, sample_package());
    }

    #[test]
    fn unsigned_authority_is_untrusted() {
        let rogue = KeyPair::from_seed(b"rogue");
        let registry = KeyRegistry::new();
        let signed = SignedPackage::create(&sample_package(), &rogue);
        assert_eq!(
            signed.verify(&registry),
            Err(PackageError::UntrustedSigner(rogue.public().key_id()))
        );
    }

    #[test]
    fn bit_flip_anywhere_breaks_signature() {
        let authority = KeyPair::from_seed(b"authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let signed = SignedPackage::create(&sample_package(), &authority);
        for pos in 0..signed.package_bytes.len() {
            let mut tampered = signed.clone();
            tampered.package_bytes[pos] ^= 0x01;
            assert!(
                matches!(
                    tampered.verify(&registry),
                    Err(PackageError::BadSignature) | Err(PackageError::Malformed(_))
                ),
                "bit flip at {pos} slipped through"
            );
        }
    }

    #[test]
    fn revoked_key_stops_verifying() {
        let authority = KeyPair::from_seed(b"authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let signed = SignedPackage::create(&sample_package(), &authority);
        assert!(signed.verify(&registry).is_ok());
        assert!(registry.revoke(authority.public().key_id()));
        assert!(matches!(
            signed.verify(&registry),
            Err(PackageError::UntrustedSigner(_))
        ));
        assert!(!registry.revoke(authority.public().key_id()));
    }

    #[test]
    fn install_gate_blocks_replay_and_rollback() {
        let authority = KeyPair::from_seed(b"authority");
        let mut registry = KeyRegistry::new();
        registry.trust(authority.public());
        let mut gate = InstallGate::new();

        let v1 = UpdatePackage::new(AppId(7), Version::new(1, 0, 0), 1, vec![1]);
        let v2 = UpdatePackage::new(AppId(7), Version::new(1, 1, 0), 2, vec![2]);
        let s1 = SignedPackage::create(&v1, &authority);
        let s2 = SignedPackage::create(&v2, &authority);

        gate.accept(&s1, &registry).unwrap();
        gate.accept(&s2, &registry).unwrap();
        // Replaying v2 or rolling back to v1 both fail.
        assert!(matches!(
            gate.accept(&s2, &registry),
            Err(PackageError::ReplayOrRollback {
                got: 2,
                expected_above: 2
            })
        ));
        assert!(matches!(
            gate.accept(&s1, &registry),
            Err(PackageError::ReplayOrRollback {
                got: 1,
                expected_above: 2
            })
        ));
        // Other apps are unaffected.
        let other = UpdatePackage::new(AppId(8), Version::new(1, 0, 0), 1, vec![1]);
        gate.accept(&SignedPackage::create(&other, &authority), &registry)
            .unwrap();
    }

    #[test]
    fn version_compatibility() {
        let v21 = Version::new(2, 1, 0);
        assert!(Version::new(2, 3, 0).is_compatible_with(v21));
        assert!(v21.is_compatible_with(v21));
        assert!(!Version::new(3, 0, 0).is_compatible_with(v21));
        assert!(!Version::new(2, 0, 9).is_compatible_with(v21));
        assert_eq!(v21.to_string(), "2.1.0");
    }
}
