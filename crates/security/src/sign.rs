//! Schnorr-style digital signatures over a small prime field.
//!
//! **Simulation stand-in.** The scheme is structurally a textbook Schnorr
//! signature — key generation, deterministic nonces (RFC 6979 style),
//! hash-based challenges, verification, tamper rejection — but instantiated
//! over the 61-bit Mersenne prime `p = 2^61 − 1`, which is far too small to
//! resist discrete-log attacks. It stands in for ECDSA/Ed25519 so that the
//! E8/E9 experiments exercise a *real* sign/verify protocol without pulling
//! cryptographic dependencies into the offline build (DESIGN.md §5).

use crate::sha256::{hmac_sha256, sha256};
use std::fmt;

/// The field prime `2^61 − 1` (Mersenne).
pub const P: u64 = (1 << 61) - 1;
/// Group order used for exponent arithmetic (`p − 1`).
pub const ORDER: u64 = P - 1;
/// A generator of a large subgroup of `Z_p^*`.
pub const G: u64 = 5;

fn mul_mod(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= P;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

fn reduce_order(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_be_bytes(raw) % ORDER
}

/// A public verification key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub u64);

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:016x})", self.0)
    }
}

impl PublicKey {
    /// A short stable identifier for key registries.
    pub fn key_id(&self) -> [u8; 8] {
        let digest = sha256(&self.0.to_be_bytes());
        let mut id = [0u8; 8];
        id.copy_from_slice(&digest[..8]);
        id
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        if signature.e >= ORDER || signature.s >= ORDER || self.0 == 0 {
            return false;
        }
        // r' = g^s * y^e mod p; accept iff H(r' || m) == e.
        let r = mul_mod(pow_mod(G, signature.s), pow_mod(self.0, signature.e));
        challenge(r, message) == signature.e
    }
}

/// A signature: challenge `e` and response `s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Hash challenge.
    pub e: u64,
    /// Schnorr response.
    pub s: u64,
}

impl Signature {
    /// Serializes to 16 bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses from 16 bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        let mut e = [0u8; 8];
        let mut s = [0u8; 8];
        e.copy_from_slice(&bytes[..8]);
        s.copy_from_slice(&bytes[8..]);
        Signature {
            e: u64::from_be_bytes(e),
            s: u64::from_be_bytes(s),
        }
    }
}

fn challenge(r: u64, message: &[u8]) -> u64 {
    let mut input = Vec::with_capacity(8 + message.len());
    input.extend_from_slice(&r.to_be_bytes());
    input.extend_from_slice(message);
    reduce_order(&sha256(&input))
}

/// A signing key pair.
#[derive(Clone)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

impl fmt::Debug for KeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "KeyPair(public: {:?})", self.public)
    }
}

impl KeyPair {
    /// Derives a key pair deterministically from seed material (in a real
    /// deployment: an HSM-held secret).
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut x = reduce_order(&sha256(seed));
        if x == 0 {
            x = 1;
        }
        let public = PublicKey(pow_mod(G, x));
        KeyPair { secret: x, public }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a deterministic (RFC 6979-style) nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        // k = HMAC(secret, message), never zero.
        let mut k = reduce_order(&hmac_sha256(&self.secret.to_be_bytes(), message));
        if k == 0 {
            k = 1;
        }
        let r = pow_mod(G, k);
        let e = challenge(r, message);
        // s = k - x*e mod (p-1).
        let xe = (self.secret as u128 * e as u128) % ORDER as u128;
        let s = ((k as u128 + ORDER as u128 - xe) % ORDER as u128) as u64;
        Signature { e, s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(b"oem root key 1");
        let msg = b"firmware image v2.4.1";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, &sig));
    }

    #[test]
    fn tampered_message_is_rejected() {
        let kp = KeyPair::from_seed(b"oem root key 1");
        let sig = kp.sign(b"install app 7");
        assert!(!kp.public().verify(b"install app 8", &sig));
    }

    #[test]
    fn tampered_signature_is_rejected() {
        let kp = KeyPair::from_seed(b"k");
        let msg = b"m";
        let sig = kp.sign(msg);
        let bad_e = Signature {
            e: sig.e ^ 1,
            s: sig.s,
        };
        let bad_s = Signature {
            e: sig.e,
            s: sig.s ^ 1,
        };
        assert!(!kp.public().verify(msg, &bad_e));
        assert!(!kp.public().verify(msg, &bad_s));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let a = KeyPair::from_seed(b"authority a");
        let b = KeyPair::from_seed(b"authority b");
        let sig = a.sign(b"payload");
        assert!(!b.public().verify(b"payload", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let kp = KeyPair::from_seed(b"seed");
        assert_eq!(kp.sign(b"x"), kp.sign(b"x"));
        assert_ne!(kp.sign(b"x"), kp.sign(b"y"));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let kp = KeyPair::from_seed(b"seed");
        let sig = kp.sign(b"data");
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), sig);
    }

    #[test]
    fn out_of_range_signature_fields_rejected() {
        let kp = KeyPair::from_seed(b"seed");
        assert!(!kp.public().verify(b"m", &Signature { e: ORDER, s: 0 }));
        assert!(!kp.public().verify(b"m", &Signature { e: 0, s: ORDER }));
    }

    #[test]
    fn key_ids_differ_per_key() {
        let a = KeyPair::from_seed(b"a").public();
        let b = KeyPair::from_seed(b"b").public();
        assert_ne!(a.key_id(), b.key_id());
    }

    #[test]
    fn debug_never_leaks_secret() {
        let kp = KeyPair::from_seed(b"super secret");
        let s = format!("{kp:?}");
        assert!(s.contains("public"));
        assert!(!s.contains(&format!("{:x}", kp.secret)));
    }

    #[test]
    fn field_arithmetic_sanity() {
        assert_eq!(pow_mod(G, 0), 1);
        assert_eq!(pow_mod(G, 1), G);
        // Fermat: g^(p-1) = 1 mod p.
        assert_eq!(pow_mod(G, P - 1), 1);
        assert_eq!(mul_mod(P - 1, P - 1), 1); // (-1)^2 = 1
    }
}
