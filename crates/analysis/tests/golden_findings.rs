//! Golden-findings suite: every fixture under `tests/fixtures/` trips
//! exactly the `(rule, line)` pairs recorded here — no more, no fewer —
//! and the allowlist machinery suppresses or flags them as specified.
//!
//! The fixtures are plain `.rs` files that are never compiled (they are
//! not cargo targets, and `workspace::discover` skips directories named
//! `fixtures`), so they can violate every invariant at once.

use std::path::{Path, PathBuf};

use dynplat_analysis::lints::{
    lint_source, FileClass, SourceFile, RULE_FORBID_UNSAFE, RULE_NO_HASH_COLLECTIONS,
    RULE_NO_SNAPSHOT_HOT_PATH, RULE_NO_UNWRAP, RULE_NO_WALL_CLOCK, RULE_RELAXED_JUSTIFY,
};
use dynplat_analysis::workspace::{run, DiscoveredFile};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture as library code of `crate_name`, returning sorted
/// `(rule, line)` pairs.
fn lint_fixture(name: &str, crate_name: &str, is_root: bool) -> Vec<(&'static str, u32)> {
    let source = std::fs::read_to_string(fixture_path(name)).unwrap();
    let file = SourceFile {
        path: format!("crates/{crate_name}/src/{name}"),
        crate_name: crate_name.into(),
        class: FileClass::Lib,
        is_root,
    };
    let mut got: Vec<(&'static str, u32)> = lint_source(&file, &source)
        .iter()
        .map(|f| (f.rule, f.line))
        .collect();
    got.sort();
    got
}

#[test]
fn unsafe_fixture_trips_token_and_missing_root_attribute() {
    assert_eq!(
        lint_fixture("unsafe_and_root.rs", "comm", true),
        [(RULE_FORBID_UNSAFE, 4), (RULE_FORBID_UNSAFE, 5)],
        "line 4 = first code line missing the attribute, line 5 = `unsafe` token"
    );
}

#[test]
fn unwrap_fixture_trips_only_outside_cfg_test() {
    assert_eq!(
        lint_fixture("unwrap_panic.rs", "comm", false),
        [(RULE_NO_UNWRAP, 7), (RULE_NO_UNWRAP, 9)],
        "the `#[cfg(test)]` copies on lines 18-19 must not fire"
    );
}

#[test]
fn wall_clock_fixture_trips_in_determinism_critical_crate() {
    assert_eq!(
        lint_fixture("wall_clock.rs", "sim", false),
        [(RULE_NO_WALL_CLOCK, 5), (RULE_NO_WALL_CLOCK, 8)]
    );
    // The same source in a non-critical crate is clean.
    assert_eq!(lint_fixture("wall_clock.rs", "obs", false), []);
}

#[test]
fn hash_map_fixture_trips_in_canonical_merge_crate() {
    assert_eq!(
        lint_fixture("hash_map.rs", "fleet", false),
        [
            (RULE_NO_HASH_COLLECTIONS, 5),
            (RULE_NO_HASH_COLLECTIONS, 8),
            (RULE_NO_HASH_COLLECTIONS, 8)
        ],
        "import line plus both mentions on the declaration line"
    );
    assert_eq!(lint_fixture("hash_map.rs", "obs", false), []);
}

#[test]
fn relaxed_fixture_trips_only_the_unjustified_site() {
    assert_eq!(
        lint_fixture("relaxed_bare.rs", "comm", false),
        [(RULE_RELAXED_JUSTIFY, 9)],
        "the annotated load on line 14 is clean; the doc-comment mention \
         of the keyword is out of reach of line 9"
    );
}

#[test]
fn snapshot_fixture_trips_in_hot_path_crates_only() {
    for crate_name in ["comm", "sched", "fleet"] {
        assert_eq!(
            lint_fixture("snapshot_hot_path.rs", crate_name, false),
            [
                (RULE_NO_SNAPSHOT_HOT_PATH, 7),
                (RULE_NO_SNAPSHOT_HOT_PATH, 11)
            ],
            "{crate_name}: both library-code snapshots fire, the cfg(test) copy on line 17 does not"
        );
    }
    // Cold crates (bench reduces, obs implements the snapshot) are exempt.
    assert_eq!(lint_fixture("snapshot_hot_path.rs", "bench", false), []);
    assert_eq!(lint_fixture("snapshot_hot_path.rs", "obs", false), []);
}

/// The new rule id participates in allowlist validation like the rest.
#[test]
fn snapshot_rule_is_allowlistable() {
    let files = [DiscoveredFile {
        meta: SourceFile {
            path: "crates/comm/src/snapshot_hot_path.rs".into(),
            crate_name: "comm".into(),
            class: FileClass::Lib,
            is_root: false,
        },
        abs_path: fixture_path("snapshot_hot_path.rs"),
    }];
    let allow = "no-snapshot-in-hot-path crates/comm/src/snapshot_hot_path.rs fixture: cold reporting edge\n";
    let report = run(&files, Some(allow)).unwrap();
    assert!(report.clean(), "active findings: {:?}", report.active);
    assert_eq!(report.suppressed.len(), 2, "both sites share the entry");
}

/// One fixture run through the full `workspace::run` pipeline with an
/// allowlist: the matching entry suppresses, a dead entry goes stale.
#[test]
fn allowlist_suppresses_live_findings_and_flags_stale_entries() {
    let files = [DiscoveredFile {
        meta: SourceFile {
            path: "crates/comm/src/relaxed_bare.rs".into(),
            crate_name: "comm".into(),
            class: FileClass::Lib,
            is_root: false,
        },
        abs_path: fixture_path("relaxed_bare.rs"),
    }];

    let live =
        "relaxed-justify crates/comm/src/relaxed_bare.rs fixture: reach is exercised elsewhere\n";
    let report = run(&files, Some(live)).unwrap();
    assert!(report.clean(), "active findings: {:?}", report.active);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.files_scanned, 1);

    let stale = "no-unwrap crates/comm/src/other.rs this entry matches nothing\n";
    let report = run(&files, Some(stale)).unwrap();
    assert!(!report.clean());
    let mut rules: Vec<&str> = report.active.iter().map(|f| f.rule).collect();
    rules.sort();
    assert_eq!(rules, ["relaxed-justify", "stale-allow"]);
}
