//! Model-checker regression suite for the fabric's lock-free protocols.
//!
//! Each test explores *every* interleaving of a two-thread protocol model
//! (within the default preemption bound) under the checker's C11-style
//! view semantics. The `correct` variants are the protocols the real code
//! in `crates/comm/src/ring.rs` and `crates/obs/src/metrics.rs` uses; the
//! `broken_*` variants re-inject ordering bugs (publishing `tail` with
//! `Relaxed`, storing lanes after the publish, flushing stripe flags
//! without `Release`) and must be caught with a concrete schedule trace.

use dynplat_analysis::mc::spsc::{SpscModel, StripeModel};
use dynplat_analysis::mc::{explore, Config};

#[test]
fn spsc_publish_protocol_is_safe_and_state_space_is_exhausted() {
    for pushes in 1..=3 {
        let ex = explore(SpscModel::correct(pushes), &Config::default());
        assert!(
            ex.complete,
            "state space must be exhausted (pushes={pushes})"
        );
        assert!(
            ex.terminal > 0,
            "no terminal state reached (pushes={pushes})"
        );
        assert!(
            ex.violation.is_none(),
            "SPSC protocol violated at pushes={pushes}: {:?}",
            ex.violation
        );
    }
}

#[test]
fn spsc_exploration_covers_nontrivial_interleaving_count() {
    // Guard against the scheduler silently degenerating to one schedule:
    // three pushes through a capacity-2 ring interleave in hundreds of
    // distinct states.
    let ex = explore(SpscModel::correct(3), &Config::default());
    assert!(ex.complete);
    assert!(
        ex.states > 100,
        "suspiciously small exploration: {} states",
        ex.states
    );
}

#[test]
fn relaxed_tail_publish_is_caught_with_a_trace() {
    let ex = explore(SpscModel::broken_relaxed_tail(2), &Config::default());
    let v = ex
        .violation
        .expect("publishing `tail` with Relaxed must produce a stale lane read");
    assert!(
        v.message.contains("stale lane read"),
        "unexpected violation: {}",
        v.message
    );
    assert!(!v.trace.is_empty(), "violation must carry its schedule");
}

#[test]
fn lane_stores_after_tail_publish_are_caught() {
    let ex = explore(SpscModel::broken_lanes_after_tail(2), &Config::default());
    let v = ex
        .violation
        .expect("storing lanes after the tail publish must be caught");
    assert!(
        v.message.contains("stale lane read"),
        "unexpected violation: {}",
        v.message
    );
}

#[test]
fn stripe_flush_protocol_is_safe_and_exhausted() {
    let ex = explore(StripeModel::correct(), &Config::default());
    assert!(ex.complete);
    assert!(
        ex.violation.is_none(),
        "stripe flush violated: {:?}",
        ex.violation
    );
}

#[test]
fn relaxed_stripe_flag_loses_counts() {
    let ex = explore(StripeModel::broken_relaxed_flag(), &Config::default());
    let v = ex
        .violation
        .expect("flushing the stripe flag with Relaxed must lose counts");
    assert!(
        v.message.contains("lost counts"),
        "unexpected violation: {}",
        v.message
    );
}
