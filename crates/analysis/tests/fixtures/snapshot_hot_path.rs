//! Fixture: trips `no-snapshot-in-hot-path` in a hot-path crate — one
//! registry snapshot and one per-metric snapshot in library code; the
//! `#[cfg(test)]` copy must not fire.
#![forbid(unsafe_code)]

pub fn per_delivery(registry: &MetricsRegistry) -> usize {
    registry.snapshot().counters.len()
}

pub fn per_dispatch(hist: &Histogram) -> u64 {
    hist.snapshot().count
}

#[cfg(test)]
mod tests {
    pub fn reporting_edge(registry: &MetricsRegistry) -> usize {
        registry.snapshot().counters.len()
    }
}
