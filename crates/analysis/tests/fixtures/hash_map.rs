//! Fixture: trips `no-hash-collections` in a canonical-merge crate —
//! import plus two uses on the declaration line.
#![forbid(unsafe_code)]

use std::collections::HashMap;

pub fn tally(keys: &[u32]) -> usize {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for k in keys {
        *seen.entry(*k).or_insert(0) += 1;
    }
    seen.len()
}
