//! Fixture: trips `relaxed-justify` once — the annotated site below it
//! must stay clean, and a mention of relaxed: in this doc comment must
//! not justify anything further down.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(c: &AtomicU64) -> u64 {
    // relaxed: single-owner counter, read back on the owning thread.
    c.load(Ordering::Relaxed)
}
