//! Fixture: trips `no-wall-clock` in a determinism-critical crate — one
//! finding for the import, one for the call site.
#![forbid(unsafe_code)]

use std::time::Instant;

pub fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}
