//! Fixture: trips `no-unwrap` twice in library code (an `.unwrap()` call
//! and a bare `panic!`); the copies inside `#[cfg(test)]` must stay
//! invisible to the lint.
#![forbid(unsafe_code)]

pub fn first(v: &[u8]) -> u8 {
    let head = v.first().unwrap();
    if *head == 0 {
        panic!("zero");
    }
    *head
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_and_panic_are_fine_in_tests() {
        Some(1u8).unwrap();
        panic!("tests may panic");
    }
}
