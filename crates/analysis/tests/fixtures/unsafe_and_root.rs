//! Fixture: trips `forbid-unsafe` twice — an `unsafe` token in the body
//! and a crate root missing `#![forbid(unsafe_code)]`.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
