#![forbid(unsafe_code)]
//! `dynplat-analysis` — the workspace invariant linter.
//!
//! ```text
//! dynplat-analysis --workspace [--root DIR] [--report FILE.json]
//! ```
//!
//! Scans every Rust target in the workspace, applies the checked-in
//! `analysis-allow.list`, prints findings, optionally writes the
//! `dynplat.analysis.v1` JSON report, and exits nonzero when any active
//! finding remains. `scripts/ci.sh` runs this as a gating step.

use std::path::PathBuf;
use std::process::ExitCode;

use dynplat_analysis::workspace;

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut report = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the only scan mode; accepted for CI-line
            // readability.
            "--workspace" => {}
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--report" => {
                report = Some(PathBuf::from(args.next().ok_or("--report needs a path")?));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dynplat-analysis --workspace [--root DIR] [--report FILE.json]"
                        .to_owned(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Args { root, report })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match workspace::run_root(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dynplat-analysis: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!(
                "dynplat-analysis: cannot write report {}: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
