//! Workspace discovery and the end-to-end lint run.
//!
//! Walks the repository the same way `cargo` sees it — `crates/*/src`,
//! `crates/*/tests`, `crates/*/benches`, plus the root facade crate's
//! `src/`, `tests/` and `examples/` — classifies every `.rs` file
//! ([`crate::lints::FileClass`]), and runs the lint pass with the checked-in
//! allowlist applied. Directories named `fixtures` are skipped: they hold
//! deliberately-violating sources for the linter's own golden tests.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allowlist::Allowlist;
use crate::lints::{lint_source, FileClass, Finding, SourceFile};
use crate::report::Report;

/// Name of the checked-in allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "analysis-allow.list";

/// One discovered file: lint metadata plus its on-disk location.
#[derive(Clone, Debug)]
pub struct DiscoveredFile {
    pub meta: SourceFile,
    pub abs_path: PathBuf,
}

/// Discovers every lintable `.rs` file under `root`, deterministically
/// ordered by workspace-relative path.
pub fn discover(root: &Path) -> io::Result<Vec<DiscoveredFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for krate in sorted_dir(&crates)? {
            if !krate.is_dir() {
                continue;
            }
            let name = file_name(&krate);
            for sub in ["src", "tests", "benches"] {
                collect(&krate.join(sub), root, &name, &mut files)?;
            }
        }
    }
    // The root facade crate (`dynplat`) and its test/example targets.
    for sub in ["src", "tests", "examples"] {
        collect(&root.join(sub), root, "dynplat", &mut files)?;
    }
    files.sort_by(|a, b| a.meta.path.cmp(&b.meta.path));
    Ok(files)
}

/// Runs the full lint pass over `files`, applying the allowlist text (if
/// any) and reporting scan statistics.
pub fn run(files: &[DiscoveredFile], allowlist_text: Option<&str>) -> io::Result<Report> {
    let mut findings: Vec<Finding> = Vec::new();
    for file in files {
        let source = fs::read_to_string(&file.abs_path)?;
        findings.extend(lint_source(&file.meta, &source));
    }
    let (active, suppressed) = match allowlist_text {
        Some(text) => {
            let (allow, mut errs) = Allowlist::parse(text, ALLOWLIST_FILE);
            let (mut active, suppressed) = allow.apply(findings, ALLOWLIST_FILE);
            errs.append(&mut active);
            (errs, suppressed)
        }
        None => (findings, Vec::new()),
    };
    Ok(Report {
        active,
        suppressed,
        files_scanned: files.len(),
    })
}

/// Discover + read allowlist + lint, rooted at a workspace checkout.
pub fn run_root(root: &Path) -> io::Result<Report> {
    let files = discover(root)?;
    let allow_path = root.join(ALLOWLIST_FILE);
    let allow_text = match fs::read_to_string(&allow_path) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    run(&files, allow_text.as_deref())
}

/// Classifies one path (workspace-relative, `/`-separated) the way the
/// lint scopes expect. Exposed for the CLI's explicit-file mode and the
/// fixture tests.
pub fn classify(rel_path: &str, crate_name: &str) -> SourceFile {
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs");
    let test_like = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| rel_path.contains(d));
    let class = if test_like {
        FileClass::TestLike
    } else if is_bin {
        FileClass::Bin
    } else {
        FileClass::Lib
    };
    // Crate roots that must carry `#![forbid(unsafe_code)]`: every
    // library root and every binary root (each `src/bin/*.rs` is its own
    // crate root as far as lint attributes go).
    let is_root = rel_path.ends_with("/src/lib.rs") || is_bin;
    SourceFile {
        path: rel_path.to_owned(),
        crate_name: crate_name.to_owned(),
        class,
        is_root,
    }
}

fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<DiscoveredFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            if file_name(&entry) == "fixtures" {
                continue; // deliberately-violating lint-test inputs
            }
            collect(&entry, root, crate_name, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            // `classify` keys off `/`-separated interior markers; ensure a
            // leading component so root-level `src/lib.rs` still matches.
            let keyed = format!("/{rel}");
            let mut meta = classify(&keyed, crate_name);
            meta.path = rel;
            out.push(DiscoveredFile {
                meta,
                abs_path: entry,
            });
        }
    }
    Ok(())
}

fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_target_kind() {
        let lib = classify("/crates/comm/src/ring.rs", "comm");
        assert_eq!(lib.class, FileClass::Lib);
        assert!(!lib.is_root);

        let root = classify("/crates/comm/src/lib.rs", "comm");
        assert!(root.is_root);
        assert_eq!(root.class, FileClass::Lib);

        let bin = classify("/crates/bench/src/bin/bench.rs", "bench");
        assert_eq!(bin.class, FileClass::Bin);
        assert!(bin.is_root);

        let test = classify("/crates/obs/tests/concurrency.rs", "obs");
        assert_eq!(test.class, FileClass::TestLike);
        assert!(!test.is_root);

        let example = classify("/examples/platoon.rs", "dynplat");
        assert_eq!(example.class, FileClass::TestLike);

        let facade = classify("/src/lib.rs", "dynplat");
        assert!(facade.is_root);
        assert_eq!(facade.class, FileClass::Lib);
    }
}
