//! Virtual-atomics models of the fabric's two lock-free protocols.
//!
//! [`SpscModel`] mirrors `dynplat_comm::ring::SpscRing`'s three-lane
//! publish protocol *operation for operation*: the producer writes the
//! `time`/`seq`/`slot` lanes with `Relaxed` stores and publishes with a
//! store of `tail`; the consumer loads `tail`, reads the lanes `Relaxed`,
//! and retires the slot with a store of `head`. The model is parameterized
//! over the orderings and the publish order, so the checker can prove the
//! shipped protocol safe under every explored interleaving **and** catch
//! the two seeded bugs the regression suite re-injects: `tail` published
//! `Relaxed`, and lanes written after `tail`.
//!
//! [`StripeModel`] mirrors the thread-striped metrics flush
//! (`dynplat_obs::metrics::Counter` cells + the snapshot sum): writers
//! bump their own cells `Relaxed` and announce completion through a flag;
//! the reader acquires the flags then sums the cells with `Relaxed` loads.
//! The model shows the `Relaxed` cell operations are sound *because* the
//! completion handshake is `Release`/`Acquire` — and catches the lost
//! counts when the handshake is weakened.

use super::{MemOrd, Model, Op};

/// Ring capacity of the modeled [`SpscModel`]: two slots, so three pushes
/// exercise index wrap-around and slot reuse.
pub const MODEL_CAP: u64 = 2;

const HEAD: usize = 0;
const TAIL: usize = 1;
/// Lane base offsets: location of lane `l` for slot `s` is `2 + l*CAP + s`.
const LANES: usize = 3;

fn lane_loc(lane: usize, slot: u64) -> usize {
    2 + lane * MODEL_CAP as usize + slot as usize
}

/// Expected lane values for entry `k` (distinct per lane so torn reads —
/// a mix of entries across lanes — are also caught).
fn lane_val(lane: usize, k: u64) -> u64 {
    match lane {
        0 => 100 + k, // time
        1 => k,       // seq
        _ => 10 + k,  // slot
    }
}

/// Producer program counter phases (per push): capacity check, the three
/// lane stores, the tail publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ProdPc {
    CheckHead,
    WriteLane(u8),
    PublishTail,
    Done,
}

/// Consumer phases (per pop): tail poll, the three lane loads, the head
/// retire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ConsPc {
    PollTail,
    ReadLane(u8),
    RetireHead,
    Done,
}

/// The modeled SPSC ring; see module docs. `threads()` is 2: thread 0 is
/// the producer, thread 1 the consumer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpscModel {
    /// Entries to push (3 wraps a 2-slot ring).
    pushes: u64,
    /// Ordering of the producer's `tail` publish (`Release` when correct).
    tail_order: MemOrd,
    /// Ordering of the consumer's `head` retire store.
    head_order: MemOrd,
    /// When false, the producer publishes `tail` *before* writing the
    /// lanes — the program-order seeded bug.
    lanes_before_tail: bool,
    prod_pc: ProdPc,
    /// Entries fully pushed.
    pushed: u64,
    cons_pc: ConsPc,
    /// Entries fully popped.
    popped: u64,
    /// Lanes read so far for the in-flight pop.
    read: [u64; LANES],
}

impl SpscModel {
    /// The protocol as shipped in `crates/comm/src/ring.rs`.
    pub fn correct(pushes: u64) -> Self {
        SpscModel::with_orders(pushes, MemOrd::Release, MemOrd::Release, true)
    }

    /// Seeded bug #1: `tail` published with `Relaxed` — the consumer can
    /// observe the new `tail` while the lane stores are still invisible.
    pub fn broken_relaxed_tail(pushes: u64) -> Self {
        SpscModel::with_orders(pushes, MemOrd::Relaxed, MemOrd::Release, true)
    }

    /// Seeded bug #2: lanes written *after* the `tail` publish — correct
    /// orderings cannot save a wrong program order.
    pub fn broken_lanes_after_tail(pushes: u64) -> Self {
        SpscModel::with_orders(pushes, MemOrd::Release, MemOrd::Release, false)
    }

    fn with_orders(
        pushes: u64,
        tail_order: MemOrd,
        head_order: MemOrd,
        lanes_before_tail: bool,
    ) -> Self {
        SpscModel {
            pushes,
            tail_order,
            head_order,
            lanes_before_tail,
            prod_pc: ProdPc::CheckHead,
            pushed: 0,
            cons_pc: ConsPc::PollTail,
            popped: 0,
            read: [0; LANES],
        }
    }

    fn slot_of(&self, k: u64) -> u64 {
        k % MODEL_CAP
    }
}

impl Model for SpscModel {
    fn threads(&self) -> usize {
        2
    }

    fn locations(&self) -> usize {
        2 + LANES * MODEL_CAP as usize
    }

    fn next_op(&self, tid: usize) -> Option<Op> {
        if tid == 0 {
            // Producer. Its own `tail` cursor lives in a local (`pushed`);
            // only `head` is read, matching the real `try_push`.
            let k = self.pushed;
            match self.prod_pc {
                ProdPc::CheckHead => Some(Op::Load(HEAD, MemOrd::Acquire)),
                ProdPc::WriteLane(l) => Some(Op::Store(
                    lane_loc(l as usize, self.slot_of(k)),
                    lane_val(l as usize, k),
                    MemOrd::Relaxed,
                )),
                ProdPc::PublishTail => Some(Op::Store(TAIL, k + 1, self.tail_order)),
                ProdPc::Done => None,
            }
        } else {
            // Consumer.
            let j = self.popped;
            match self.cons_pc {
                ConsPc::PollTail => Some(Op::Load(TAIL, MemOrd::Acquire)),
                ConsPc::ReadLane(l) => Some(Op::Load(
                    lane_loc(l as usize, self.slot_of(j)),
                    MemOrd::Relaxed,
                )),
                ConsPc::RetireHead => Some(Op::Store(HEAD, j + 1, self.head_order)),
                ConsPc::Done => None,
            }
        }
    }

    fn apply(&mut self, tid: usize, value: u64) -> Result<(), String> {
        if tid == 0 {
            match self.prod_pc {
                ProdPc::CheckHead => {
                    // `value` is the observed head; full means retry the
                    // load (a stale head can only under-report free slots,
                    // which is the conservative spill direction).
                    if self.pushed - value < MODEL_CAP {
                        self.prod_pc = if self.lanes_before_tail {
                            ProdPc::WriteLane(0)
                        } else {
                            ProdPc::PublishTail
                        };
                    }
                }
                ProdPc::WriteLane(l) if (l as usize) < LANES - 1 => {
                    self.prod_pc = ProdPc::WriteLane(l + 1);
                }
                ProdPc::WriteLane(_) => {
                    self.prod_pc = if self.lanes_before_tail {
                        ProdPc::PublishTail
                    } else {
                        self.finish_push()
                    };
                }
                ProdPc::PublishTail => {
                    self.prod_pc = if self.lanes_before_tail {
                        self.finish_push()
                    } else {
                        ProdPc::WriteLane(0)
                    };
                }
                ProdPc::Done => unreachable!("producer is finished"),
            }
            Ok(())
        } else {
            match self.cons_pc {
                ConsPc::PollTail => {
                    // Empty (or stale-tail) observation: poll again.
                    if value > self.popped {
                        self.cons_pc = ConsPc::ReadLane(0);
                    }
                    Ok(())
                }
                ConsPc::ReadLane(l) => {
                    self.read[l as usize] = value;
                    let expect = lane_val(l as usize, self.popped);
                    if value != expect {
                        return Err(format!(
                            "stale lane read: pop #{} lane {} returned {} (expected {})",
                            self.popped, l, value, expect
                        ));
                    }
                    self.cons_pc = if (l as usize) < LANES - 1 {
                        ConsPc::ReadLane(l + 1)
                    } else {
                        ConsPc::RetireHead
                    };
                    Ok(())
                }
                ConsPc::RetireHead => {
                    self.popped += 1;
                    self.cons_pc = if self.popped == self.pushes {
                        ConsPc::Done
                    } else {
                        ConsPc::PollTail
                    };
                    Ok(())
                }
                ConsPc::Done => unreachable!("consumer is finished"),
            }
        }
    }

    fn check_final(&self) -> Result<(), String> {
        // FIFO order and per-entry integrity are asserted inline at every
        // lane read; the terminal claim is conservation.
        if self.pushed != self.pushes || self.popped != self.pushes {
            return Err(format!(
                "conservation: pushed {} / popped {} of {}",
                self.pushed, self.popped, self.pushes
            ));
        }
        Ok(())
    }
}

impl SpscModel {
    fn finish_push(&mut self) -> ProdPc {
        self.pushed += 1;
        if self.pushed == self.pushes {
            ProdPc::Done
        } else {
            ProdPc::CheckHead
        }
    }
}

/// Number of increments each modeled writer performs.
pub const STRIPE_INCS: u64 = 2;

const CELL0: usize = 0;
const CELL1: usize = 1;
const FLAG0: usize = 2;
const FLAG1: usize = 3;

/// The thread-striped counter flush: writers 0 and 1 bump their own cells
/// with `Relaxed` RMWs, then announce completion; the reader (thread 2)
/// waits on both flags and sums both cells with `Relaxed` loads.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StripeModel {
    /// Ordering of the writers' completion-flag stores (`Release` models
    /// the real thread-join handshake).
    flag_order: MemOrd,
    /// Per-writer increments performed (pc while < [`STRIPE_INCS`]).
    incs: [u64; 2],
    flagged: [bool; 2],
    /// Reader pc: 0/1 wait on flags, 2/3 read cells, 4 done.
    reader_pc: u8,
    sum: u64,
}

impl StripeModel {
    /// The handshake as the real snapshot path has it.
    pub fn correct() -> Self {
        StripeModel::with_flag_order(MemOrd::Release)
    }

    /// Seeded bug: completion announced `Relaxed`, so the reader's sum
    /// may miss increments.
    pub fn broken_relaxed_flag() -> Self {
        StripeModel::with_flag_order(MemOrd::Relaxed)
    }

    fn with_flag_order(flag_order: MemOrd) -> Self {
        StripeModel {
            flag_order,
            incs: [0, 0],
            flagged: [false, false],
            reader_pc: 0,
            sum: 0,
        }
    }
}

impl Model for StripeModel {
    fn threads(&self) -> usize {
        3
    }

    fn locations(&self) -> usize {
        4
    }

    fn next_op(&self, tid: usize) -> Option<Op> {
        match tid {
            0 | 1 => {
                let cell = if tid == 0 { CELL0 } else { CELL1 };
                let flag = if tid == 0 { FLAG0 } else { FLAG1 };
                if self.incs[tid] < STRIPE_INCS {
                    Some(Op::FetchAdd(cell, 1, MemOrd::Relaxed))
                } else if !self.flagged[tid] {
                    Some(Op::Store(flag, 1, self.flag_order))
                } else {
                    None
                }
            }
            _ => match self.reader_pc {
                0 => Some(Op::Load(FLAG0, MemOrd::Acquire)),
                1 => Some(Op::Load(FLAG1, MemOrd::Acquire)),
                2 => Some(Op::Load(CELL0, MemOrd::Relaxed)),
                3 => Some(Op::Load(CELL1, MemOrd::Relaxed)),
                _ => None,
            },
        }
    }

    fn apply(&mut self, tid: usize, value: u64) -> Result<(), String> {
        match tid {
            0 | 1 => {
                if self.incs[tid] < STRIPE_INCS {
                    self.incs[tid] += 1;
                } else {
                    self.flagged[tid] = true;
                }
                Ok(())
            }
            _ => {
                match self.reader_pc {
                    0 | 1 => {
                        // Spin until the writer's flag is visible.
                        if value == 1 {
                            self.reader_pc += 1;
                        }
                        Ok(())
                    }
                    _ => {
                        self.sum += value;
                        self.reader_pc += 1;
                        if self.reader_pc == 4 && self.sum != 2 * STRIPE_INCS {
                            return Err(format!(
                                "lost counts: snapshot sum {} != {}",
                                self.sum,
                                2 * STRIPE_INCS
                            ));
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}
