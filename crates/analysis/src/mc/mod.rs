//! A miniature schedule-exploration model checker (a "mini-loom").
//!
//! The lock-free fabric's correctness rests on an ordering argument prose
//! alone carries (`crates/comm/src/ring.rs` top docs): the producer's
//! `Release` store of `tail` is what makes the consumer's `Relaxed` lane
//! loads safe. This module turns that argument into an exhaustive check:
//! modeled threads run against **virtual atomics** with a weak-memory
//! semantics, and a DFS scheduler explores every interleaving *and* every
//! stale read the memory model permits, within a preemption bound.
//!
//! # Memory model
//!
//! The semantics is the standard operational *view* model for C11
//! release/acquire/relaxed atomics (the same family loom implements):
//!
//! * each location keeps its full **modification order** — a list of
//!   timestamped stores, each carrying a *message view*;
//! * each thread holds a **view**: per location, the oldest timestamp it
//!   is allowed to read;
//! * a store appends to the modification order; a `Release` store attaches
//!   the thread's entire current view to the message, a `Relaxed` store
//!   attaches only its own new timestamp;
//! * a load may read **any** store no older than the thread's view — this
//!   choice is a scheduler branch point, which is exactly how stale reads
//!   are explored. An `Acquire` load joins the message view into the
//!   thread's view; a `Relaxed` load only advances the view of the loaded
//!   location (read-read coherence);
//! * an RMW reads the newest store (atomicity) and appends.
//!
//! Reading *from the future* is impossible by construction (a store that
//! has not executed yet is not in the modification order), so the model
//! soundly rejects only behaviors real hardware forbids, while permitting
//! every stale read `Relaxed` allows. Publishing `tail` with `Relaxed`
//! therefore lets the modeled consumer observe the new `tail` but stale
//! lanes — the seeded-bug regression in `tests/model_check.rs`.
//!
//! # Scheduler
//!
//! Depth-first search over `(thread to run, store to read)` choices with
//! three bounds: a **preemption bound** (switching away from a thread
//! that could still run costs one preemption; running a thread to its
//! next blocking point is free — the classic context-bounding result that
//! most concurrency bugs need very few preemptions), a **visited-state
//! set** (spin loops — a consumer polling an empty ring — revisit states
//! and are pruned instead of diverging), and a **state-count cap** that
//! marks the exploration incomplete rather than running away.

pub mod spsc;

use std::collections::HashSet;

/// Memory orderings the virtual atomics understand. `SeqCst` is
/// deliberately absent: the fabric's protocols use only these three, and
/// the linter keeps it that way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
}

impl MemOrd {
    fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel)
    }
    fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel)
    }
}

/// One virtual atomic operation on location `loc` (a model-defined index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load the location; the read value is passed to [`Model::apply`].
    Load(usize, MemOrd),
    /// Store the value; `apply` receives the stored value.
    Store(usize, u64, MemOrd),
    /// Atomic fetch-add; `apply` receives the value *read* (pre-add).
    FetchAdd(usize, u64, MemOrd),
}

/// A system under check: a fixed set of threads, each an explicit state
/// machine that alternates `next_op` (what would I do next?) with `apply`
/// (here is what the memory returned; advance and assert).
///
/// Models are plain data (`Clone + Hash + Eq`) so the explorer can fork
/// and deduplicate world states freely.
pub trait Model: Clone + std::hash::Hash + Eq {
    /// Number of modeled threads.
    fn threads(&self) -> usize;
    /// Number of atomic locations; all start holding 0.
    fn locations(&self) -> usize;
    /// The next operation thread `tid` wants to run, or `None` when it
    /// has finished.
    fn next_op(&self, tid: usize) -> Option<Op>;
    /// Advances thread `tid` past its pending op. `value` is the loaded
    /// (or stored, for stores) value. `Err` reports a safety violation.
    fn apply(&mut self, tid: usize, value: u64) -> Result<(), String>;
    /// Checked once per terminal state (every thread finished).
    fn check_final(&self) -> Result<(), String>;
}

/// One store in a location's modification order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct StoreMsg {
    val: u64,
    ts: u32,
    /// The message view: what a reader acquires by reading this store.
    view: Vec<u32>,
}

/// All locations' modification orders. Location `l` starts with an
/// initial store of 0 at timestamp 0 whose message view is all-zero.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Memory {
    locs: Vec<Vec<StoreMsg>>,
}

impl Memory {
    fn new(nlocs: usize) -> Memory {
        Memory {
            locs: (0..nlocs)
                .map(|_| {
                    vec![StoreMsg {
                        val: 0,
                        ts: 0,
                        view: vec![0; nlocs],
                    }]
                })
                .collect(),
        }
    }

    fn latest_ts(&self, loc: usize) -> u32 {
        self.locs[loc].last().map(|s| s.ts).unwrap_or(0)
    }
}

fn join_views(into: &mut [u32], from: &[u32]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

/// One complete world state: model + memory + per-thread views, plus the
/// scheduling bookkeeping the preemption bound needs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct State<M: Model> {
    model: M,
    mem: Memory,
    views: Vec<Vec<u32>>,
    last: Option<usize>,
    preemptions: u32,
}

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread.
    pub max_preemptions: u32,
    /// Hard cap on distinct states; exceeding it clears
    /// [`Exploration::complete`] instead of looping forever.
    pub max_states: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_preemptions: 3,
            max_states: 2_000_000,
        }
    }
}

/// A safety violation plus the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub message: String,
    /// Human-readable `t<tid>: <op> -> <value>` lines, in schedule order.
    pub trace: Vec<String>,
}

/// The result of exhausting (or capping) the state space.
#[derive(Clone, Debug, Default)]
pub struct Exploration {
    /// Distinct world states visited.
    pub states: u64,
    /// Terminal states reached (all threads finished).
    pub terminal: u64,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// True when the state space was exhausted within `max_states`.
    pub complete: bool,
}

/// Exhaustively explores `model` under `cfg` bounds.
pub fn explore<M: Model>(model: M, cfg: &Config) -> Exploration {
    let nlocs = model.locations();
    let nthreads = model.threads();
    let state = State {
        model,
        mem: Memory::new(nlocs),
        views: vec![vec![0; nlocs]; nthreads],
        last: None,
        preemptions: 0,
    };
    let mut ex = Exploration {
        complete: true,
        ..Exploration::default()
    };
    let mut visited = HashSet::new();
    let mut trace = Vec::new();
    dfs(&state, cfg, &mut visited, &mut trace, &mut ex);
    ex
}

fn dfs<M: Model>(
    state: &State<M>,
    cfg: &Config,
    visited: &mut HashSet<State<M>>,
    trace: &mut Vec<String>,
    ex: &mut Exploration,
) {
    if ex.violation.is_some() {
        return;
    }
    if ex.states >= cfg.max_states {
        ex.complete = false;
        return;
    }
    if !visited.insert(state.clone()) {
        return;
    }
    ex.states += 1;

    let enabled: Vec<usize> = (0..state.model.threads())
        .filter(|&t| state.model.next_op(t).is_some())
        .collect();
    if enabled.is_empty() {
        ex.terminal += 1;
        if let Err(message) = state.model.check_final() {
            ex.violation = Some(Violation {
                message,
                trace: trace.clone(),
            });
        }
        return;
    }

    for &tid in &enabled {
        // Preemption accounting: continuing the last thread is free, as is
        // taking over from a thread that finished or blocked; switching
        // away from a thread that could still run costs one preemption.
        let preempts = match state.last {
            Some(prev) if prev != tid && enabled.contains(&prev) => state.preemptions + 1,
            _ => state.preemptions,
        };
        if preempts > cfg.max_preemptions {
            continue;
        }
        let op = state
            .model
            .next_op(tid)
            .expect("enabled thread must offer an op");
        match op {
            Op::Store(loc, val, ord) => {
                let mut next = state.clone();
                let ts = next.mem.latest_ts(loc) + 1;
                next.views[tid][loc] = ts;
                let view = if ord.releases() {
                    next.views[tid].clone()
                } else {
                    // relaxed-store message: carries only its own
                    // timestamp, so acquiring readers learn nothing else.
                    let mut v = vec![0; next.views[tid].len()];
                    v[loc] = ts;
                    v
                };
                next.mem.locs[loc].push(StoreMsg { val, ts, view });
                step(
                    next,
                    tid,
                    format!("t{tid}: store l{loc} = {val} ({ord:?})"),
                    val,
                    cfg,
                    visited,
                    trace,
                    ex,
                );
            }
            Op::FetchAdd(loc, add, ord) => {
                let mut next = state.clone();
                // Atomicity: an RMW always reads the newest store.
                let read = next.mem.locs[loc].last().expect("init store").clone();
                if ord.acquires() {
                    join_views(&mut next.views[tid], &read.view);
                }
                let ts = read.ts + 1;
                next.views[tid][loc] = ts;
                let view = if ord.releases() {
                    next.views[tid].clone()
                } else {
                    let mut v = vec![0; next.views[tid].len()];
                    v[loc] = ts;
                    v
                };
                next.mem.locs[loc].push(StoreMsg {
                    val: read.val.wrapping_add(add),
                    ts,
                    view,
                });
                step(
                    next,
                    tid,
                    format!(
                        "t{tid}: fetch_add l{loc} += {add} -> read {} ({ord:?})",
                        read.val
                    ),
                    read.val,
                    cfg,
                    visited,
                    trace,
                    ex,
                );
            }
            Op::Load(loc, ord) => {
                // Every store at or after the thread's view is readable;
                // each choice is its own branch.
                let floor = state.views[tid][loc];
                let readable: Vec<usize> = state.mem.locs[loc]
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.ts >= floor)
                    .map(|(i, _)| i)
                    .collect();
                for idx in readable {
                    let mut next = state.clone();
                    let msg = next.mem.locs[loc][idx].clone();
                    next.views[tid][loc] = next.views[tid][loc].max(msg.ts);
                    if ord.acquires() {
                        join_views(&mut next.views[tid], &msg.view);
                    }
                    step(
                        next,
                        tid,
                        format!("t{tid}: load l{loc} -> {} @ts{} ({ord:?})", msg.val, msg.ts),
                        msg.val,
                        cfg,
                        visited,
                        trace,
                        ex,
                    );
                }
            }
        }
        if ex.violation.is_some() {
            return;
        }
    }
}

/// Applies the op result to the model, records the trace line, and
/// recurses.
#[allow(clippy::too_many_arguments)]
fn step<M: Model>(
    mut next: State<M>,
    tid: usize,
    desc: String,
    value: u64,
    cfg: &Config,
    visited: &mut HashSet<State<M>>,
    trace: &mut Vec<String>,
    ex: &mut Exploration,
) {
    let preempted_from = next.last;
    next.preemptions = match preempted_from {
        Some(prev) if prev != tid && next.model.next_op(prev).is_some() => next.preemptions + 1,
        _ => next.preemptions,
    };
    next.last = Some(tid);
    trace.push(desc);
    match next.model.apply(tid, value) {
        Err(message) => {
            ex.violation = Some(Violation {
                message,
                trace: trace.clone(),
            });
        }
        Ok(()) => dfs(&next, cfg, visited, trace, ex),
    }
    trace.pop();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic message-passing litmus: t0 stores data then flag; t1 spins
    /// on flag then loads data. Release/Acquire forbids the stale data
    /// read; Relaxed permits it.
    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct MsgPass {
        flag_store: MemOrd,
        flag_load: MemOrd,
        pc: [u8; 2],
        seen: Option<u64>,
    }

    impl MsgPass {
        fn new(flag_store: MemOrd, flag_load: MemOrd) -> Self {
            MsgPass {
                flag_store,
                flag_load,
                pc: [0, 0],
                seen: None,
            }
        }
    }

    const DATA: usize = 0;
    const FLAG: usize = 1;

    impl Model for MsgPass {
        fn threads(&self) -> usize {
            2
        }
        fn locations(&self) -> usize {
            2
        }
        fn next_op(&self, tid: usize) -> Option<Op> {
            match (tid, self.pc[tid]) {
                (0, 0) => Some(Op::Store(DATA, 42, MemOrd::Relaxed)),
                (0, 1) => Some(Op::Store(FLAG, 1, self.flag_store)),
                (1, 0) => Some(Op::Load(FLAG, self.flag_load)),
                (1, 1) => Some(Op::Load(DATA, MemOrd::Relaxed)),
                _ => None,
            }
        }
        fn apply(&mut self, tid: usize, value: u64) -> Result<(), String> {
            match (tid, self.pc[tid]) {
                (1, 0) => {
                    if value == 1 {
                        self.pc[1] = 1; // flag seen: go read data
                    } // else spin on the flag
                }
                (1, 1) => {
                    self.seen = Some(value);
                    self.pc[1] = 2;
                    if value != 42 {
                        return Err(format!("stale data read: {value}"));
                    }
                }
                _ => self.pc[tid] += 1,
            }
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn release_acquire_message_passing_is_safe() {
        let ex = explore(
            MsgPass::new(MemOrd::Release, MemOrd::Acquire),
            &Config::default(),
        );
        assert!(ex.complete, "state space must be exhausted");
        assert!(ex.violation.is_none(), "{:?}", ex.violation);
        assert!(ex.terminal > 0);
    }

    #[test]
    fn relaxed_flag_store_permits_stale_read() {
        let ex = explore(
            MsgPass::new(MemOrd::Relaxed, MemOrd::Acquire),
            &Config::default(),
        );
        let v = ex.violation.expect("relaxed publish must be caught");
        assert!(v.message.contains("stale data read"));
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn relaxed_flag_load_also_permits_stale_read() {
        let ex = explore(
            MsgPass::new(MemOrd::Release, MemOrd::Relaxed),
            &Config::default(),
        );
        assert!(ex.violation.is_some(), "acquire side matters too");
    }

    #[test]
    fn rmw_reads_newest_store() {
        /// Two threads fetch_add the same counter; final value must be 2
        /// in every interleaving (RMW atomicity; plain load-store would
        /// lose an update).
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct TwoAdds {
            pc: [u8; 2],
        }
        impl Model for TwoAdds {
            fn threads(&self) -> usize {
                2
            }
            fn locations(&self) -> usize {
                1
            }
            fn next_op(&self, tid: usize) -> Option<Op> {
                (self.pc[tid] == 0).then_some(Op::FetchAdd(0, 1, MemOrd::Relaxed))
            }
            fn apply(&mut self, tid: usize, _value: u64) -> Result<(), String> {
                self.pc[tid] = 1;
                Ok(())
            }
            fn check_final(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let ex = explore(TwoAdds { pc: [0, 0] }, &Config::default());
        assert!(ex.complete && ex.violation.is_none());
        // The invariant is structural: every modification order ends at 2.
        // (Verified indirectly: a lost update would need a load to read a
        // non-newest store inside the RMW, which the explorer never does.)
        assert!(ex.terminal > 0);
    }

    #[test]
    fn state_cap_marks_incomplete_instead_of_diverging() {
        let ex = explore(
            MsgPass::new(MemOrd::Release, MemOrd::Acquire),
            &Config {
                max_preemptions: 3,
                max_states: 2,
            },
        );
        assert!(!ex.complete);
    }
}
