#![forbid(unsafe_code)]
//! # dynplat-analysis — correctness tooling for the dynplat workspace
//!
//! Two executable analyses over the tree itself (DESIGN.md §9):
//!
//! 1. **The invariant linter** ([`lints`], driven by [`workspace`] and the
//!    `dynplat-analysis` binary): a zero-dependency lexer-based pass that
//!    enforces the project invariants no compiler checks — crate-wide
//!    `#![forbid(unsafe_code)]`, no `.unwrap()`/bare `panic!` in library
//!    code, no wall-clock reads or hash-ordered collections in
//!    determinism-critical crates, and a `// relaxed:` justification on
//!    every `Ordering::Relaxed` atomic operation. Violations can only be
//!    suppressed through the checked-in, justification-carrying
//!    [`allowlist`], and stale suppressions are themselves findings.
//!
//! 2. **The schedule-exploration model checker** ([`mc`]): virtual
//!    atomics with a release/acquire/relaxed view semantics plus a
//!    bounded-preemption DFS scheduler, exhaustively interleaving models
//!    of the fabric's SPSC publish protocol and the thread-striped
//!    metrics flush ([`mc::spsc`]). The shipped protocols pass under
//!    every explored interleaving; seeded weakenings (a `Relaxed` tail
//!    publish, lanes written after `tail`, a `Relaxed` join handshake)
//!    are caught with a concrete violating schedule.
//!
//! Both run in `scripts/ci.sh` as gating steps; the linter's JSON report
//! (`dynplat.analysis.v1`) is uploaded as a CI artifact on failure.

pub mod allowlist;
pub mod lexer;
pub mod lints;
pub mod mc;
pub mod report;
pub mod workspace;
