//! The workspace invariant lint pass.
//!
//! Six rules, each encoding an argument the rest of the tree already
//! relies on but no compiler checks (DESIGN.md §9):
//!
//! | rule | invariant |
//! |---|---|
//! | `forbid-unsafe` | every crate root opts into `#![forbid(unsafe_code)]`, and no scanned file contains an `unsafe` token |
//! | `no-unwrap` | library code never calls `.unwrap()` or bare `panic!` / `todo!` / `unimplemented!` — failures carry an actionable `expect` message or an error return |
//! | `no-wall-clock` | determinism-critical crates never read `std::time::Instant` / `SystemTime`; simulated time only (the E14/E15 byte-identity gates depend on it) |
//! | `no-hash-collections` | canonical-merge crates use `BTreeMap`/sorted structures, never `HashMap`/`HashSet`, so merged output is byte-identical across shard counts |
//! | `relaxed-justify` | every `Ordering::Relaxed` atomic op carries a `// relaxed:` comment justifying why the weakest ordering is sound there |
//! | `no-snapshot-in-hot-path` | hot-path crates never call `.snapshot()` in library code — a registry snapshot clones every metric map under the lock; flush sketches/counters and snapshot once per run at the reporting edge |
//!
//! Rules run over the token stream of [`crate::lexer`], so comments,
//! strings and doc text can never trip them. Code inside `#[cfg(test)]`
//! items is exempt from every rule except `forbid-unsafe`, as are files
//! under `tests/`, `benches/` and `examples/` directories — tests may
//! unwrap freely; the invariants protect shipped library paths.

use crate::lexer::{lex, Token, TokenKind};

/// Stable rule identifiers (these appear in the allowlist file and the
/// findings report, so they are part of the tool's interface).
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
pub const RULE_NO_UNWRAP: &str = "no-unwrap";
pub const RULE_NO_WALL_CLOCK: &str = "no-wall-clock";
pub const RULE_NO_HASH_COLLECTIONS: &str = "no-hash-collections";
pub const RULE_RELAXED_JUSTIFY: &str = "relaxed-justify";
pub const RULE_NO_SNAPSHOT_HOT_PATH: &str = "no-snapshot-in-hot-path";

/// All rule ids, for allowlist validation.
pub const ALL_RULES: [&str; 6] = [
    RULE_FORBID_UNSAFE,
    RULE_NO_UNWRAP,
    RULE_NO_WALL_CLOCK,
    RULE_NO_HASH_COLLECTIONS,
    RULE_RELAXED_JUSTIFY,
    RULE_NO_SNAPSHOT_HOT_PATH,
];

/// Crates whose outputs are hashed, diffed or `cmp`-gated in CI: byte
/// determinism is part of their contract, so wall-clock reads and
/// iteration-order-dependent collections are banned outright.
pub const DETERMINISM_CRITICAL_CRATES: [&str; 7] =
    ["common", "sim", "fleet", "dse", "model", "sched", "faults"];

/// Crates whose steady-state loops are nanosecond-budgeted (the fabric
/// delivery loop, the dispatch loop, the shard kernel): aggregate through
/// striped histograms, sketches and local accumulators there, and take
/// registry snapshots only at the reporting edge — never per event.
pub const HOT_PATH_CRATES: [&str; 3] = ["comm", "sched", "fleet"];

/// How a file participates in the build, which decides rule applicability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// A crate's library source (`crates/<name>/src/**`, root `src/`).
    Lib,
    /// A binary root or bin-only module (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests, benches, examples: exempt from everything
    /// except the `unsafe` token scan.
    TestLike,
}

/// One file to lint: path (for reporting), crate name, class, and whether
/// it is a crate/bin root that must carry `#![forbid(unsafe_code)]`.
#[derive(Clone, Debug)]
pub struct SourceFile {
    pub path: String,
    pub crate_name: String,
    pub class: FileClass,
    pub is_root: bool,
}

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source text. This is the whole pass: classification
/// has already been decided by the caller (the CLI for real files, tests
/// for fixtures).
pub fn lint_source(file: &SourceFile, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let test_spans = cfg_test_spans(&tokens);
    let in_test = |idx: usize| test_spans.iter().any(|s| s.contains(&idx));
    let mut findings = Vec::new();

    check_unsafe(file, &tokens, &mut findings, source);
    if file.class == FileClass::TestLike {
        return findings;
    }
    for (idx, tok) in tokens.iter().enumerate() {
        if in_test(idx) {
            continue;
        }
        if file.class == FileClass::Lib {
            check_unwrap(file, &tokens, idx, tok, &mut findings);
            check_wall_clock(file, tok, &mut findings);
            check_hash_collections(file, tok, &mut findings);
            check_snapshot_hot_path(file, &tokens, idx, tok, &mut findings);
        }
        check_relaxed(file, &tokens, idx, tok, &mut findings);
    }
    findings
}

/// `forbid-unsafe`: crate/bin roots must contain the inner attribute, and
/// no non-fixture file may contain an `unsafe` token at all (belt and
/// braces: the attribute makes the compiler enforce it for lib code, the
/// token scan extends the guarantee to bins, tests and benches).
fn check_unsafe(file: &SourceFile, tokens: &[Token], findings: &mut Vec<Finding>, source: &str) {
    for tok in tokens {
        if tok.is_ident("unsafe") {
            findings.push(Finding {
                rule: RULE_FORBID_UNSAFE,
                path: file.path.clone(),
                line: tok.line,
                message: "`unsafe` token in a workspace that forbids unsafe code".into(),
            });
        }
    }
    if file.is_root && !has_forbid_unsafe(tokens) {
        findings.push(Finding {
            rule: RULE_FORBID_UNSAFE,
            path: file.path.clone(),
            line: first_code_line(source),
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        });
    }
}

/// Matches `# ! [ forbid ( unsafe_code ) ]` anywhere in the stream.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    code.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    })
}

fn first_code_line(source: &str) -> u32 {
    for (i, l) in source.lines().enumerate() {
        let t = l.trim();
        if !t.is_empty() && !t.starts_with("//") {
            return i as u32 + 1;
        }
    }
    1
}

/// `no-unwrap`: `.unwrap()` receiver calls and the bare diverging macros.
fn check_unwrap(
    file: &SourceFile,
    tokens: &[Token],
    idx: usize,
    tok: &Token,
    findings: &mut Vec<Finding>,
) {
    let next_is = |c: char| tokens.get(idx + 1).is_some_and(|t| t.is_punct(c));
    let prev_is = |c: char| idx > 0 && tokens[idx - 1].is_punct(c);
    if tok.is_ident("unwrap") && prev_is('.') && next_is('(') {
        findings.push(Finding {
            rule: RULE_NO_UNWRAP,
            path: file.path.clone(),
            line: tok.line,
            message:
                "`.unwrap()` in library code — use `expect(\"why this holds\")` or return an error"
                    .into(),
        });
    }
    for mac in ["panic", "todo", "unimplemented"] {
        if tok.is_ident(mac) && next_is('!') {
            findings.push(Finding {
                rule: RULE_NO_UNWRAP,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "bare `{mac}!` in library code — return an error or use an `expect` with the invariant spelled out"
                ),
            });
        }
    }
}

/// `no-wall-clock`: any mention of the host-clock types in a
/// determinism-critical crate. Mentions in comments and strings are
/// invisible here by construction.
fn check_wall_clock(file: &SourceFile, tok: &Token, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRITICAL_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for ty in ["Instant", "SystemTime"] {
        if tok.is_ident(ty) {
            findings.push(Finding {
                rule: RULE_NO_WALL_CLOCK,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`{ty}` in determinism-critical crate `{}` — use `SimTime`/logical clocks",
                    file.crate_name
                ),
            });
        }
    }
}

/// `no-hash-collections`: randomized-iteration-order collections in
/// canonical-merge crates.
fn check_hash_collections(file: &SourceFile, tok: &Token, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRITICAL_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for ty in ["HashMap", "HashSet"] {
        if tok.is_ident(ty) {
            findings.push(Finding {
                rule: RULE_NO_HASH_COLLECTIONS,
                path: file.path.clone(),
                line: tok.line,
                message: format!(
                    "`{ty}` in canonical-merge crate `{}` — iteration order is randomized; use `BTreeMap`/`BTreeSet` or a sorted `Vec`",
                    file.crate_name
                ),
            });
        }
    }
}

/// `no-snapshot-in-hot-path`: `.snapshot()` receiver calls in hot-path
/// crate library code. A `MetricsRegistry::snapshot` clones every
/// counter, gauge, histogram and sketch map under the registry lock —
/// fine once per run at the reporting edge, ruinous per delivery or per
/// dispatch (and the same argument covers per-metric snapshots in a
/// loop). Cold reporting paths that genuinely need one go through the
/// allowlist with their justification on record.
fn check_snapshot_hot_path(
    file: &SourceFile,
    tokens: &[Token],
    idx: usize,
    tok: &Token,
    findings: &mut Vec<Finding>,
) {
    if !HOT_PATH_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let next_is = |c: char| tokens.get(idx + 1).is_some_and(|t| t.is_punct(c));
    let prev_is = |c: char| idx > 0 && tokens[idx - 1].is_punct(c);
    if tok.is_ident("snapshot") && prev_is('.') && next_is('(') {
        findings.push(Finding {
            rule: RULE_NO_SNAPSHOT_HOT_PATH,
            path: file.path.clone(),
            line: tok.line,
            message: format!(
                "`.snapshot()` in hot-path crate `{}` — snapshots clone whole metric maps; aggregate via sketches/striped histograms and snapshot once per run at the reporting edge (allowlist a cold path deliberately)",
                file.crate_name
            ),
        });
    }
}

/// How many lines below the end of a `// relaxed:` comment block the
/// `Ordering::Relaxed` token may sit. rustfmt wraps receiver chains, so
/// `cells[i]\n.value\n.fetch_add(n, Ordering::Relaxed)` puts the token up
/// to three lines under the comment that introduces the statement.
const RELAXED_COMMENT_REACH: u32 = 3;

/// `relaxed-justify`: every `Ordering :: Relaxed` token run must have a
/// comment containing `relaxed:` on its own line or within
/// [`RELAXED_COMMENT_REACH`] lines above. A multi-line comment block
/// counts as a unit: the justification reaches from the `relaxed:` line
/// through the end of the contiguous run of comment-bearing lines it
/// starts, plus the reach — so a wrapped explanation above a wrapped
/// statement still covers the `Relaxed` token.
fn check_relaxed(
    file: &SourceFile,
    tokens: &[Token],
    idx: usize,
    tok: &Token,
    findings: &mut Vec<Finding>,
) {
    if !tok.is_ident("Relaxed") {
        return;
    }
    let preceded = idx >= 3
        && tokens[idx - 1].is_punct(':')
        && tokens[idx - 2].is_punct(':')
        && tokens[idx - 3].is_ident("Ordering");
    if !preceded {
        return;
    }
    let comment_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Comment(_)))
        .map(|t| t.line)
        .collect();
    let justified = tokens.iter().any(|t| match &t.kind {
        TokenKind::Comment(text) if text.contains("relaxed:") && t.line <= tok.line => {
            let mut block_end = t.line;
            while comment_lines.contains(&(block_end + 1)) {
                block_end += 1;
            }
            block_end + RELAXED_COMMENT_REACH >= tok.line
        }
        _ => false,
    });
    if !justified {
        findings.push(Finding {
            rule: RULE_RELAXED_JUSTIFY,
            path: file.path.clone(),
            line: tok.line,
            message: "`Ordering::Relaxed` without a `// relaxed:` justification comment".into(),
        });
    }
}

/// Token-index spans covered by `#[cfg(test)]` items.
///
/// The automaton recognizes the attribute token run `# [ cfg ( test ) ]`
/// (also as the first clause of `cfg(all(test, ...))`) and then extends
/// the span over the next item: through the first balanced `{ ... }`
/// block, or to a `;` for attribute-on-`use` forms. Attributes stacked
/// between the cfg and the item (`#[cfg(test)] #[derive(..)] mod t {}`)
/// stay inside the span because brace tracking only starts at the first
/// `{`.
fn cfg_test_spans(tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 4 < code.len() {
        let is_cfg_test = code[i].1.is_punct('#')
            && code[i + 1].1.is_punct('[')
            && code[i + 2].1.is_ident("cfg")
            && code[i + 3].1.is_punct('(')
            && (code[i + 4].1.is_ident("test")
                || (code[i + 4].1.is_ident("all")
                    && code.get(i + 6).is_some_and(|(_, t)| t.is_ident("test"))));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = code[i].0;
        // Walk to the end of the annotated item.
        let mut j = i + 5;
        let mut depth = 0usize;
        let mut seen_brace = false;
        let end = loop {
            let Some((orig, t)) = code.get(j) else {
                break tokens.len();
            };
            match t.kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                    seen_brace = true;
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if seen_brace && depth == 0 {
                        break orig + 1;
                    }
                }
                TokenKind::Punct(';') if !seen_brace => break orig + 1,
                _ => {}
            }
            j += 1;
        };
        spans.push(start..end);
        // Continue scanning after the span (nested cfg(test) adds nothing).
        while i < code.len() && code[i].0 < end {
            i += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file() -> SourceFile {
        SourceFile {
            path: "crates/x/src/lib.rs".into(),
            crate_name: "x".into(),
            class: FileClass::Lib,
            is_root: true,
        }
    }

    fn det_file() -> SourceFile {
        SourceFile {
            path: "crates/fleet/src/shard.rs".into(),
            crate_name: "fleet".into(),
            class: FileClass::Lib,
            is_root: false,
        }
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_root_passes() {
        let src = "#![forbid(unsafe_code)]\npub fn f() -> Option<u8> { None }\n";
        assert!(lint_source(&lib_file(), src).is_empty());
    }

    #[test]
    fn missing_forbid_flagged_on_roots_only() {
        let src = "pub fn f() {}\n";
        assert_eq!(rules(&lint_source(&lib_file(), src)), [RULE_FORBID_UNSAFE]);
        assert!(lint_source(&det_file(), src).is_empty());
    }

    #[test]
    fn unwrap_and_bare_macros_flagged_outside_tests() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\") }\n";
        assert_eq!(
            rules(&lint_source(&lib_file(), src)),
            [RULE_NO_UNWRAP, RULE_NO_UNWRAP]
        );
    }

    #[test]
    fn unwrap_family_false_positives_do_not_trip() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\nfn g(x: Option<u8>) -> u8 { x.unwrap_or_default() }\n// .unwrap() in a comment\nconst S: &str = \"panic!\";\n";
        assert!(lint_source(&lib_file(), src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); panic!(\"ok in tests\") }\n}\n";
        assert!(lint_source(&lib_file(), src).is_empty());
    }

    #[test]
    fn cfg_all_test_and_attribute_stacks_are_exempt() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n#[cfg(test)]\nuse std::time::Instant;\n";
        let f = SourceFile {
            crate_name: "fleet".into(),
            ..lib_file()
        };
        assert!(lint_source(&f, src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_still_linted() {
        let src = "#![forbid(unsafe_code)]\n#[cfg(test)]\nmod tests { fn t() {} }\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules(&lint_source(&lib_file(), src)), [RULE_NO_UNWRAP]);
    }

    #[test]
    fn wall_clock_and_hash_rules_scope_to_determinism_crates() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\n";
        let in_fleet = lint_source(&det_file(), src);
        assert_eq!(
            rules(&in_fleet),
            [RULE_NO_WALL_CLOCK, RULE_NO_HASH_COLLECTIONS]
        );
        let in_obs = SourceFile {
            crate_name: "obs".into(),
            is_root: false,
            ..lib_file()
        };
        assert!(lint_source(&in_obs, src).is_empty());
    }

    #[test]
    fn relaxed_requires_justification_within_reach() {
        let bare = "fn f(a: &std::sync::atomic::AtomicU64) { a.load(Ordering::Relaxed); }";
        let f = SourceFile {
            is_root: false,
            ..lib_file()
        };
        assert_eq!(rules(&lint_source(&f, bare)), [RULE_RELAXED_JUSTIFY]);

        let same_line =
            "fn f(a: &A) { a.load(Ordering::Relaxed); // relaxed: single-owner cursor\n}";
        assert!(lint_source(&f, same_line).is_empty());

        let above =
            "fn f(a: &A) {\n    // relaxed: single-owner cursor\n    a.load(Ordering::Relaxed);\n}";
        assert!(lint_source(&f, above).is_empty());

        let too_far = "fn f(a: &A) {\n    // relaxed: single-owner cursor\n\n\n\n    a.load(Ordering::Relaxed);\n}";
        assert_eq!(rules(&lint_source(&f, too_far)), [RULE_RELAXED_JUSTIFY]);

        // A wrapped comment block counts as one unit: the `relaxed:`
        // keyword may sit on the first line of a contiguous block whose
        // tail is what falls within reach of a wrapped statement.
        let block = concat!(
            "fn f(a: &A) {\n",
            "    // relaxed: the stores are published as a unit by the\n",
            "    // Release store below; the consumer's Acquire load is\n",
            "    // what orders them.\n",
            "    a\n",
            "        .counter\n",
            "        .load(Ordering::Relaxed);\n",
            "}\n",
        );
        assert!(lint_source(&f, block).is_empty());

        // ...but a gap between the keyword line and an unrelated comment
        // closer to the token does not stitch the blocks together.
        let gapped = concat!(
            "fn f(a: &A) {\n",
            "    // relaxed: single-owner cursor\n",
            "    let x = 1;\n",
            "    let y = 2;\n",
            "    let z = 3;\n",
            "    a.load(Ordering::Relaxed);\n",
            "}\n",
        );
        assert_eq!(rules(&lint_source(&f, gapped)), [RULE_RELAXED_JUSTIFY]);
    }

    #[test]
    fn snapshot_flagged_only_in_hot_path_lib_code() {
        let src = "fn publish(r: &MetricsRegistry) { let _ = r.snapshot(); }";
        for crate_name in ["comm", "sched", "fleet"] {
            let f = SourceFile {
                path: format!("crates/{crate_name}/src/x.rs"),
                crate_name: crate_name.into(),
                class: FileClass::Lib,
                is_root: false,
            };
            assert_eq!(
                rules(&lint_source(&f, src)),
                [RULE_NO_SNAPSHOT_HOT_PATH],
                "{crate_name} library code must not snapshot"
            );
        }
        // Cold crates may snapshot freely.
        let in_bench = SourceFile {
            path: "crates/bench/src/x.rs".into(),
            crate_name: "bench".into(),
            class: FileClass::Lib,
            is_root: false,
        };
        assert!(lint_source(&in_bench, src).is_empty());
        // Tests inside hot-path crates may too.
        let in_test = "#[cfg(test)]\nmod tests { fn t(r: &R) { r.snapshot(); } }";
        let f = SourceFile {
            is_root: false,
            crate_name: "comm".into(),
            ..lib_file()
        };
        assert!(lint_source(&f, in_test).is_empty());
        // Non-call mentions (field access, a fn named snapshot) are clean.
        let not_calls = "fn snapshot() {}\nfn g(x: &S) -> u64 { x.snapshot }\n";
        assert!(lint_source(&f, not_calls).is_empty());
    }

    #[test]
    fn acquire_release_need_no_comment() {
        let src = "fn f(a: &A) { a.load(Ordering::Acquire); a.store(1, Ordering::Release); }";
        let f = SourceFile {
            is_root: false,
            ..lib_file()
        };
        assert!(lint_source(&f, src).is_empty());
    }

    #[test]
    fn unsafe_token_flagged_even_in_test_like_files() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }";
        let f = SourceFile {
            path: "crates/x/tests/t.rs".into(),
            crate_name: "x".into(),
            class: FileClass::TestLike,
            is_root: false,
        };
        assert_eq!(rules(&lint_source(&f, src)), [RULE_FORBID_UNSAFE]);
    }

    #[test]
    fn bins_are_exempt_from_lib_rules_but_not_relaxed() {
        let src = "fn main() { Some(1).unwrap(); X.load(Ordering::Relaxed); }";
        let f = SourceFile {
            path: "crates/x/src/bin/tool.rs".into(),
            crate_name: "x".into(),
            class: FileClass::Bin,
            is_root: false,
        };
        assert_eq!(rules(&lint_source(&f, src)), [RULE_RELAXED_JUSTIFY]);
    }
}
