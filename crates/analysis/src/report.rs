//! The findings report: human-readable text and a stable JSON artifact.
//!
//! The JSON shape (`dynplat.analysis.v1`) is what CI uploads when the
//! gate fails, so it is versioned and hand-encoded here (this crate is
//! zero-dependency by design; the encoder is ~40 lines).

use crate::lints::Finding;

/// Outcome of one analysis run over a file set.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that fail the run.
    pub active: Vec<Finding>,
    /// Findings matched by a justified allowlist entry.
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run passes the gate.
    pub fn clean(&self) -> bool {
        self.active.is_empty()
    }

    /// The human-readable summary printed to stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.active {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "dynplat-analysis: {} file(s) scanned, {} finding(s), {} suppressed by allowlist\n",
            self.files_scanned,
            self.active.len(),
            self.suppressed.len()
        ));
        out
    }

    /// The `dynplat.analysis.v1` JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"dynplat.analysis.v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        for (key, findings) in [("findings", &self.active), ("suppressed", &self.suppressed)] {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, f) in findings.iter().enumerate() {
                out.push_str(&format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{}\n",
                    json_str(f.rule),
                    json_str(&f.path),
                    f.line,
                    json_str(&f.message),
                    if i + 1 < findings.len() { "," } else { "" }
                ));
            }
            out.push_str(if key == "findings" { "  ],\n" } else { "  ]\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string encoder (ASCII control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let report = Report {
            active: vec![Finding {
                rule: "no-unwrap",
                path: "crates/x/src/a.rs".into(),
                line: 3,
                message: "`.unwrap()` with \"quotes\"\nand newline".into(),
            }],
            suppressed: vec![],
            files_scanned: 7,
        };
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"dynplat.analysis.v1\""));
        assert!(json.contains("\\\"quotes\\\"\\nand newline"));
        assert!(json.contains("\"clean\": false"));
        // Braces and brackets balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn text_report_counts_files_and_findings() {
        let report = Report {
            files_scanned: 3,
            ..Report::default()
        };
        assert!(report.clean());
        assert!(report
            .render_text()
            .contains("3 file(s) scanned, 0 finding(s)"));
    }
}
