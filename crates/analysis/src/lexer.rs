//! A lightweight Rust lexer for lint-grade scanning.
//!
//! This is deliberately **not** a full Rust parser: the lint rules in
//! [`crate::lints`] only need a faithful token stream — identifiers,
//! punctuation, literals and comments, each tagged with its source line —
//! with strings and comments correctly skipped so that a `panic!` inside a
//! doc comment or an `"unwrap()"` inside a string literal never trips a
//! rule. The tricky lexical forms are handled for real: nested block
//! comments, raw strings with arbitrary `#` fences, byte/raw-byte strings,
//! char literals vs. lifetimes, and `r#ident` raw identifiers.
//!
//! The output is a flat `Vec<Token>`; downstream passes run simple
//! token-sequence automata over it (see [`crate::lints`]), which keeps the
//! whole analysis crate zero-dependency and fast enough to scan the entire
//! workspace in well under a second.

/// What a token is, with enough payload for the lint rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `Ordering`, ...).
    /// Raw identifiers are stored without the `r#` prefix.
    Ident(String),
    /// A single punctuation character (`.`, `!`, `#`, `[`, ...). Multi-char
    /// operators arrive as consecutive tokens, which is fine for matching.
    Punct(char),
    /// A string, byte-string, char or numeric literal (payload dropped).
    Literal,
    /// A lifetime such as `'a` (payload dropped).
    Lifetime,
    /// A `//` line comment or `/* */` block comment, full text retained —
    /// the `relaxed-justify` rule reads justification text out of these.
    Comment(String),
}

/// One lexed token with the 1-indexed line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes Rust source into a token stream. Unterminated strings or comments
/// lex to the end of input rather than erroring: for a linter, a best-effort
/// stream over a syntactically broken file is more useful than a failure.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump(); // `b`
                    self.string(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    self.bump(); // `r`
                    self.bump(); // `#`
                    self.ident(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment(text), line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char, including `\"`
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, line);
    }

    /// Detects `r"`, `r#...#"`, `br"`, `br#...#"` at the cursor.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the leading `r` or `b`
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // `r`
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..fence {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` followed by a non-quote is a lifetime; `'a'`, `'\n'` are
        // char literals. `'_` and keywords like `'static` are lifetimes.
        let second = self.peek(1);
        let third = self.peek(2);
        let is_lifetime = match second {
            Some(c) if is_ident_start(c) => third != Some('\''),
            _ => false,
        };
        self.bump(); // `'`
        if is_lifetime {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, line);
            return;
        }
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            name.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        // Numbers can embed `_`, type suffixes, hex/bin digits and a
        // single `.`; precise shape does not matter to any rule.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // `1..=3` range punctuation must not be swallowed.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // panic! in a comment
            /* unwrap() in /* a nested */ block */
            let s = "panic!(\"no\")";
            let r = r#"unwrap() "quoted" "#;
            let b = b"unwrap";
            call();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "panic" || i == "unwrap"));
        assert!(ids.iter().any(|i| i == "call"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .expect("token present")
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn range_punctuation_survives_numbers() {
        let toks = lex("for i in 0..n {}");
        assert_eq!(
            toks.iter().filter(|t| t.is_punct('.')).count(),
            2,
            "both dots of `..` must lex as punctuation"
        );
    }

    #[test]
    fn comments_keep_their_text() {
        let toks = lex("x.load(o); // relaxed: tearing is fine here");
        let comment = toks
            .iter()
            .find_map(|t| match &t.kind {
                TokenKind::Comment(c) => Some(c.clone()),
                _ => None,
            })
            .expect("comment token");
        assert!(comment.contains("relaxed: tearing"));
    }
}
