//! The checked-in lint allowlist.
//!
//! Format (`analysis-allow.list` at the repository root): one entry per
//! line, `#` comments and blank lines ignored.
//!
//! ```text
//! <rule-id> <path> <justification...>
//! ```
//!
//! The path is workspace-relative and matched exactly (no globs: an
//! allowlist that can silently widen is worse than none). The
//! justification is mandatory — an unexplained suppression is itself a
//! finding. Every entry must be *used* by the run it participates in;
//! stale entries (the violation was fixed but the suppression stayed) are
//! reported as `stale-allow` findings so the allowlist can only ever
//! shrink toward empty.

use crate::lints::{Finding, ALL_RULES};

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub justification: String,
    /// Line in the allowlist file, for stale-entry reporting.
    pub source_line: u32,
}

/// A parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text. Malformed lines (missing fields, unknown
    /// rule ids) come back as findings against the allowlist file itself
    /// rather than being skipped.
    pub fn parse(text: &str, file_name: &str) -> (Allowlist, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default().to_owned();
            let path = parts.next().unwrap_or_default().to_owned();
            let justification = parts.next().unwrap_or_default().trim().to_owned();
            if path.is_empty() || justification.is_empty() {
                findings.push(Finding {
                    rule: "bad-allow",
                    path: file_name.to_owned(),
                    line: line_no,
                    message: format!(
                        "malformed allowlist entry `{line}` — expected `<rule> <path> <justification>`"
                    ),
                });
                continue;
            }
            if !ALL_RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    rule: "bad-allow",
                    path: file_name.to_owned(),
                    line: line_no,
                    message: format!("unknown rule id `{rule}` in allowlist"),
                });
                continue;
            }
            entries.push(AllowEntry {
                rule,
                path,
                justification,
                source_line: line_no,
            });
        }
        (Allowlist { entries }, findings)
    }

    /// Splits findings into (active, suppressed) and appends a
    /// `stale-allow` finding for every entry that suppressed nothing.
    pub fn apply(&self, findings: Vec<Finding>, file_name: &str) -> (Vec<Finding>, Vec<Finding>) {
        let mut used = vec![false; self.entries.len()];
        let mut active = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == f.rule && e.path == f.path);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed.push(f);
                }
                None => active.push(f),
            }
        }
        for (e, used) in self.entries.iter().zip(used) {
            if !used {
                active.push(Finding {
                    rule: "stale-allow",
                    path: file_name.to_owned(),
                    line: e.source_line,
                    message: format!(
                        "allowlist entry `{} {}` suppresses nothing — delete it",
                        e.rule, e.path
                    ),
                });
            }
        }
        (active, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::RULE_NO_UNWRAP;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 10,
            message: "m".into(),
        }
    }

    #[test]
    fn parse_accepts_comments_and_justified_entries() {
        let (al, errs) = Allowlist::parse(
            "# header\n\nno-unwrap crates/x/src/a.rs generated table, panics unreachable\n",
            "analysis-allow.list",
        );
        assert!(errs.is_empty());
        assert_eq!(al.entries.len(), 1);
        assert_eq!(al.entries[0].rule, "no-unwrap");
        assert_eq!(al.entries[0].path, "crates/x/src/a.rs");
    }

    #[test]
    fn parse_rejects_missing_justification_and_unknown_rules() {
        let (al, errs) = Allowlist::parse(
            "no-unwrap crates/x/src/a.rs\nnot-a-rule p because reasons\n",
            "analysis-allow.list",
        );
        assert!(al.entries.is_empty());
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|f| f.rule == "bad-allow"));
    }

    #[test]
    fn apply_suppresses_matches_and_flags_stale_entries() {
        let (al, errs) = Allowlist::parse(
            "no-unwrap crates/x/src/a.rs justified\nno-unwrap crates/x/src/gone.rs was fixed\n",
            "analysis-allow.list",
        );
        assert!(errs.is_empty());
        let (active, suppressed) = al.apply(
            vec![
                finding(RULE_NO_UNWRAP, "crates/x/src/a.rs"),
                finding(RULE_NO_UNWRAP, "crates/x/src/b.rs"),
            ],
            "analysis-allow.list",
        );
        assert_eq!(suppressed.len(), 1);
        assert_eq!(active.len(), 2, "unsuppressed finding + stale entry");
        assert!(active
            .iter()
            .any(|f| f.rule == "stale-allow" && f.line == 2));
    }
}
