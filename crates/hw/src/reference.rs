//! A reference vehicle architecture.
//!
//! Experiments, examples and tests need a realistic multi-domain network
//! without repeating forty lines of setup: [`reference_vehicle`] builds the
//! canonical transition-era E/E architecture of the paper's Fig. 1 — legacy
//! domain buses bridged by gateways into an Ethernet backbone that connects
//! the consolidated platform ECUs.

use crate::ecu::{CryptoSupport, EcuClass, EcuSpec};
use crate::topology::{BusKind, BusSpec, HwTopology};

/// Well-known ECU ids of the reference vehicle.
pub mod ecus {
    use dynplat_common::EcuId;

    /// Body controller (doors, lights) on the body CAN.
    pub const BODY: EcuId = EcuId(0);
    /// Powertrain controller on the powertrain CAN.
    pub const POWERTRAIN: EcuId = EcuId(1);
    /// Chassis controller on FlexRay.
    pub const CHASSIS: EcuId = EcuId(2);
    /// Central gateway bridging every domain bus to the backbone.
    pub const GATEWAY: EcuId = EcuId(3);
    /// First consolidated platform ECU (dynamic platform host).
    pub const PLATFORM_A: EcuId = EcuId(4);
    /// Second consolidated platform ECU (redundancy partner).
    pub const PLATFORM_B: EcuId = EcuId(5);
    /// Infotainment head unit on the backbone.
    pub const HEAD_UNIT: EcuId = EcuId(6);
}

/// Well-known bus ids of the reference vehicle.
pub mod buses {
    use dynplat_common::BusId;

    /// 500 kbit/s body CAN.
    pub const BODY_CAN: BusId = BusId(0);
    /// 500 kbit/s powertrain CAN.
    pub const POWERTRAIN_CAN: BusId = BusId(1);
    /// 10 Mbit/s chassis FlexRay.
    pub const CHASSIS_FLEXRAY: BusId = BusId(2);
    /// 1 Gbit/s Ethernet backbone.
    pub const BACKBONE: BusId = BusId(3);
}

/// Builds the reference vehicle: three legacy domain buses, a central
/// gateway, two high-performance platform ECUs and a head unit on a
/// 1 Gbit/s backbone.
///
/// ```text
/// body ──CAN──┐
/// powertrain ─CAN──┤
/// chassis ─FlexRay─┤─ gateway ══ Ethernet backbone ══ platform-a / platform-b / head-unit
/// ```
pub fn reference_vehicle() -> HwTopology {
    let ecus = [
        EcuSpec::builder(ecus::BODY, "body")
            .class(EcuClass::LowEnd)
            .build(),
        EcuSpec::builder(ecus::POWERTRAIN, "powertrain")
            .class(EcuClass::LowEnd)
            .crypto(CryptoSupport::Software)
            .build(),
        EcuSpec::builder(ecus::CHASSIS, "chassis")
            .class(EcuClass::Domain)
            .build(),
        EcuSpec::builder(ecus::GATEWAY, "gateway")
            .class(EcuClass::Domain)
            .crypto(CryptoSupport::Hsm)
            .build(),
        EcuSpec::builder(ecus::PLATFORM_A, "platform-a")
            .class(EcuClass::HighPerformance)
            .build(),
        EcuSpec::builder(ecus::PLATFORM_B, "platform-b")
            .class(EcuClass::HighPerformance)
            .build(),
        EcuSpec::builder(ecus::HEAD_UNIT, "head-unit")
            .class(EcuClass::HighPerformance)
            .crypto(CryptoSupport::Accelerator)
            .cost(120)
            .build(),
    ];
    let buses_list = [
        BusSpec::new(
            buses::BODY_CAN,
            "body-can",
            BusKind::can_500k(),
            [ecus::BODY, ecus::GATEWAY],
        ),
        BusSpec::new(
            buses::POWERTRAIN_CAN,
            "powertrain-can",
            BusKind::can_500k(),
            [ecus::POWERTRAIN, ecus::GATEWAY],
        ),
        BusSpec::new(
            buses::CHASSIS_FLEXRAY,
            "chassis-flexray",
            BusKind::flexray_10m(),
            [ecus::CHASSIS, ecus::GATEWAY],
        ),
        BusSpec::new(
            buses::BACKBONE,
            "backbone",
            BusKind::ethernet_1g(),
            [
                ecus::GATEWAY,
                ecus::PLATFORM_A,
                ecus::PLATFORM_B,
                ecus::HEAD_UNIT,
            ],
        ),
    ];
    HwTopology::from_parts(ecus, buses_list).expect("reference vehicle is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::EcuId;

    #[test]
    fn reference_vehicle_is_fully_connected() {
        let topo = reference_vehicle();
        assert_eq!(topo.ecu_count(), 7);
        let ids: Vec<EcuId> = topo.ecus().map(|e| e.id()).collect();
        for &a in &ids {
            for &b in &ids {
                assert!(topo.route(a, b).is_ok(), "no route {a} -> {b}");
            }
        }
    }

    #[test]
    fn gateway_bridges_every_domain() {
        let topo = reference_vehicle();
        assert!(topo.is_gateway(ecus::GATEWAY));
        assert_eq!(topo.buses_of(ecus::GATEWAY).count(), 4);
        // Body to platform crosses exactly CAN + backbone.
        let route = topo.route(ecus::BODY, ecus::PLATFORM_A).unwrap();
        assert_eq!(route.buses, vec![buses::BODY_CAN, buses::BACKBONE]);
    }

    #[test]
    fn crypto_tiers_match_roles() {
        let topo = reference_vehicle();
        assert!(!topo.ecu(ecus::BODY).unwrap().crypto().can_verify());
        assert_eq!(
            topo.ecu(ecus::GATEWAY).unwrap().crypto(),
            CryptoSupport::Hsm,
            "the gateway is the natural update master"
        );
        assert!(topo.ecu(ecus::PLATFORM_A).unwrap().has_gpu());
    }

    #[test]
    fn bus_ids_constants_are_consistent() {
        let topo = reference_vehicle();
        assert_eq!(
            topo.bus(buses::BACKBONE).unwrap().kind.bitrate(),
            1_000_000_000
        );
        assert_eq!(topo.bus(buses::BODY_CAN).unwrap().kind.bitrate(), 500_000);
    }
}
