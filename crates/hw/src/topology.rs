//! Network topology: buses and the ECUs attached to them.
//!
//! A vehicle network is modeled as a bipartite graph of ECUs and buses; an
//! ECU attached to two buses acts as a gateway. [`HwTopology::route`] finds
//! the bus sequence a message must traverse between two ECUs, which the
//! verification engine and the middleware both use.

use crate::ecu::EcuSpec;
use dynplat_common::{BusId, EcuId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The physical layer of a bus segment, with its headline rate in bit/s.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BusKind {
    /// Controller Area Network; classic rates are 125/250/500 kbit/s, 1 Mbit/s.
    Can {
        /// Raw bit rate in bit/s.
        bitrate: u64,
    },
    /// FlexRay, 10 Mbit/s per channel, with a static TDMA and a dynamic
    /// minislot segment.
    FlexRay {
        /// Raw bit rate in bit/s.
        bitrate: u64,
    },
    /// Switched Ethernet (100BASE-T1 / 1000BASE-T1), optionally with TSN
    /// time-aware shaping configured in the `dynplat-net` crate.
    Ethernet {
        /// Raw bit rate in bit/s.
        bitrate: u64,
    },
}

impl BusKind {
    /// The raw bit rate of this segment in bit/s.
    pub fn bitrate(self) -> u64 {
        match self {
            BusKind::Can { bitrate }
            | BusKind::FlexRay { bitrate }
            | BusKind::Ethernet { bitrate } => bitrate,
        }
    }

    /// 500 kbit/s CAN, the most common configuration.
    pub const fn can_500k() -> BusKind {
        BusKind::Can { bitrate: 500_000 }
    }

    /// 10 Mbit/s FlexRay.
    pub const fn flexray_10m() -> BusKind {
        BusKind::FlexRay {
            bitrate: 10_000_000,
        }
    }

    /// 100 Mbit/s automotive Ethernet.
    pub const fn ethernet_100m() -> BusKind {
        BusKind::Ethernet {
            bitrate: 100_000_000,
        }
    }

    /// 1 Gbit/s automotive Ethernet.
    pub const fn ethernet_1g() -> BusKind {
        BusKind::Ethernet {
            bitrate: 1_000_000_000,
        }
    }
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Can { bitrate } => write!(f, "CAN@{bitrate}"),
            BusKind::FlexRay { bitrate } => write!(f, "FlexRay@{bitrate}"),
            BusKind::Ethernet { bitrate } => write!(f, "Ethernet@{bitrate}"),
        }
    }
}

/// A bus segment and its attached ECUs.
#[derive(Clone, Debug, PartialEq)]
pub struct BusSpec {
    /// Segment identifier.
    pub id: BusId,
    /// Human-readable name.
    pub name: String,
    /// Physical layer.
    pub kind: BusKind,
    /// ECUs attached to this segment.
    pub attached: BTreeSet<EcuId>,
}

impl BusSpec {
    /// Creates a bus spec.
    pub fn new(
        id: BusId,
        name: impl Into<String>,
        kind: BusKind,
        attached: impl IntoIterator<Item = EcuId>,
    ) -> Self {
        BusSpec {
            id,
            name: name.into(),
            kind,
            attached: attached.into_iter().collect(),
        }
    }
}

/// A hop-by-hop path between two ECUs, as a sequence of buses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Route {
    /// Buses traversed in order; empty means source and destination are the
    /// same ECU (local delivery).
    pub buses: Vec<BusId>,
}

impl Route {
    /// Number of bus hops.
    pub fn hops(&self) -> usize {
        self.buses.len()
    }

    /// `true` for same-ECU delivery.
    pub fn is_local(&self) -> bool {
        self.buses.is_empty()
    }
}

/// Errors raised by topology construction and queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A bus referenced an ECU that is not part of the topology.
    UnknownEcu(EcuId),
    /// Two ECUs share the same identifier.
    DuplicateEcu(EcuId),
    /// Two buses share the same identifier.
    DuplicateBus(BusId),
    /// No path exists between the two ECUs.
    NoRoute(EcuId, EcuId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownEcu(id) => write!(f, "bus references unknown ECU {id}"),
            TopologyError::DuplicateEcu(id) => write!(f, "duplicate ECU id {id}"),
            TopologyError::DuplicateBus(id) => write!(f, "duplicate bus id {id}"),
            TopologyError::NoRoute(a, b) => write!(f, "no route between {a} and {b}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The complete hardware architecture: ECUs plus the interconnecting network.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HwTopology {
    ecus: BTreeMap<EcuId, EcuSpec>,
    buses: BTreeMap<BusId, BusSpec>,
}

impl HwTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        HwTopology::default()
    }

    /// Builds a topology from parts, validating referential integrity.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateEcu`], [`TopologyError::DuplicateBus`]
    /// or [`TopologyError::UnknownEcu`] on inconsistent input.
    pub fn from_parts(
        ecus: impl IntoIterator<Item = EcuSpec>,
        buses: impl IntoIterator<Item = BusSpec>,
    ) -> Result<Self, TopologyError> {
        let mut topo = HwTopology::new();
        for ecu in ecus {
            topo.add_ecu(ecu)?;
        }
        for bus in buses {
            topo.add_bus(bus)?;
        }
        Ok(topo)
    }

    /// Adds an ECU.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateEcu`] if the id is taken.
    pub fn add_ecu(&mut self, ecu: EcuSpec) -> Result<(), TopologyError> {
        if self.ecus.contains_key(&ecu.id()) {
            return Err(TopologyError::DuplicateEcu(ecu.id()));
        }
        self.ecus.insert(ecu.id(), ecu);
        Ok(())
    }

    /// Adds a bus, checking all attached ECUs exist.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateBus`] or [`TopologyError::UnknownEcu`].
    pub fn add_bus(&mut self, bus: BusSpec) -> Result<(), TopologyError> {
        if self.buses.contains_key(&bus.id) {
            return Err(TopologyError::DuplicateBus(bus.id));
        }
        for ecu in &bus.attached {
            if !self.ecus.contains_key(ecu) {
                return Err(TopologyError::UnknownEcu(*ecu));
            }
        }
        self.buses.insert(bus.id, bus);
        Ok(())
    }

    /// Looks up an ECU.
    pub fn ecu(&self, id: EcuId) -> Option<&EcuSpec> {
        self.ecus.get(&id)
    }

    /// Looks up a bus.
    pub fn bus(&self, id: BusId) -> Option<&BusSpec> {
        self.buses.get(&id)
    }

    /// All ECUs, ordered by id.
    pub fn ecus(&self) -> impl Iterator<Item = &EcuSpec> {
        self.ecus.values()
    }

    /// All buses, ordered by id.
    pub fn buses(&self) -> impl Iterator<Item = &BusSpec> {
        self.buses.values()
    }

    /// Number of ECUs.
    pub fn ecu_count(&self) -> usize {
        self.ecus.len()
    }

    /// Buses the given ECU is attached to.
    pub fn buses_of(&self, ecu: EcuId) -> impl Iterator<Item = &BusSpec> {
        self.buses
            .values()
            .filter(move |b| b.attached.contains(&ecu))
    }

    /// `true` if `ecu` bridges two or more buses.
    pub fn is_gateway(&self, ecu: EcuId) -> bool {
        self.buses_of(ecu).take(2).count() >= 2
    }

    /// Finds the minimum-hop bus path from `src` to `dst` by breadth-first
    /// search over the ECU/bus bipartite graph.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownEcu`] for unknown endpoints and
    /// [`TopologyError::NoRoute`] for disconnected ones.
    pub fn route(&self, src: EcuId, dst: EcuId) -> Result<Route, TopologyError> {
        if !self.ecus.contains_key(&src) {
            return Err(TopologyError::UnknownEcu(src));
        }
        if !self.ecus.contains_key(&dst) {
            return Err(TopologyError::UnknownEcu(dst));
        }
        if src == dst {
            return Ok(Route::default());
        }
        // BFS over ECUs; remember the bus taken to reach each ECU.
        let mut prev: BTreeMap<EcuId, (EcuId, BusId)> = BTreeMap::new();
        let mut visited: BTreeSet<EcuId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        visited.insert(src);
        queue.push_back(src);
        'search: while let Some(cur) = queue.pop_front() {
            for bus in self.buses_of(cur) {
                for &next in &bus.attached {
                    if visited.insert(next) {
                        prev.insert(next, (cur, bus.id));
                        if next == dst {
                            break 'search;
                        }
                        queue.push_back(next);
                    }
                }
            }
        }
        if !prev.contains_key(&dst) {
            return Err(TopologyError::NoRoute(src, dst));
        }
        let mut buses = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, bus) = prev[&cur];
            buses.push(bus);
            cur = p;
        }
        buses.reverse();
        Ok(Route { buses })
    }

    /// Total acquisition cost of all ECUs — a DSE objective.
    pub fn total_cost(&self) -> u64 {
        self.ecus.values().map(|e| u64::from(e.cost())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecu::EcuClass;

    fn three_ecu_two_bus() -> HwTopology {
        // ecu0 --can-- ecu1(gateway) --eth-- ecu2
        let ecus = [
            EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
            EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
            EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
        ];
        let buses = [
            BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
            BusSpec::new(
                BusId(1),
                "eth0",
                BusKind::ethernet_100m(),
                [EcuId(1), EcuId(2)],
            ),
        ];
        HwTopology::from_parts(ecus, buses).unwrap()
    }

    #[test]
    fn direct_route_is_single_hop() {
        let t = three_ecu_two_bus();
        let r = t.route(EcuId(0), EcuId(1)).unwrap();
        assert_eq!(r.buses, vec![BusId(0)]);
        assert_eq!(r.hops(), 1);
    }

    #[test]
    fn gateway_route_is_two_hops() {
        let t = three_ecu_two_bus();
        let r = t.route(EcuId(0), EcuId(2)).unwrap();
        assert_eq!(r.buses, vec![BusId(0), BusId(1)]);
        assert!(t.is_gateway(EcuId(1)));
        assert!(!t.is_gateway(EcuId(0)));
    }

    #[test]
    fn local_route_is_empty() {
        let t = three_ecu_two_bus();
        let r = t.route(EcuId(2), EcuId(2)).unwrap();
        assert!(r.is_local());
    }

    #[test]
    fn disconnected_ecus_have_no_route() {
        let mut t = three_ecu_two_bus();
        t.add_ecu(EcuSpec::of_class(EcuId(9), "island", EcuClass::LowEnd))
            .unwrap();
        assert_eq!(
            t.route(EcuId(0), EcuId(9)),
            Err(TopologyError::NoRoute(EcuId(0), EcuId(9)))
        );
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let t = three_ecu_two_bus();
        assert_eq!(
            t.route(EcuId(7), EcuId(0)),
            Err(TopologyError::UnknownEcu(EcuId(7)))
        );
        assert_eq!(
            t.route(EcuId(0), EcuId(7)),
            Err(TopologyError::UnknownEcu(EcuId(7)))
        );
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut t = three_ecu_two_bus();
        let dup = EcuSpec::of_class(EcuId(0), "dup", EcuClass::LowEnd);
        assert_eq!(t.add_ecu(dup), Err(TopologyError::DuplicateEcu(EcuId(0))));
        let dup_bus = BusSpec::new(BusId(0), "dup", BusKind::can_500k(), [EcuId(0)]);
        assert_eq!(
            t.add_bus(dup_bus),
            Err(TopologyError::DuplicateBus(BusId(0)))
        );
    }

    #[test]
    fn bus_referencing_unknown_ecu_is_rejected() {
        let mut t = HwTopology::new();
        let bus = BusSpec::new(BusId(0), "b", BusKind::can_500k(), [EcuId(5)]);
        assert_eq!(t.add_bus(bus), Err(TopologyError::UnknownEcu(EcuId(5))));
    }

    #[test]
    fn cost_sums_over_ecus() {
        let t = three_ecu_two_bus();
        assert_eq!(t.total_cost(), 8 + 35 + 220);
    }

    #[test]
    fn bus_kind_accessors() {
        assert_eq!(BusKind::can_500k().bitrate(), 500_000);
        assert_eq!(BusKind::ethernet_1g().bitrate(), 1_000_000_000);
        assert_eq!(BusKind::flexray_10m().to_string(), "FlexRay@10000000");
    }
}
