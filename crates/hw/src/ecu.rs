//! ECU specifications.
//!
//! The paper motivates the move to dynamic platforms with today's hardware
//! reality: "current ECUs typically contain CPUs with 200 MHz or less" (§1),
//! which cannot carry AI/ADAS workloads, while consolidated platform ECUs
//! bring application-class CPUs, GPUs and hardware crypto. [`EcuClass`]
//! captures these canonical tiers; [`EcuSpec`] is the fully attributed model
//! the verification engine and DSE operate on.

use dynplat_common::time::SimDuration;
use dynplat_common::EcuId;
use std::fmt;

/// CPU attributes of an ECU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuSpec {
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Number of cores.
    pub cores: u8,
    /// Throughput in million instructions per second (all cores combined).
    pub mips: u32,
}

impl CpuSpec {
    /// Creates a CPU spec.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(freq_mhz: u32, cores: u8, mips: u32) -> Self {
        assert!(
            freq_mhz > 0 && cores > 0 && mips > 0,
            "CPU attributes must be non-zero"
        );
        CpuSpec {
            freq_mhz,
            cores,
            mips,
        }
    }

    /// Time to execute `instructions` million instructions on this CPU,
    /// assuming full availability of one core's proportional share.
    pub fn exec_time(&self, mega_instructions: f64) -> SimDuration {
        SimDuration::from_secs_f64(mega_instructions / self.mips as f64)
    }

    /// Scaling factor relative to a reference CPU: how much longer work
    /// takes here than on `reference`.
    pub fn slowdown_vs(&self, reference: &CpuSpec) -> f64 {
        reference.mips as f64 / self.mips as f64
    }
}

/// Hardware support for cryptographic operations (§4.1: "not all ECUs might
/// have sufficient power to perform cryptographic operations at runtime").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CryptoSupport {
    /// No usable crypto capability: must delegate verification to an update
    /// master (§4.1).
    None,
    /// Crypto in software only — functional but slow.
    #[default]
    Software,
    /// Dedicated accelerator block (e.g. SHE-class).
    Accelerator,
    /// Full hardware security module with key storage.
    Hsm,
}

impl CryptoSupport {
    /// Relative cost factor for one signature verification compared to an
    /// accelerator (1.0). [`CryptoSupport::None`] returns `None`: the ECU
    /// cannot verify at all.
    pub fn verify_cost_factor(self) -> Option<f64> {
        match self {
            CryptoSupport::None => None,
            CryptoSupport::Software => Some(20.0),
            CryptoSupport::Accelerator => Some(1.0),
            CryptoSupport::Hsm => Some(0.8),
        }
    }

    /// `true` if the ECU can verify signatures locally.
    pub fn can_verify(self) -> bool {
        !matches!(self, CryptoSupport::None)
    }
}

impl fmt::Display for CryptoSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoSupport::None => write!(f, "none"),
            CryptoSupport::Software => write!(f, "software"),
            CryptoSupport::Accelerator => write!(f, "accelerator"),
            CryptoSupport::Hsm => write!(f, "hsm"),
        }
    }
}

/// Canonical ECU tiers of the automotive landscape the paper describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EcuClass {
    /// Classic body/comfort controller: ≤200 MHz, no MMU, no GPU, software
    /// crypto at best. The "smallest unit of electronics" of §1.
    LowEnd,
    /// Domain controller: a few hundred MHz, MMU, accelerator crypto.
    Domain,
    /// Consolidated high-performance platform ECU: GHz-class multicore,
    /// MMU, HSM, GPU — the substrate of the dynamic platform (§1.1).
    HighPerformance,
}

impl EcuClass {
    /// The default attribute set of this class.
    pub fn default_spec(self) -> (CpuSpec, u32, bool, CryptoSupport, bool, u32) {
        // (cpu, ram_kib, mmu, crypto, gpu, cost)
        match self {
            EcuClass::LowEnd => (
                CpuSpec::new(160, 1, 160),
                512,
                false,
                CryptoSupport::None,
                false,
                8,
            ),
            EcuClass::Domain => (
                CpuSpec::new(600, 2, 1_200),
                16 * 1024,
                true,
                CryptoSupport::Accelerator,
                false,
                35,
            ),
            EcuClass::HighPerformance => (
                CpuSpec::new(2_000, 8, 24_000),
                4 * 1024 * 1024,
                true,
                CryptoSupport::Hsm,
                true,
                220,
            ),
        }
    }
}

impl fmt::Display for EcuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcuClass::LowEnd => write!(f, "low-end"),
            EcuClass::Domain => write!(f, "domain"),
            EcuClass::HighPerformance => write!(f, "high-performance"),
        }
    }
}

/// A fully attributed ECU model.
#[derive(Clone, Debug, PartialEq)]
pub struct EcuSpec {
    id: EcuId,
    name: String,
    cpu: CpuSpec,
    ram_kib: u32,
    mmu: bool,
    crypto: CryptoSupport,
    gpu: bool,
    cost: u32,
}

impl EcuSpec {
    /// Starts building an ECU spec; defaults correspond to
    /// [`EcuClass::Domain`].
    pub fn builder(id: EcuId, name: impl Into<String>) -> EcuSpecBuilder {
        EcuSpecBuilder::new(id, name)
    }

    /// Creates an ECU directly from a class preset.
    pub fn of_class(id: EcuId, name: impl Into<String>, class: EcuClass) -> EcuSpec {
        EcuSpecBuilder::new(id, name).class(class).build()
    }

    /// The ECU identifier.
    pub fn id(&self) -> EcuId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CPU attributes.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// RAM in KiB.
    pub fn ram_kib(&self) -> u32 {
        self.ram_kib
    }

    /// Whether a memory management unit is present. Without an MMU the
    /// platform cannot enforce memory freedom-of-interference (§3.1) and
    /// only a single process group is allowed.
    pub fn has_mmu(&self) -> bool {
        self.mmu
    }

    /// Crypto capability tier.
    pub fn crypto(&self) -> CryptoSupport {
        self.crypto
    }

    /// Whether a GPU is available (neural-network workloads, §1).
    pub fn has_gpu(&self) -> bool {
        self.gpu
    }

    /// Unit cost used by DSE objectives.
    pub fn cost(&self) -> u32 {
        self.cost
    }
}

impl fmt::Display for EcuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} MHz x{}, {} KiB RAM, mmu={}, crypto={}, gpu={}",
            self.name,
            self.id,
            self.cpu.freq_mhz,
            self.cpu.cores,
            self.ram_kib,
            self.mmu,
            self.crypto,
            self.gpu
        )
    }
}

/// Builder for [`EcuSpec`] (C-BUILDER).
#[derive(Clone, Debug)]
pub struct EcuSpecBuilder {
    id: EcuId,
    name: String,
    cpu: CpuSpec,
    ram_kib: u32,
    mmu: bool,
    crypto: CryptoSupport,
    gpu: bool,
    cost: u32,
}

impl EcuSpecBuilder {
    fn new(id: EcuId, name: impl Into<String>) -> Self {
        let (cpu, ram_kib, mmu, crypto, gpu, cost) = EcuClass::Domain.default_spec();
        EcuSpecBuilder {
            id,
            name: name.into(),
            cpu,
            ram_kib,
            mmu,
            crypto,
            gpu,
            cost,
        }
    }

    /// Applies all presets of `class`, keeping id and name.
    pub fn class(mut self, class: EcuClass) -> Self {
        let (cpu, ram_kib, mmu, crypto, gpu, cost) = class.default_spec();
        self.cpu = cpu;
        self.ram_kib = ram_kib;
        self.mmu = mmu;
        self.crypto = crypto;
        self.gpu = gpu;
        self.cost = cost;
        self
    }

    /// Sets the CPU attributes.
    pub fn cpu(mut self, cpu: CpuSpec) -> Self {
        self.cpu = cpu;
        self
    }

    /// Sets the RAM size in KiB.
    pub fn ram_kib(mut self, ram_kib: u32) -> Self {
        self.ram_kib = ram_kib;
        self
    }

    /// Sets MMU presence.
    pub fn mmu(mut self, mmu: bool) -> Self {
        self.mmu = mmu;
        self
    }

    /// Sets the crypto tier.
    pub fn crypto(mut self, crypto: CryptoSupport) -> Self {
        self.crypto = crypto;
        self
    }

    /// Sets GPU presence.
    pub fn gpu(mut self, gpu: bool) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets the unit cost.
    pub fn cost(mut self, cost: u32) -> Self {
        self.cost = cost;
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> EcuSpec {
        EcuSpec {
            id: self.id,
            name: self.name,
            cpu: self.cpu,
            ram_kib: self.ram_kib,
            mmu: self.mmu,
            crypto: self.crypto,
            gpu: self.gpu,
            cost: self.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_presets_are_ordered_by_capability() {
        let (lo, ..) = EcuClass::LowEnd.default_spec();
        let (dom, ..) = EcuClass::Domain.default_spec();
        let (hp, ..) = EcuClass::HighPerformance.default_spec();
        assert!(lo.mips < dom.mips && dom.mips < hp.mips);
        assert!(
            lo.freq_mhz <= 200,
            "paper: current ECUs are 200 MHz or less"
        );
    }

    #[test]
    fn builder_overrides_class_defaults() {
        let ecu = EcuSpec::builder(EcuId(3), "gateway")
            .class(EcuClass::LowEnd)
            .crypto(CryptoSupport::Software)
            .ram_kib(1024)
            .build();
        assert_eq!(ecu.id(), EcuId(3));
        assert_eq!(ecu.name(), "gateway");
        assert!(!ecu.has_mmu());
        assert_eq!(ecu.crypto(), CryptoSupport::Software);
        assert_eq!(ecu.ram_kib(), 1024);
    }

    #[test]
    fn exec_time_scales_inversely_with_mips() {
        let slow = CpuSpec::new(160, 1, 160);
        let fast = CpuSpec::new(2_000, 8, 24_000);
        let work = 16.0; // 16 million instructions
        assert_eq!(slow.exec_time(work), SimDuration::from_millis(100));
        assert!(fast.exec_time(work) < SimDuration::from_millis(1));
        assert!(slow.slowdown_vs(&fast) > 100.0);
    }

    #[test]
    fn crypto_cost_factors() {
        assert_eq!(CryptoSupport::None.verify_cost_factor(), None);
        assert!(!CryptoSupport::None.can_verify());
        let sw = CryptoSupport::Software.verify_cost_factor().unwrap();
        let acc = CryptoSupport::Accelerator.verify_cost_factor().unwrap();
        let hsm = CryptoSupport::Hsm.verify_cost_factor().unwrap();
        assert!(sw > acc && acc > hsm);
    }

    #[test]
    fn display_is_informative() {
        let ecu = EcuSpec::of_class(EcuId(1), "body", EcuClass::LowEnd);
        let s = ecu.to_string();
        assert!(s.contains("body"));
        assert!(s.contains("ecu1"));
        assert!(s.contains("crypto=none"));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_cpu_attributes_panic() {
        CpuSpec::new(0, 1, 100);
    }
}
