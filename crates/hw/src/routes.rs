//! Dense route cache over a static topology.
//!
//! [`HwTopology::route`] runs a breadth-first search with fresh `BTreeMap`/
//! `BTreeSet`/`VecDeque` allocations on every call. That is fine for
//! one-off queries, but the communication fabric resolves a route for
//! *every injected message*, and topologies are static for the lifetime of
//! a simulation run. [`RouteCache`] memoizes routes in a dense
//! `(src, dst)`-indexed table: the first query from a source runs one
//! arena-based BFS that fills the whole row (routes to every destination),
//! and every later query is an array lookup plus an `Arc` clone.
//!
//! The cache is built against a snapshot of the topology and reproduces
//! [`HwTopology::route`] exactly — same minimum-hop paths, same
//! tie-breaking (buses visited in ascending `BusId` order, ECUs in
//! ascending `EcuId` order), same errors. `tests/properties3.rs` checks
//! this equivalence over randomized topologies.

use crate::topology::{HwTopology, Route, TopologyError};
use dynplat_common::{BusId, EcuId};
use std::sync::Arc;

/// Sentinel for "no dense index" in lookup tables.
const ABSENT: u32 = u32::MAX;

/// A memoized all-pairs routing table over one (static) topology.
///
/// Rows are filled lazily: the first `(src, *)` query runs a single BFS
/// from `src` and caches the route to every reachable destination, so `k`
/// distinct sources cost `k` searches total no matter how many messages
/// are routed. Cached paths are shared via `Arc`, so handing a route to a
/// caller is a reference-count bump, not a `Vec` clone.
#[derive(Clone, Debug)]
pub struct RouteCache {
    /// Dense index -> ECU id (ascending, mirroring `HwTopology::ecus`).
    ecu_ids: Vec<EcuId>,
    /// Raw ECU id -> dense index (`ABSENT` when the id is unknown).
    ecu_lookup: Vec<u32>,
    /// CSR offsets into `adj`, one entry per ECU plus a tail sentinel.
    adj_off: Vec<u32>,
    /// Flattened adjacency in BFS visit order: for each ECU, its buses in
    /// ascending `BusId` order, each bus's other attached ECUs in
    /// ascending `EcuId` order.
    adj: Vec<(BusId, u32)>,
    /// Whether the BFS row for a source has been computed yet.
    row_done: Vec<bool>,
    /// `src * n + dst` -> cached path (`None` = unreachable once the row
    /// is done).
    paths: Vec<Option<Arc<[BusId]>>>,
    /// The shared empty path returned for local (same-ECU) routes.
    empty: Arc<[BusId]>,
    /// BFS scratch: predecessor ECU and the bus taken to reach it.
    prev: Vec<(u32, BusId)>,
    /// BFS scratch: visited marks.
    seen: Vec<bool>,
}

impl RouteCache {
    /// Builds a cache over a snapshot of `topology`.
    ///
    /// The cache does not observe later topology mutations; rebuild it if
    /// ECUs or buses are added.
    pub fn new(topology: &HwTopology) -> Self {
        let ecu_ids: Vec<EcuId> = topology.ecus().map(|e| e.id()).collect();
        let n = ecu_ids.len();
        let max_raw = ecu_ids.iter().map(|e| e.raw() as usize).max();
        let mut ecu_lookup = vec![ABSENT; max_raw.map_or(0, |m| m + 1)];
        for (i, id) in ecu_ids.iter().enumerate() {
            ecu_lookup[id.raw() as usize] = i as u32;
        }
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        for &ecu in &ecu_ids {
            adj_off.push(adj.len() as u32);
            // `buses_of` yields buses in ascending id order and `attached`
            // is a sorted set: the flattened order matches the visit order
            // of `HwTopology::route`'s BFS exactly.
            for bus in topology.buses_of(ecu) {
                for &next in &bus.attached {
                    if next != ecu {
                        adj.push((bus.id, ecu_lookup[next.raw() as usize]));
                    }
                }
            }
        }
        adj_off.push(adj.len() as u32);
        RouteCache {
            ecu_ids,
            ecu_lookup,
            adj_off,
            adj,
            row_done: vec![false; n],
            paths: vec![None; n * n],
            empty: Arc::from(Vec::new().into_boxed_slice()),
            prev: vec![(ABSENT, BusId(0)); n],
            seen: vec![false; n],
        }
    }

    /// Number of ECUs the cache covers.
    pub fn ecu_count(&self) -> usize {
        self.ecu_ids.len()
    }

    fn index_of(&self, ecu: EcuId) -> Option<u32> {
        match self.ecu_lookup.get(ecu.raw() as usize) {
            Some(&i) if i != ABSENT => Some(i),
            _ => None,
        }
    }

    /// Runs one BFS from `src` and fills the whole `(src, *)` row.
    fn fill_row(&mut self, src: u32) {
        let n = self.ecu_ids.len();
        self.seen.iter_mut().for_each(|s| *s = false);
        self.seen[src as usize] = true;
        // Reuse `paths` row slots as the BFS queue bookkeeping is cheap:
        // a plain Vec head cursor avoids a VecDeque allocation.
        let mut queue: Vec<u32> = Vec::with_capacity(n);
        let mut head = 0usize;
        queue.push(src);
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let lo = self.adj_off[cur as usize] as usize;
            let hi = self.adj_off[cur as usize + 1] as usize;
            for &(bus, next) in &self.adj[lo..hi] {
                if !self.seen[next as usize] {
                    self.seen[next as usize] = true;
                    self.prev[next as usize] = (cur, bus);
                    queue.push(next);
                }
            }
        }
        let row = src as usize * n;
        for dst in 0..n as u32 {
            if dst == src {
                continue; // local: handled without a table entry
            }
            self.paths[row + dst as usize] = if self.seen[dst as usize] {
                let mut buses = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (p, bus) = self.prev[cur as usize];
                    buses.push(bus);
                    cur = p;
                }
                buses.reverse();
                Some(Arc::from(buses.into_boxed_slice()))
            } else {
                None
            };
        }
        self.row_done[src as usize] = true;
    }

    /// The bus path from `src` to `dst`, shared with the cache. Empty for
    /// same-ECU (local) delivery.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownEcu`] for unknown endpoints and
    /// [`TopologyError::NoRoute`] for disconnected ones — identical to
    /// [`HwTopology::route`].
    pub fn route_buses(&mut self, src: EcuId, dst: EcuId) -> Result<Arc<[BusId]>, TopologyError> {
        let s = self.index_of(src).ok_or(TopologyError::UnknownEcu(src))?;
        let d = self.index_of(dst).ok_or(TopologyError::UnknownEcu(dst))?;
        if s == d {
            return Ok(self.empty.clone());
        }
        if !self.row_done[s as usize] {
            self.fill_row(s);
        }
        self.paths[s as usize * self.ecu_ids.len() + d as usize]
            .clone()
            .ok_or(TopologyError::NoRoute(src, dst))
    }

    /// The bus path from `src` to `dst` as a borrowed slice — the hot-path
    /// variant of [`RouteCache::route_buses`] for callers that copy or
    /// inspect the route immediately: no `Arc` refcount traffic.
    ///
    /// # Errors
    ///
    /// Same contract as [`RouteCache::route_buses`].
    pub fn route_slice(&mut self, src: EcuId, dst: EcuId) -> Result<&[BusId], TopologyError> {
        let s = self.index_of(src).ok_or(TopologyError::UnknownEcu(src))?;
        let d = self.index_of(dst).ok_or(TopologyError::UnknownEcu(dst))?;
        if s == d {
            return Ok(&[]);
        }
        if !self.row_done[s as usize] {
            self.fill_row(s);
        }
        match &self.paths[s as usize * self.ecu_ids.len() + d as usize] {
            Some(p) => Ok(p),
            None => Err(TopologyError::NoRoute(src, dst)),
        }
    }

    /// The dense index of an ECU, usable with batch helpers that want to
    /// avoid repeated id translation. `None` for unknown ECUs.
    pub fn ecu_index(&self, ecu: EcuId) -> Option<usize> {
        self.index_of(ecu).map(|i| i as usize)
    }

    /// Warms the `(src, *)` row: one BFS fills the route to *every*
    /// destination, so a batch fanout from `src` resolves each leg with a
    /// plain table lookup. A no-op when the row is already filled.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownEcu`] when `src` is not in the
    /// topology.
    pub fn prefetch(&mut self, src: EcuId) -> Result<(), TopologyError> {
        let s = self.index_of(src).ok_or(TopologyError::UnknownEcu(src))?;
        if !self.row_done[s as usize] {
            self.fill_row(s);
        }
        Ok(())
    }

    /// The route from `src` to `dst` as an owned [`Route`], for drop-in
    /// compatibility with [`HwTopology::route`].
    ///
    /// # Errors
    ///
    /// Same contract as [`HwTopology::route`].
    pub fn route(&mut self, src: EcuId, dst: EcuId) -> Result<Route, TopologyError> {
        self.route_buses(src, dst).map(|buses| Route {
            buses: buses.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecu::{EcuClass, EcuSpec};
    use crate::topology::{BusKind, BusSpec};

    fn topo() -> HwTopology {
        // ecu0 --can0-- ecu1(gateway) --eth0-- ecu2, ecu9 isolated
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
                EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
                EcuSpec::of_class(EcuId(9), "island", EcuClass::LowEnd),
            ],
            [
                BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
                BusSpec::new(
                    BusId(1),
                    "eth0",
                    BusKind::ethernet_100m(),
                    [EcuId(1), EcuId(2)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cache_matches_fresh_bfs_on_all_pairs() {
        let t = topo();
        let mut cache = RouteCache::new(&t);
        for src in [0u16, 1, 2, 9] {
            for dst in [0u16, 1, 2, 9] {
                let fresh = t.route(EcuId(src), EcuId(dst));
                let cached = cache.route(EcuId(src), EcuId(dst));
                assert_eq!(cached, fresh, "pair {src}->{dst}");
                // Second query exercises the memoized path.
                assert_eq!(cache.route(EcuId(src), EcuId(dst)), fresh);
            }
        }
    }

    #[test]
    fn unknown_endpoints_are_rejected() {
        let t = topo();
        let mut cache = RouteCache::new(&t);
        assert_eq!(
            cache.route(EcuId(7), EcuId(0)),
            Err(TopologyError::UnknownEcu(EcuId(7)))
        );
        assert_eq!(
            cache.route(EcuId(0), EcuId(7)),
            Err(TopologyError::UnknownEcu(EcuId(7)))
        );
    }

    #[test]
    fn local_routes_share_the_empty_path() {
        let t = topo();
        let mut cache = RouteCache::new(&t);
        let a = cache.route_buses(EcuId(2), EcuId(2)).unwrap();
        let b = cache.route_buses(EcuId(0), EcuId(0)).unwrap();
        assert!(a.is_empty() && b.is_empty());
        assert!(Arc::ptr_eq(&a, &b), "one shared empty allocation");
    }

    #[test]
    fn repeated_queries_share_one_path_allocation() {
        let t = topo();
        let mut cache = RouteCache::new(&t);
        let a = cache.route_buses(EcuId(0), EcuId(2)).unwrap();
        let b = cache.route_buses(EcuId(0), EcuId(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, &[BusId(0), BusId(1)]);
    }

    #[test]
    fn prefetch_fills_the_row_once() {
        let t = topo();
        let mut cache = RouteCache::new(&t);
        cache.prefetch(EcuId(0)).unwrap();
        // All destinations from ECU 0 now resolve to the same answers as
        // a fresh BFS, including the unreachable island.
        assert_eq!(
            cache.route_buses(EcuId(0), EcuId(2)).unwrap().as_ref(),
            &[BusId(0), BusId(1)]
        );
        assert_eq!(
            cache.route(EcuId(0), EcuId(9)),
            Err(TopologyError::NoRoute(EcuId(0), EcuId(9)))
        );
        assert_eq!(
            cache.prefetch(EcuId(7)),
            Err(TopologyError::UnknownEcu(EcuId(7)))
        );
        assert_eq!(cache.ecu_index(EcuId(2)), Some(2));
        assert_eq!(cache.ecu_index(EcuId(7)), None);
    }

    #[test]
    fn empty_topology_is_handled() {
        let t = HwTopology::new();
        let mut cache = RouteCache::new(&t);
        assert_eq!(cache.ecu_count(), 0);
        assert_eq!(
            cache.route(EcuId(0), EcuId(1)),
            Err(TopologyError::UnknownEcu(EcuId(0)))
        );
    }
}
