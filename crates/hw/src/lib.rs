//! Hardware architecture substrate.
//!
//! The paper's §2.2 requires the hardware-architecture DSL to "define all
//! required ECUs, including all attributes to be checked (e.g., computational
//! and storage resources, hardware support for encryption, etc.) and the
//! communication network interconnecting them". This crate is the semantic
//! domain of that DSL:
//!
//! * [`ecu`] — ECU specifications: CPU, memory, MMU, crypto support, GPU,
//!   cost; plus the canonical ECU classes of today's vehicles (≤200 MHz body
//!   controllers) and tomorrow's consolidated platforms;
//! * [`topology`] — buses and which ECUs attach to them, with multi-hop
//!   route discovery across gateway ECUs;
//! * [`routes`] — a dense, lazily filled route cache for hot paths that
//!   resolve the same pairs repeatedly (the communication fabric);
//! * [`mod@reference`] — the canonical transition-era vehicle network used by
//!   experiments and examples.
//!
//! # Examples
//!
//! ```
//! use dynplat_hw::ecu::{CryptoSupport, EcuClass, EcuSpec};
//! use dynplat_common::EcuId;
//!
//! let ecu = EcuSpec::builder(EcuId(1), "zone-controller")
//!     .class(EcuClass::HighPerformance)
//!     .crypto(CryptoSupport::Accelerator)
//!     .build();
//! assert!(ecu.has_mmu());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecu;
pub mod reference;
pub mod routes;
pub mod topology;

pub use ecu::{CpuSpec, CryptoSupport, EcuClass, EcuSpec, EcuSpecBuilder};
pub use reference::reference_vehicle;
pub use routes::RouteCache;
pub use topology::{BusKind, BusSpec, HwTopology, Route, TopologyError};
