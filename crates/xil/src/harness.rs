//! Test harness, suites and fault injection across XiL levels.

use crate::control::VirtualControlUnit;
use crate::level::TestLevel;
use dynplat_common::time::SimDuration;
use dynplat_common::Asil;

/// One closed-loop test case: drive the unit to `setpoint` for `steps`
/// samples; pass when the final tracking error is within `tolerance`.
#[derive(Clone, Debug, PartialEq)]
pub struct TestCase {
    /// Name for reports.
    pub name: String,
    /// Commanded setpoint.
    pub setpoint: f64,
    /// Samples to run.
    pub steps: u32,
    /// Accepted final absolute error.
    pub tolerance: f64,
}

impl TestCase {
    /// Creates a test case.
    pub fn new(name: impl Into<String>, setpoint: f64, steps: u32, tolerance: f64) -> Self {
        TestCase {
            name: name.into(),
            setpoint,
            steps,
            tolerance,
        }
    }
}

/// Result of one test case.
#[derive(Clone, Debug, PartialEq)]
pub struct TestOutcome {
    /// Test name.
    pub name: String,
    /// Whether the pass criterion held.
    pub passed: bool,
    /// Final tracking error.
    pub final_error: f64,
    /// Samples executed (may stop early on divergence).
    pub executed_steps: u32,
}

/// Aggregated result of a suite run at one level.
#[derive(Clone, Debug, PartialEq)]
pub struct TestRunReport {
    /// Level the suite ran at.
    pub level: TestLevel,
    /// Per-case outcomes.
    pub outcomes: Vec<TestOutcome>,
    /// Modeled wall-clock cost of the whole run (setup + execution).
    pub wall_clock: SimDuration,
}

impl TestRunReport {
    /// Number of failed cases.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.passed).count()
    }

    /// `true` when everything passed.
    pub fn all_passed(&self) -> bool {
        self.failures() == 0
    }
}

/// Fault injection request: flip the unit to its buggy variant from a given
/// sample onward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInjection {
    /// Sample index at which the defect becomes active.
    pub at_step: u32,
}

/// The XiL harness: runs suites of closed-loop tests against a virtual
/// control unit at a chosen level, accounting modeled wall-clock costs.
#[derive(Clone, Debug)]
pub struct TestHarness {
    unit: VirtualControlUnit,
    buggy_unit: Option<VirtualControlUnit>,
}

impl TestHarness {
    /// Creates a harness over the unit under test.
    pub fn new(unit: VirtualControlUnit) -> Self {
        TestHarness {
            unit,
            buggy_unit: None,
        }
    }

    /// Configures the defective variant used by fault injection.
    pub fn with_buggy_variant(mut self, buggy: VirtualControlUnit) -> Self {
        self.buggy_unit = Some(buggy);
        self
    }

    /// Runs a suite at `level`.
    pub fn run_suite(&self, level: TestLevel, cases: &[TestCase]) -> TestRunReport {
        let mut outcomes = Vec::with_capacity(cases.len());
        let mut wall = level.setup_cost();
        for case in cases {
            let (outcome, steps) = self.run_case(case, None);
            wall += level.step_cost() * u64::from(steps);
            outcomes.push(outcome);
        }
        TestRunReport {
            level,
            outcomes,
            wall_clock: wall,
        }
    }

    /// Certification-style effort estimate: suite cost scaled by the
    /// ASIL-dependent test-effort factor (repeated runs, reviews,
    /// documentation — the "rigorous testing" of §1).
    pub fn certification_cost(
        &self,
        level: TestLevel,
        cases: &[TestCase],
        asil: Asil,
    ) -> SimDuration {
        let base = self.run_suite(level, cases).wall_clock;
        base.mul_f64(asil.test_effort_factor())
    }

    /// Reproduces an injected error at `level`: reruns the scenario with
    /// the buggy variant active from `injection.at_step`, stopping at the
    /// first sample whose tracking error exceeds `detect_threshold`.
    ///
    /// Returns the modeled wall clock to reproduce (setup + samples until
    /// detection) and the detection step, or `None` if the error never
    /// became observable within the scenario.
    ///
    /// # Panics
    ///
    /// Panics if no buggy variant is configured.
    pub fn reproduce_error(
        &self,
        level: TestLevel,
        case: &TestCase,
        injection: FaultInjection,
        detect_threshold: f64,
    ) -> Option<(SimDuration, u32)> {
        assert!(self.buggy_unit.is_some(), "no buggy variant configured");
        let (outcome, steps) = self.run_case_with_detection(case, injection, detect_threshold);
        let wall = level.setup_cost() + level.step_cost() * u64::from(steps);
        if outcome {
            Some((wall, steps))
        } else {
            None
        }
    }

    fn run_case(&self, case: &TestCase, injection: Option<FaultInjection>) -> (TestOutcome, u32) {
        let mut unit = self.unit.clone();
        unit.reset();
        let mut buggy = self.buggy_unit.clone();
        if let Some(b) = &mut buggy {
            b.reset();
        }
        let mut y = 0.0;
        let mut executed = 0;
        for step in 0..case.steps {
            let active: &mut VirtualControlUnit = match (&injection, &mut buggy) {
                (Some(inj), Some(b)) if step >= inj.at_step => {
                    // Carry over plant state at the injection point.
                    if step == inj.at_step {
                        b.plant = unit.plant.clone();
                        b.controller.reset();
                    }
                    b
                }
                _ => &mut unit,
            };
            y = active.step(case.setpoint);
            executed += 1;
            if !y.is_finite() || y.abs() > case.setpoint.abs() * 1e6 + 1e6 {
                break; // divergence: stop early
            }
        }
        let final_error = (y - case.setpoint).abs();
        (
            TestOutcome {
                name: case.name.clone(),
                passed: final_error <= case.tolerance && executed == case.steps,
                final_error,
                executed_steps: executed,
            },
            executed,
        )
    }

    fn run_case_with_detection(
        &self,
        case: &TestCase,
        injection: FaultInjection,
        detect_threshold: f64,
    ) -> (bool, u32) {
        let mut unit = self.unit.clone();
        unit.reset();
        let mut buggy = self.buggy_unit.clone().expect("checked by caller");
        buggy.reset();
        let mut executed = 0;
        for step in 0..case.steps {
            let y = if step >= injection.at_step {
                if step == injection.at_step {
                    buggy.plant = unit.plant.clone();
                }
                buggy.step(case.setpoint)
            } else {
                unit.step(case.setpoint)
            };
            executed += 1;
            if step > injection.at_step && (y - case.setpoint).abs() > detect_threshold {
                return (true, executed);
            }
            if !y.is_finite() {
                return (true, executed);
            }
        }
        (false, executed)
    }
}

/// A representative regression suite for the cruise-control unit.
pub fn cruise_suite() -> Vec<TestCase> {
    vec![
        TestCase::new("step-to-30", 30.0, 5_000, 0.5),
        TestCase::new("step-to-80", 80.0, 5_000, 1.0),
        TestCase::new("crawl-to-5", 5.0, 4_000, 0.25),
        TestCase::new("hold-zero", 0.0, 1_000, 0.1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::VirtualControlUnit;

    fn harness() -> TestHarness {
        TestHarness::new(VirtualControlUnit::cruise_control())
            .with_buggy_variant(VirtualControlUnit::cruise_control_buggy())
    }

    #[test]
    fn tuned_unit_passes_the_suite_at_every_level() {
        let h = harness();
        for level in TestLevel::ALL {
            let report = h.run_suite(level, &cruise_suite());
            assert!(report.all_passed(), "{level}: {:?}", report.outcomes);
        }
    }

    #[test]
    fn suite_cost_orders_mil_sil_hil() {
        let h = harness();
        let suite = cruise_suite();
        let mil = h.run_suite(TestLevel::Mil, &suite).wall_clock;
        let sil = h.run_suite(TestLevel::Sil, &suite).wall_clock;
        let hil = h.run_suite(TestLevel::Hil, &suite).wall_clock;
        assert!(mil < sil && sil < hil);
        // HiL pays flash programming + real time: at least 10x SiL here.
        assert!(hil.as_nanos() > sil.as_nanos() * 5);
    }

    #[test]
    fn buggy_unit_fails_the_suite() {
        let h = TestHarness::new(VirtualControlUnit::cruise_control_buggy());
        let report = h.run_suite(TestLevel::Sil, &cruise_suite());
        assert!(report.failures() > 0);
    }

    #[test]
    fn error_reproduction_is_cheapest_at_mil() {
        let h = harness();
        let case = TestCase::new("repro", 30.0, 10_000, 0.5);
        let injection = FaultInjection { at_step: 2_000 };
        let mil = h
            .reproduce_error(TestLevel::Mil, &case, injection, 5.0)
            .unwrap();
        let hil = h
            .reproduce_error(TestLevel::Hil, &case, injection, 5.0)
            .unwrap();
        assert_eq!(mil.1, hil.1, "same defect, same detection step");
        assert!(mil.0 < hil.0 / 10, "MiL {} vs HiL {}", mil.0, hil.0);
    }

    #[test]
    fn unobservable_fault_reports_none() {
        let h = harness();
        // Injection after the scenario ends: never observable.
        let case = TestCase::new("late", 30.0, 100, 0.5);
        let injection = FaultInjection { at_step: 99 };
        assert!(h
            .reproduce_error(TestLevel::Mil, &case, injection, 1e9)
            .is_none());
    }

    #[test]
    fn certification_cost_scales_with_asil() {
        let h = harness();
        let suite = cruise_suite();
        let qm = h.certification_cost(TestLevel::Sil, &suite, Asil::Qm);
        let d = h.certification_cost(TestLevel::Sil, &suite, Asil::D);
        assert_eq!(d, qm.mul_f64(10.0));
    }

    #[test]
    fn fault_injection_inside_run_case_fails_test() {
        let h = harness();
        let case = TestCase::new("inj", 30.0, 6_000, 0.5);
        let (outcome, _) = h.run_case(&case, Some(FaultInjection { at_step: 1_000 }));
        assert!(!outcome.passed);
    }
}
