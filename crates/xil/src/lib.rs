//! X-in-the-loop testing (§2.4, after the paper's reference \[17\]).
//!
//! "Several test levels can be leveraged to shift a big amount of testing
//! activities to an earlier stage … we refer to these levels as XiL, with X
//! representing any control model (M), software (S), or hardware (H) under
//! test. … Using the full potential of computing power of a PC, debugging
//! and error reproduction in MiL and SiL can be performed much faster than
//! on ECUs. Time consuming procedures such as flash programming can be
//! reduced."
//!
//! * [`level`] — the MiL/SiL/HiL cost models: per-step execution factor,
//!   per-run setup (flash programming at HiL), per-iteration debug cost;
//! * [`control`] — a virtual control unit: PID controller + first-order
//!   plant, the canonical "control model" under test;
//! * [`harness`] — test cases, suites, fault injection and the
//!   error-reproduction experiment that E11 sweeps across levels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod harness;
pub mod level;

pub use control::{FirstOrderPlant, PidController, VirtualControlUnit};
pub use harness::{FaultInjection, TestCase, TestHarness, TestOutcome, TestRunReport};
pub use level::TestLevel;
