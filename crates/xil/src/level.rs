//! Test-level cost models.

use dynplat_common::time::SimDuration;
use std::fmt;

/// The X in XiL: what artifact is in the loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TestLevel {
    /// Model in the loop: the control *model* simulated on a PC.
    Mil,
    /// Software in the loop: compiled production code on a virtual control
    /// unit, still PC-hosted.
    Sil,
    /// Hardware in the loop: the real ECU, real time, flashed images.
    Hil,
}

impl TestLevel {
    /// All levels, earliest development stage first.
    pub const ALL: [TestLevel; 3] = [TestLevel::Mil, TestLevel::Sil, TestLevel::Hil];

    /// Wall-clock cost of executing one 1 ms control step at this level.
    ///
    /// MiL and SiL exploit "the full potential of computing power of a PC"
    /// and run much faster than real time; HiL is bound to real time.
    pub fn step_cost(self) -> SimDuration {
        match self {
            TestLevel::Mil => SimDuration::from_micros(20), // 50x real time
            TestLevel::Sil => SimDuration::from_micros(100), // 10x real time
            TestLevel::Hil => SimDuration::from_millis(1),  // real time
        }
    }

    /// Per-run setup cost: build/load at MiL/SiL, flash programming at HiL.
    pub fn setup_cost(self) -> SimDuration {
        match self {
            TestLevel::Mil => SimDuration::from_secs(1),
            TestLevel::Sil => SimDuration::from_secs(15), // compile + link
            TestLevel::Hil => SimDuration::from_secs(240), // flash + boot
        }
    }

    /// Whether production software (not just the model) is exercised.
    pub fn covers_software(self) -> bool {
        !matches!(self, TestLevel::Mil)
    }

    /// Whether target hardware behavior is exercised.
    pub fn covers_hardware(self) -> bool {
        matches!(self, TestLevel::Hil)
    }
}

impl fmt::Display for TestLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestLevel::Mil => write!(f, "MiL"),
            TestLevel::Sil => write!(f, "SiL"),
            TestLevel::Hil => write!(f, "HiL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earlier_levels_are_cheaper() {
        assert!(TestLevel::Mil.step_cost() < TestLevel::Sil.step_cost());
        assert!(TestLevel::Sil.step_cost() < TestLevel::Hil.step_cost());
        assert!(TestLevel::Mil.setup_cost() < TestLevel::Sil.setup_cost());
        assert!(TestLevel::Sil.setup_cost() < TestLevel::Hil.setup_cost());
    }

    #[test]
    fn coverage_grows_with_level() {
        assert!(!TestLevel::Mil.covers_software());
        assert!(TestLevel::Sil.covers_software());
        assert!(!TestLevel::Sil.covers_hardware());
        assert!(TestLevel::Hil.covers_hardware());
    }

    #[test]
    fn display_names() {
        assert_eq!(TestLevel::Mil.to_string(), "MiL");
        assert_eq!(TestLevel::Hil.to_string(), "HiL");
    }
}
