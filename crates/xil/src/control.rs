//! The virtual control unit: a PID speed controller closed around a
//! first-order plant — the canonical automotive control function used as
//! the system under test at every XiL level.

/// Discrete PID controller.
#[derive(Clone, Debug, PartialEq)]
pub struct PidController {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Output saturation (symmetric, ±limit).
    pub output_limit: f64,
    integral: f64,
    last_error: f64,
}

impl PidController {
    /// Creates a controller with the given gains and output limit.
    pub fn new(kp: f64, ki: f64, kd: f64, output_limit: f64) -> Self {
        PidController {
            kp,
            ki,
            kd,
            output_limit,
            integral: 0.0,
            last_error: 0.0,
        }
    }

    /// One control step at sample time `dt` seconds.
    pub fn step(&mut self, setpoint: f64, measured: f64, dt: f64) -> f64 {
        let error = setpoint - measured;
        self.integral += error * dt;
        let derivative = if dt > 0.0 {
            (error - self.last_error) / dt
        } else {
            0.0
        };
        self.last_error = error;
        let raw = self.kp * error + self.ki * self.integral + self.kd * derivative;
        // Anti-windup: clamp and back off the integral when saturated.
        let clamped = raw.clamp(-self.output_limit, self.output_limit);
        if raw != clamped && self.ki != 0.0 {
            self.integral -= (raw - clamped) / self.ki;
        }
        clamped
    }

    /// Resets internal state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = 0.0;
    }
}

/// First-order plant: `v' = (u * gain - v) / tau` (speed responding to a
/// drive command against drag).
#[derive(Clone, Debug, PartialEq)]
pub struct FirstOrderPlant {
    /// Steady-state gain.
    pub gain: f64,
    /// Time constant in seconds.
    pub tau: f64,
    state: f64,
}

impl FirstOrderPlant {
    /// Creates a plant at rest.
    pub fn new(gain: f64, tau: f64) -> Self {
        assert!(tau > 0.0, "time constant must be positive");
        FirstOrderPlant {
            gain,
            tau,
            state: 0.0,
        }
    }

    /// Current output.
    pub fn output(&self) -> f64 {
        self.state
    }

    /// Advances the plant by `dt` seconds under input `u` (forward Euler).
    pub fn step(&mut self, u: f64, dt: f64) -> f64 {
        let dv = (u * self.gain - self.state) / self.tau;
        self.state += dv * dt;
        self.state
    }

    /// Resets to rest.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }
}

/// Controller + plant closed loop: the unit every XiL level executes.
#[derive(Clone, Debug, PartialEq)]
pub struct VirtualControlUnit {
    /// The controller under test.
    pub controller: PidController,
    /// The simulated plant.
    pub plant: FirstOrderPlant,
    /// Sample time in seconds.
    pub dt: f64,
}

impl VirtualControlUnit {
    /// A well-tuned cruise-control-like loop at 1 kHz.
    pub fn cruise_control() -> Self {
        VirtualControlUnit {
            controller: PidController::new(8.0, 15.0, 0.02, 100.0),
            plant: FirstOrderPlant::new(1.0, 0.5),
            dt: 0.001,
        }
    }

    /// The same loop with a defective derivative gain — the injected bug
    /// used by the error-reproduction experiment.
    pub fn cruise_control_buggy() -> Self {
        let mut unit = Self::cruise_control();
        unit.controller.kd = -0.8; // destabilizing
        unit
    }

    /// Runs one closed-loop step toward `setpoint`; returns the new plant
    /// output.
    pub fn step(&mut self, setpoint: f64) -> f64 {
        let u = self.controller.step(setpoint, self.plant.output(), self.dt);
        self.plant.step(u, self.dt)
    }

    /// Resets controller and plant.
    pub fn reset(&mut self) {
        self.controller.reset();
        self.plant.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_settles_to_gain_times_input() {
        let mut plant = FirstOrderPlant::new(2.0, 0.1);
        for _ in 0..10_000 {
            plant.step(5.0, 0.001);
        }
        assert!((plant.output() - 10.0).abs() < 0.01);
    }

    #[test]
    fn tuned_loop_tracks_setpoint() {
        let mut unit = VirtualControlUnit::cruise_control();
        let mut y = 0.0;
        for _ in 0..5_000 {
            y = unit.step(30.0);
        }
        assert!((y - 30.0).abs() < 0.5, "settled at {y}");
    }

    #[test]
    fn buggy_loop_misbehaves() {
        let mut good = VirtualControlUnit::cruise_control();
        let mut bad = VirtualControlUnit::cruise_control_buggy();
        let mut worst_good: f64 = 0.0;
        let mut worst_bad: f64 = 0.0;
        for _ in 0..5_000 {
            worst_good = worst_good.max((good.step(30.0) - 30.0).abs());
            worst_bad = worst_bad.max((bad.step(30.0) - 30.0).abs());
        }
        // The final tracking error exposes the defect.
        let final_good = (good.plant.output() - 30.0).abs();
        let final_bad = (bad.plant.output() - 30.0).abs();
        assert!(
            final_bad > final_good * 2.0 || worst_bad > worst_good * 2.0,
            "bug not observable: good {final_good}/{worst_good}, bad {final_bad}/{worst_bad}"
        );
    }

    #[test]
    fn controller_saturation_is_respected() {
        let mut pid = PidController::new(1000.0, 0.0, 0.0, 50.0);
        let u = pid.step(100.0, 0.0, 0.001);
        assert_eq!(u, 50.0);
        let u = pid.step(-100.0, 0.0, 0.001);
        assert_eq!(u, -50.0);
    }

    #[test]
    fn reset_restores_initial_behavior() {
        let mut unit = VirtualControlUnit::cruise_control();
        let first = unit.step(10.0);
        unit.reset();
        let again = unit.step(10.0);
        assert_eq!(first, again);
    }
}
