//! Scheduler simulation.
//!
//! The behavioral counterpart of the analyses: releases jobs over a horizon,
//! runs them under a chosen [`Policy`], and reports response times, jitter
//! and deadline misses per task. This is the engine behind experiment E2
//! (Fig. 2): deterministic and non-deterministic applications side by side,
//! with and without the dynamic platform's isolation mechanisms.
//!
//! Policies:
//!
//! * [`Policy::NonPreemptiveFifo`] — the no-isolation baseline: jobs run to
//!   completion in arrival order, so one long NDA job delays every DA task
//!   behind it;
//! * [`Policy::FixedPriorityPreemptive`] — RTOS priority scheduling;
//! * [`Policy::TimeTriggered`] — deterministic tasks execute in their
//!   synthesized slots; NDA work drains in the idle time;
//! * [`Policy::FpWithServer`] — deterministic tasks under preemptive fixed
//!   priority; NDA work sandboxed in a budget server that only consumes
//!   idle time, up to its budget per period.

use crate::server::PeriodicServer;
use crate::task::TaskSet;
use crate::tt::TtSchedule;
use dynplat_common::rng::seeded_rng;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{AppKind, TaskId};
use dynplat_obs::TraceCtx;
use dynplat_sim::jitter::ExecutionModel;

/// Scheduling policy under simulation.
#[derive(Clone, Debug)]
pub enum Policy {
    /// Run-to-completion in arrival order (no isolation).
    NonPreemptiveFifo,
    /// Preemptive fixed-priority (lower `priority` value runs first).
    FixedPriorityPreemptive,
    /// Deterministic tasks in time-triggered slots; NDA in idle time.
    TimeTriggered(TtSchedule),
    /// Deterministic tasks preemptive fixed-priority; NDA inside a budget
    /// server that runs in idle time only.
    FpWithServer(PeriodicServer),
}

/// Configuration of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedSimConfig {
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Best-case execution time as a fraction of WCET (jobs sample in
    /// `[bcet_frac * wcet, wcet]`).
    pub bcet_frac: f64,
    /// Relative standard deviation of execution times.
    pub exec_sigma: f64,
    /// RNG seed.
    pub seed: u64,
    /// Causal context of the run. When active (and the global flight
    /// recorder is enabled), dispatch-level incidents — deadline misses —
    /// are recorded as children of this context, tying scheduler behavior
    /// into the same trace as the messages that drove it.
    pub trace: TraceCtx,
}

impl Default for SchedSimConfig {
    fn default() -> Self {
        SchedSimConfig {
            horizon: SimDuration::from_secs(1),
            bcet_frac: 0.7,
            exec_sigma: 0.1,
            seed: 1,
            trace: TraceCtx::NONE,
        }
    }
}

/// Per-task outcome statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskStats {
    /// Task identifier.
    pub id: TaskId,
    /// Deterministic or non-deterministic.
    pub kind: AppKind,
    /// Jobs released within the horizon.
    pub activations: u64,
    /// Jobs that completed within the horizon.
    pub completions: u64,
    /// Jobs that missed their deadline (completed late, or whose deadline
    /// passed inside the horizon without completion).
    pub deadline_misses: u64,
    /// Smallest observed response time.
    pub response_min: SimDuration,
    /// Largest observed response time.
    pub response_max: SimDuration,
    /// Mean observed response time.
    pub response_mean: SimDuration,
}

impl TaskStats {
    /// Response jitter: spread between fastest and slowest response.
    pub fn jitter(&self) -> SimDuration {
        self.response_max.saturating_sub(self.response_min)
    }

    /// Deadline-miss ratio over released jobs whose deadline fell inside
    /// the horizon.
    pub fn miss_rate(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.activations as f64
        }
    }
}

/// Results of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedStats {
    /// Statistics per task, in task-set order.
    pub tasks: Vec<TaskStats>,
}

impl SchedStats {
    /// Stats of one task.
    pub fn task(&self, id: TaskId) -> Option<&TaskStats> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Aggregate miss rate over all deterministic tasks.
    pub fn deterministic_miss_rate(&self) -> f64 {
        let (miss, act) = self
            .tasks
            .iter()
            .filter(|t| t.kind == AppKind::Deterministic)
            .fold((0u64, 0u64), |(m, a), t| {
                (m + t.deadline_misses, a + t.activations)
            });
        if act == 0 {
            0.0
        } else {
            miss as f64 / act as f64
        }
    }

    /// Total completed NDA jobs — the throughput the sandbox still allows.
    pub fn non_deterministic_throughput(&self) -> u64 {
        self.tasks
            .iter()
            .filter(|t| t.kind == AppKind::NonDeterministic)
            .map(|t| t.completions)
            .sum()
    }

    /// Largest deterministic response jitter.
    pub fn max_deterministic_jitter(&self) -> SimDuration {
        self.tasks
            .iter()
            .filter(|t| t.kind == AppKind::Deterministic)
            .map(TaskStats::jitter)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[derive(Clone, Debug)]
struct Job {
    task_idx: usize,
    index_in_task: u64,
    release: SimTime,
    deadline: SimTime,
    exec: SimDuration,
    remaining: SimDuration,
    completed: Option<SimTime>,
}

fn generate_jobs(set: &TaskSet, cfg: &SchedSimConfig) -> Vec<Job> {
    let mut rng = seeded_rng(cfg.seed);
    let end = SimTime::ZERO + cfg.horizon;
    let mut jobs = Vec::new();
    for (task_idx, task) in set.tasks().iter().enumerate() {
        let model = ExecutionModel::new(
            task.wcet.mul_f64(cfg.bcet_frac.clamp(0.01, 1.0)),
            task.wcet,
            cfg.exec_sigma,
        );
        let mut k = 0u64;
        loop {
            let release = SimTime::ZERO + task.offset + task.period * k;
            if release >= end {
                break;
            }
            let exec = model.sample(&mut rng);
            jobs.push(Job {
                task_idx,
                index_in_task: k,
                release,
                deadline: release + task.deadline,
                exec,
                remaining: exec,
                completed: None,
            });
            k += 1;
        }
    }
    jobs.sort_by_key(|j| (j.release, j.task_idx));
    jobs
}

fn collect_stats(set: &TaskSet, jobs: &[Job], horizon: SimTime, trace: TraceCtx) -> SchedStats {
    let flight = dynplat_obs::flight_recorder();
    let obs_activations = dynplat_obs::counter!("sched.dispatch.activations");
    let obs_completions = dynplat_obs::counter!("sched.dispatch.completions");
    let obs_misses = dynplat_obs::counter!("sched.dispatch.deadline_misses");
    let obs_response = dynplat_obs::histogram!("sched.dispatch.response_ns");
    let obs_slack = dynplat_obs::histogram!("sched.dispatch.slack_ns");
    // Worst response times keep their causal context: the top-K offers
    // land as exemplars next to the histogram, linkable via the run's
    // trace id in flight dumps and Chrome traces.
    let obs_exemplars = dynplat_obs::global().exemplars("sched.dispatch.response_ns");
    let tasks = set
        .tasks()
        .iter()
        .enumerate()
        .map(|(idx, task)| {
            let mine: Vec<&Job> = jobs.iter().filter(|j| j.task_idx == idx).collect();
            let mut misses = 0u64;
            let mut completions = 0u64;
            let mut rmin = SimDuration::MAX;
            let mut rmax = SimDuration::ZERO;
            let mut rsum = SimDuration::ZERO;
            for job in &mine {
                let missed_at = match job.completed {
                    Some(t) => {
                        completions += 1;
                        let resp = t.saturating_since(job.release);
                        obs_response.record(resp.as_nanos());
                        obs_exemplars.offer(resp.as_nanos(), trace);
                        obs_slack.record(job.deadline.saturating_since(t).as_nanos());
                        rmin = rmin.min(resp);
                        rmax = rmax.max(resp);
                        rsum += resp;
                        (t > job.deadline).then_some(t)
                    }
                    None => (job.deadline <= horizon).then_some(job.deadline),
                };
                if let Some(at) = missed_at {
                    misses += 1;
                    if flight.is_enabled() {
                        let ctx = if trace.is_active() {
                            trace.child(job.index_in_task)
                        } else {
                            TraceCtx::NONE
                        };
                        let t = at.as_nanos();
                        flight.record(
                            t,
                            ctx,
                            "sched.deadline_miss",
                            format!("task {} job {}", task.id, job.index_in_task),
                        );
                        flight.trigger_if_armed(t, &format!("deadline miss: task {}", task.id));
                    }
                }
            }
            obs_activations.add(mine.len() as u64);
            obs_completions.add(completions);
            obs_misses.add(misses);
            let mean = if completions > 0 {
                rsum / completions
            } else {
                SimDuration::ZERO
            };
            TaskStats {
                id: task.id,
                kind: task.kind,
                activations: mine.len() as u64,
                completions,
                deadline_misses: misses,
                response_min: if completions > 0 {
                    rmin
                } else {
                    SimDuration::ZERO
                },
                response_max: rmax,
                response_mean: mean,
            }
        })
        .collect();
    SchedStats { tasks }
}

fn run_fifo(jobs: &mut [Job], horizon: SimTime) {
    let mut t = SimTime::ZERO;
    for job in jobs.iter_mut() {
        if job.release > t {
            t = job.release;
        }
        let fin = t + job.remaining;
        if fin > horizon {
            break;
        }
        job.remaining = SimDuration::ZERO;
        job.completed = Some(fin);
        t = fin;
    }
}

/// Preemptive fixed-priority simulation over `jobs` (sorted by release).
/// Returns the busy segments `(start, end)` consumed by these jobs.
fn run_fp(set: &TaskSet, jobs: &mut [Job], horizon: SimTime) -> Vec<(SimTime, SimTime)> {
    let prio = |job: &Job| {
        let task = &set.tasks()[job.task_idx];
        (task.priority, task.id.raw(), job.index_in_task)
    };
    let mut busy: Vec<(SimTime, SimTime)> = Vec::new();
    let mut t = SimTime::ZERO;
    let mut next = 0usize;
    let mut ready: Vec<usize> = Vec::new();
    loop {
        while next < jobs.len() && jobs[next].release <= t {
            ready.push(next);
            next += 1;
        }
        ready.retain(|&j| !jobs[j].remaining.is_zero());
        let cur = ready.iter().copied().min_by_key(|&j| prio(&jobs[j]));
        match cur {
            None => {
                if next >= jobs.len() {
                    break;
                }
                t = jobs[next].release;
                if t >= horizon {
                    break;
                }
            }
            Some(j) => {
                let next_release = jobs.get(next).map_or(SimTime::MAX, |x| x.release);
                let fin = t + jobs[j].remaining;
                let until = fin.min(next_release).min(horizon);
                let ran = until.saturating_since(t);
                jobs[j].remaining = jobs[j].remaining.saturating_sub(ran);
                if let Some(last) = busy.last_mut() {
                    if last.1 == t {
                        last.1 = until;
                    } else {
                        busy.push((t, until));
                    }
                } else {
                    busy.push((t, until));
                }
                t = until;
                if jobs[j].remaining.is_zero() {
                    jobs[j].completed = Some(t);
                }
                if t >= horizon {
                    break;
                }
            }
        }
    }
    busy
}

/// Drains `jobs` (FIFO by release) in the given usable intervals; a job may
/// span several intervals (it is preempted at interval ends). Server budget
/// limits are applied beforehand by [`apply_server_budget`].
fn run_in_intervals(jobs: &mut [Job], intervals: &[(SimTime, SimTime)], horizon: SimTime) {
    let mut job_iter = 0usize;
    for &(mut lo, hi) in intervals {
        while job_iter < jobs.len() && lo < hi && lo < horizon {
            let job = &mut jobs[job_iter];
            if job.remaining.is_zero() {
                job_iter += 1;
                continue;
            }
            if job.release > lo {
                // FIFO head not yet released: jobs are release-sorted, so
                // nothing else is released either.
                if job.release >= hi {
                    break;
                }
                lo = job.release;
            }
            let run = job.remaining.min(hi.saturating_since(lo));
            if run.is_zero() {
                break;
            }
            job.remaining -= run;
            lo += run;
            if job.remaining.is_zero() {
                job.completed = Some(lo);
                job_iter += 1;
            }
        }
    }
}

/// Clips idle intervals to what a budget server may use: at most `budget`
/// per server period, counted from each period start.
fn apply_server_budget(
    intervals: &[(SimTime, SimTime)],
    server: PeriodicServer,
    horizon: SimTime,
) -> Vec<(SimTime, SimTime)> {
    let mut out = Vec::new();
    let mut period_idx = 0u64;
    let mut used_in_period = SimDuration::ZERO;
    for &(lo, hi) in intervals {
        let mut cur = lo;
        while cur < hi && cur < horizon {
            let my_period = cur.as_nanos() / server.period.as_nanos();
            if my_period != period_idx {
                period_idx = my_period;
                used_in_period = SimDuration::ZERO;
            }
            let period_end = SimTime::from_nanos((my_period + 1) * server.period.as_nanos());
            let budget_left = server.budget.saturating_sub(used_in_period);
            if budget_left.is_zero() {
                cur = period_end;
                continue;
            }
            let end = hi.min(period_end).min(cur + budget_left);
            if end > cur {
                out.push((cur, end));
                used_in_period += end.saturating_since(cur);
            }
            cur = end;
        }
    }
    out
}

fn idle_complement(busy: &[(SimTime, SimTime)], horizon: SimTime) -> Vec<(SimTime, SimTime)> {
    let mut idle = Vec::new();
    let mut cursor = SimTime::ZERO;
    for &(s, e) in busy {
        if s > cursor {
            idle.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if cursor < horizon {
        idle.push((cursor, horizon));
    }
    idle
}

/// Runs `set` under `policy` for the configured horizon and returns the
/// per-task statistics.
///
/// # Panics
///
/// Panics if [`Policy::TimeTriggered`] is used with a schedule that does not
/// cover all deterministic tasks of `set`.
pub fn simulate_schedule(set: &TaskSet, policy: &Policy, cfg: &SchedSimConfig) -> SchedStats {
    let horizon = SimTime::ZERO + cfg.horizon;
    let mut jobs = generate_jobs(set, cfg);
    match policy {
        Policy::NonPreemptiveFifo => run_fifo(&mut jobs, horizon),
        Policy::FixedPriorityPreemptive => {
            run_fp(set, &mut jobs, horizon);
        }
        Policy::TimeTriggered(schedule) => {
            // Deterministic jobs execute in their slots.
            let hp = schedule.hyperperiod();
            assert!(!hp.is_zero(), "empty schedule for time-triggered policy");
            let mut busy: Vec<(SimTime, SimTime)> = Vec::new();
            for task in set.deterministic() {
                let jobs_per_hp = hp / task.period;
                assert!(
                    schedule.entries_of(task.id).count() as u64 == jobs_per_hp,
                    "schedule does not cover task {}",
                    task.id
                );
            }
            for entry in schedule.entries() {
                let task = set.get(entry.task).expect("schedule validated against set");
                let task_idx = set
                    .tasks()
                    .iter()
                    .position(|t| t.id == entry.task)
                    .expect("task present");
                let jobs_per_hp = hp / task.period;
                let mut rep = 0u64;
                loop {
                    let slot_start = SimTime::ZERO + entry.start + hp * rep;
                    if slot_start >= horizon {
                        break;
                    }
                    let global_job = entry.job + rep * jobs_per_hp;
                    if let Some(job) = jobs
                        .iter_mut()
                        .find(|j| j.task_idx == task_idx && j.index_in_task == global_job)
                    {
                        let fin = slot_start + job.exec;
                        if fin <= horizon {
                            job.remaining = SimDuration::ZERO;
                            job.completed = Some(fin);
                        }
                    }
                    busy.push((slot_start, slot_start + entry.duration));
                    rep += 1;
                }
            }
            busy.sort();
            // NDA jobs drain in the idle time.
            let idle = idle_complement(&busy, horizon);
            let mut nda: Vec<Job> = jobs
                .iter()
                .filter(|j| set.tasks()[j.task_idx].kind == AppKind::NonDeterministic)
                .cloned()
                .collect();
            nda.sort_by_key(|j| (j.release, j.task_idx));
            run_in_intervals(&mut nda, &idle, horizon);
            for done in nda {
                if let Some(job) = jobs
                    .iter_mut()
                    .find(|j| j.task_idx == done.task_idx && j.index_in_task == done.index_in_task)
                {
                    *job = done;
                }
            }
        }
        Policy::FpWithServer(server) => {
            // Deterministic side runs alone under FP; NDA gets the idle
            // time clipped to the server budget.
            let da_idx: Vec<usize> = set
                .tasks()
                .iter()
                .enumerate()
                .filter(|(_, t)| t.kind == AppKind::Deterministic)
                .map(|(i, _)| i)
                .collect();
            let mut da_jobs: Vec<Job> = jobs
                .iter()
                .filter(|j| da_idx.contains(&j.task_idx))
                .cloned()
                .collect();
            da_jobs.sort_by_key(|j| (j.release, j.task_idx));
            let busy = run_fp(set, &mut da_jobs, horizon);
            for done in &da_jobs {
                if let Some(job) = jobs
                    .iter_mut()
                    .find(|j| j.task_idx == done.task_idx && j.index_in_task == done.index_in_task)
                {
                    *job = done.clone();
                }
            }
            let idle = idle_complement(&busy, horizon);
            let usable = apply_server_budget(&idle, *server, horizon);
            let mut nda: Vec<Job> = jobs
                .iter()
                .filter(|j| set.tasks()[j.task_idx].kind == AppKind::NonDeterministic)
                .cloned()
                .collect();
            nda.sort_by_key(|j| (j.release, j.task_idx));
            run_in_intervals(&mut nda, &usable, horizon);
            for done in nda {
                if let Some(job) = jobs
                    .iter_mut()
                    .find(|j| j.task_idx == done.task_idx && j.index_in_task == done.index_in_task)
                {
                    *job = done;
                }
            }
        }
    }
    collect_stats(set, &jobs, horizon, cfg.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use crate::tt::synthesize;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn da(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("da{id}"), ms(period_ms), ms(wcet_ms))
            .with_priority(id)
    }

    fn nda(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("nda{id}"), ms(period_ms), ms(wcet_ms))
            .with_priority(100 + id)
            .non_deterministic()
    }

    fn cfg() -> SchedSimConfig {
        SchedSimConfig {
            horizon: SimDuration::from_millis(400),
            ..Default::default()
        }
    }

    fn mixed_set() -> TaskSet {
        // DA: 10 ms control loop; NDA: 40 ms chunky infotainment job.
        [da(1, 10, 2), nda(50, 40, 25)].into_iter().collect()
    }

    #[test]
    fn fifo_baseline_misses_deterministic_deadlines() {
        let stats = simulate_schedule(&mixed_set(), &Policy::NonPreemptiveFifo, &cfg());
        assert!(
            stats.deterministic_miss_rate() > 0.15,
            "25 ms NDA jobs must starve the 10 ms DA task, got miss rate {}",
            stats.deterministic_miss_rate()
        );
    }

    #[test]
    fn fixed_priority_protects_deterministic_tasks() {
        let stats = simulate_schedule(&mixed_set(), &Policy::FixedPriorityPreemptive, &cfg());
        assert_eq!(stats.deterministic_miss_rate(), 0.0);
        // NDA still runs in the slack (U_da = 0.2).
        assert!(stats.non_deterministic_throughput() > 0);
    }

    #[test]
    fn server_policy_protects_da_and_bounds_nda() {
        let server = PeriodicServer::new(ms(5), ms(10));
        let stats = simulate_schedule(&mixed_set(), &Policy::FpWithServer(server), &cfg());
        assert_eq!(stats.deterministic_miss_rate(), 0.0);
        let nda_stats = stats.task(TaskId(50)).unwrap();
        // 25 ms of work per 40 ms at 50% bandwidth: finishes, slowly.
        assert!(nda_stats.completions >= 1);
    }

    #[test]
    fn tt_policy_runs_da_in_slots_with_low_jitter() {
        let da_only: TaskSet = [da(1, 10, 2), da(2, 20, 4)].into_iter().collect();
        let schedule = synthesize(&da_only).unwrap();
        let mut set = da_only.clone();
        set.push(nda(50, 40, 10));
        let stats = simulate_schedule(&set, &Policy::TimeTriggered(schedule), &cfg());
        assert_eq!(stats.deterministic_miss_rate(), 0.0);
        // TT slots start at fixed offsets: response jitter only from exec
        // variation, bounded by wcet - bcet.
        let jitter = stats.max_deterministic_jitter();
        assert!(jitter <= ms(2), "TT jitter should be small, got {jitter}");
        assert!(stats.non_deterministic_throughput() > 0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let stats = simulate_schedule(&mixed_set(), &Policy::FixedPriorityPreemptive, &cfg());
        for t in &stats.tasks {
            assert!(t.completions <= t.activations);
            assert!(t.response_min <= t.response_max);
            assert!(t.response_mean <= t.response_max);
            assert!(t.miss_rate() >= 0.0 && t.miss_rate() <= 1.0);
        }
        // 400 ms / 10 ms period = 40 activations of the DA task.
        assert_eq!(stats.task(TaskId(1)).unwrap().activations, 40);
    }

    #[test]
    fn deterministic_seed_reproduces_results() {
        let a = simulate_schedule(&mixed_set(), &Policy::FixedPriorityPreemptive, &cfg());
        let b = simulate_schedule(&mixed_set(), &Policy::FixedPriorityPreemptive, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn higher_nda_load_degrades_fifo_more() {
        let light: TaskSet = [da(1, 10, 2), nda(50, 40, 5)].into_iter().collect();
        let heavy: TaskSet = [da(1, 10, 2), nda(50, 40, 30)].into_iter().collect();
        let light_miss =
            simulate_schedule(&light, &Policy::NonPreemptiveFifo, &cfg()).deterministic_miss_rate();
        let heavy_miss =
            simulate_schedule(&heavy, &Policy::NonPreemptiveFifo, &cfg()).deterministic_miss_rate();
        assert!(heavy_miss > light_miss);
    }

    #[test]
    fn fp_matches_rta_bound() {
        let set: TaskSet = [da(1, 10, 2), da(2, 20, 5), da(3, 40, 8)]
            .into_iter()
            .collect();
        let rts = crate::rta::response_times(&set);
        let stats = simulate_schedule(
            &set,
            &Policy::FixedPriorityPreemptive,
            &SchedSimConfig {
                horizon: ms(400),
                bcet_frac: 1.0,
                exec_sigma: 0.0,
                seed: 7,
                trace: TraceCtx::NONE,
            },
        );
        for (r, s) in rts.iter().zip(&stats.tasks) {
            let bound = r.wcrt.expect("schedulable");
            assert!(
                s.response_max <= bound,
                "simulated {} exceeds analytic {} for {}",
                s.response_max,
                bound,
                s.id
            );
        }
    }
}
