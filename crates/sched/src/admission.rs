//! Online admission control.
//!
//! "When the set of applications is changed at runtime, the schedule needs
//! to be adjusted accordingly encompassing the changed requirements of all
//! applications" (§3.1). Before the dynamic platform starts a new
//! application it runs an admission test over the CPU's current task set —
//! the "admission control … to check whether there is enough resources to
//! satisfy the timing requirements" of \[6\]/\[19\] in the related work.

use crate::edf::is_edf_schedulable;
use crate::rta;
use crate::task::{TaskSet, TaskSpec};
use dynplat_common::TaskId;
use std::fmt;

/// Which schedulability test gates admission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionTest {
    /// Fixed-priority response-time analysis (exact for FP scheduling).
    #[default]
    FixedPriorityRta,
    /// EDF processor-demand criterion.
    Edf,
    /// Plain utilization bound `U ≤ limit` — fast but only a necessary
    /// condition; used to demonstrate unsound admission in E10.
    UtilizationOnly {
        /// Admission threshold, canonically 1.0.
        limit_milli: u32,
    },
}

/// Outcome of an admission request.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionDecision {
    /// The task that was tested.
    pub task: TaskId,
    /// Whether the task was admitted.
    pub admitted: bool,
    /// CPU utilization after the decision.
    pub utilization: f64,
    /// Human-readable reason for rejection, empty when admitted.
    pub reason: String,
}

/// Errors raised by the controller itself (not test rejections).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// A task with this id is already admitted.
    DuplicateTask(TaskId),
    /// The task to remove is unknown.
    UnknownTask(TaskId),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::DuplicateTask(id) => write!(f, "task {id} already admitted"),
            AdmissionError::UnknownTask(id) => write!(f, "task {id} not admitted here"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Stateful admission controller for one CPU.
///
/// # Examples
///
/// ```
/// use dynplat_common::time::SimDuration;
/// use dynplat_common::TaskId;
/// use dynplat_sched::admission::AdmissionController;
/// use dynplat_sched::task::TaskSpec;
///
/// let mut ctrl = AdmissionController::new();
/// let t = TaskSpec::periodic(TaskId(1), "ctrl", SimDuration::from_millis(10), SimDuration::from_millis(2));
/// let decision = ctrl.try_admit(t)?;
/// assert!(decision.admitted);
/// # Ok::<(), dynplat_sched::admission::AdmissionError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    test: AdmissionTest,
    admitted: TaskSet,
}

impl AdmissionController {
    /// Creates a controller using [`AdmissionTest::FixedPriorityRta`].
    pub fn new() -> Self {
        AdmissionController::default()
    }

    /// Creates a controller with an explicit test.
    pub fn with_test(test: AdmissionTest) -> Self {
        AdmissionController {
            test,
            admitted: TaskSet::new(),
        }
    }

    /// The currently admitted task set.
    pub fn admitted(&self) -> &TaskSet {
        &self.admitted
    }

    /// The configured test.
    pub fn test(&self) -> AdmissionTest {
        self.test
    }

    /// Tests `task` against the current set; admits it (mutating the set)
    /// only if the test passes.
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError::DuplicateTask`] if the id is taken. A
    /// failed schedulability test is *not* an error: it yields a decision
    /// with `admitted == false`.
    pub fn try_admit(&mut self, task: TaskSpec) -> Result<AdmissionDecision, AdmissionError> {
        if self.admitted.get(task.id).is_some() {
            return Err(AdmissionError::DuplicateTask(task.id));
        }
        let id = task.id;
        let mut candidate = self.admitted.clone();
        candidate.push(task);
        let (ok, reason) = match self.test {
            AdmissionTest::FixedPriorityRta => {
                let candidate_dm = rta::assign_deadline_monotonic(&candidate);
                if rta::is_schedulable(&candidate_dm) {
                    (true, String::new())
                } else {
                    (false, "response-time analysis failed".to_owned())
                }
            }
            AdmissionTest::Edf => {
                if is_edf_schedulable(&candidate) {
                    (true, String::new())
                } else {
                    (false, "EDF demand test failed".to_owned())
                }
            }
            AdmissionTest::UtilizationOnly { limit_milli } => {
                let limit = f64::from(limit_milli) / 1000.0;
                if candidate.utilization() <= limit {
                    (true, String::new())
                } else {
                    (
                        false,
                        format!(
                            "utilization {:.3} above {limit:.3}",
                            candidate.utilization()
                        ),
                    )
                }
            }
        };
        let utilization = if ok {
            candidate.utilization()
        } else {
            self.admitted.utilization()
        };
        if ok {
            self.admitted = candidate;
        }
        Ok(AdmissionDecision {
            task: id,
            admitted: ok,
            utilization,
            reason,
        })
    }

    /// Removes an admitted task (application stopped or updated away).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError::UnknownTask`] if absent.
    pub fn release(&mut self, id: TaskId) -> Result<TaskSpec, AdmissionError> {
        self.admitted
            .remove(id)
            .ok_or(AdmissionError::UnknownTask(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("t{id}"), ms(period_ms), ms(wcet_ms))
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut ctrl = AdmissionController::new();
        assert!(ctrl.try_admit(t(1, 10, 4)).unwrap().admitted);
        assert!(ctrl.try_admit(t(2, 10, 4)).unwrap().admitted);
        let d = ctrl.try_admit(t(3, 10, 4)).unwrap();
        assert!(!d.admitted);
        assert!(!d.reason.is_empty());
        // Rejection must not change state.
        assert_eq!(ctrl.admitted().len(), 2);
        assert!((d.utilization - 0.8).abs() < 1e-12);
    }

    #[test]
    fn release_frees_capacity() {
        let mut ctrl = AdmissionController::new();
        ctrl.try_admit(t(1, 10, 5)).unwrap();
        ctrl.try_admit(t(2, 10, 4)).unwrap();
        assert!(!ctrl.try_admit(t(3, 10, 3)).unwrap().admitted);
        ctrl.release(TaskId(1)).unwrap();
        assert!(ctrl.try_admit(t(3, 10, 3)).unwrap().admitted);
        assert_eq!(
            ctrl.release(TaskId(1)),
            Err(AdmissionError::UnknownTask(TaskId(1)))
        );
    }

    #[test]
    fn duplicate_admission_is_an_error() {
        let mut ctrl = AdmissionController::new();
        ctrl.try_admit(t(1, 10, 1)).unwrap();
        assert_eq!(
            ctrl.try_admit(t(1, 20, 1)).unwrap_err(),
            AdmissionError::DuplicateTask(TaskId(1))
        );
    }

    #[test]
    fn utilization_only_test_is_unsound_for_constrained_deadlines() {
        // U = 0.75 ≤ 1 admits, but the 2 ms deadlines cannot both be met.
        let mut naive =
            AdmissionController::with_test(AdmissionTest::UtilizationOnly { limit_milli: 1000 });
        let a = t(1, 4, 1).with_deadline(ms(2));
        let b = t(2, 4, 2).with_deadline(ms(2));
        assert!(naive.try_admit(a.clone()).unwrap().admitted);
        assert!(
            naive.try_admit(b.clone()).unwrap().admitted,
            "unsound test admits"
        );

        let mut sound = AdmissionController::with_test(AdmissionTest::Edf);
        assert!(sound.try_admit(a).unwrap().admitted);
        assert!(!sound.try_admit(b).unwrap().admitted, "sound test rejects");
    }

    #[test]
    fn edf_admits_to_full_utilization() {
        let mut ctrl = AdmissionController::with_test(AdmissionTest::Edf);
        assert!(ctrl.try_admit(t(1, 4, 2)).unwrap().admitted);
        assert!(ctrl.try_admit(t(2, 8, 4)).unwrap().admitted);
        assert!((ctrl.admitted().utilization() - 1.0).abs() < 1e-12);
        assert!(!ctrl.try_admit(t(3, 100, 1)).unwrap().admitted);
    }

    #[test]
    fn rta_test_uses_dm_priorities() {
        // Even with unhelpful user priorities, admission reorders by DM.
        let mut ctrl = AdmissionController::new();
        assert!(
            ctrl.try_admit(t(1, 50, 20).with_priority(0))
                .unwrap()
                .admitted
        );
        assert!(
            ctrl.try_admit(t(2, 5, 2).with_priority(9))
                .unwrap()
                .admitted
        );
    }
}
