//! Schedule management: local incremental vs. cloud-based synthesis.
//!
//! Reference \[21\] of the paper (Zhang et al., RTCSA 2016) proposes a "mixed
//! local and cloud-based framework" for online time-triggered schedule
//! synthesis, with "incremental design techniques … to reduce the
//! disturbance to existing applications". [`ScheduleManager`] reproduces
//! that trade space:
//!
//! * [`SynthesisBackend::Local`] — incremental insertion on the ECU: fast
//!   (no network round trip), never moves existing slots, but may fail on
//!   fragmented schedules;
//! * [`SynthesisBackend::Cloud`] — full resynthesis in the backend: always
//!   succeeds when the set is feasible for the heuristic, but pays a
//!   network round trip and may move (disturb) existing slots, each of
//!   which requires a coordinated slot migration on the vehicle.

use crate::task::{TaskSet, TaskSpec};
use crate::tt::{self, TtSchedule, TtSynthesisError};
use dynplat_common::time::SimDuration;

/// Where schedule synthesis runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthesisBackend {
    /// On the ECU: incremental insertion only.
    Local,
    /// In the OEM backend: full resynthesis, `round_trip` of network and
    /// queueing latency.
    Cloud {
        /// Modeled backend round-trip time.
        round_trip: SimDuration,
    },
}

/// Result of one synthesis request.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisOutcome {
    /// The new schedule.
    pub schedule: TtSchedule,
    /// Number of pre-existing slots that moved (slot migrations needed).
    pub disturbance: usize,
    /// Modeled end-to-end latency of the request: placement work plus any
    /// backend round trip.
    pub latency: SimDuration,
    /// Which backend produced it.
    pub backend: SynthesisBackend,
}

/// Per-slot placement cost model: how long considering one candidate slot
/// takes on ECU-class hardware (used to model synthesis latency).
const LOCAL_COST_PER_ENTRY: SimDuration = SimDuration::from_micros(50);
/// Cloud hardware is modeled an order of magnitude faster per entry.
const CLOUD_COST_PER_ENTRY: SimDuration = SimDuration::from_micros(5);

/// Maintains the running time-triggered schedule of one CPU and serves
/// add-application requests through either backend.
#[derive(Clone, Debug, Default)]
pub struct ScheduleManager {
    tasks: TaskSet,
    schedule: TtSchedule,
}

impl ScheduleManager {
    /// Creates a manager with an empty schedule.
    pub fn new() -> Self {
        ScheduleManager::default()
    }

    /// Creates a manager for an already-deployed task set.
    ///
    /// # Errors
    ///
    /// Forwards synthesis errors for the initial set.
    pub fn with_initial(set: TaskSet) -> Result<Self, TtSynthesisError> {
        let schedule = tt::synthesize(&set)?;
        Ok(ScheduleManager {
            tasks: set,
            schedule,
        })
    }

    /// The current schedule.
    pub fn schedule(&self) -> &TtSchedule {
        &self.schedule
    }

    /// The currently scheduled task set.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Adds `task` via the chosen backend.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TtSynthesisError`] if the backend cannot
    /// place the task. On [`SynthesisBackend::Local`] failure, callers
    /// typically retry with [`SynthesisBackend::Cloud`].
    pub fn add_task(
        &mut self,
        task: TaskSpec,
        backend: SynthesisBackend,
    ) -> Result<SynthesisOutcome, TtSynthesisError> {
        match backend {
            SynthesisBackend::Local => {
                let new_schedule = tt::insert_incremental(&self.schedule, &task)?;
                let latency = LOCAL_COST_PER_ENTRY * (new_schedule.entries().len() as u64);
                self.tasks.push(task);
                let disturbance = tt::disturbance(&self.schedule, &new_schedule);
                debug_assert_eq!(disturbance, 0, "incremental insertion never disturbs");
                self.schedule = new_schedule;
                Ok(SynthesisOutcome {
                    schedule: self.schedule.clone(),
                    disturbance,
                    latency,
                    backend,
                })
            }
            SynthesisBackend::Cloud { round_trip } => {
                let mut candidate_set = self.tasks.clone();
                candidate_set.push(task);
                let new_schedule = tt::synthesize(&candidate_set)?;
                let disturbance = tt::disturbance(&self.schedule, &new_schedule);
                let latency =
                    round_trip + CLOUD_COST_PER_ENTRY * (new_schedule.entries().len() as u64);
                self.tasks = candidate_set;
                self.schedule = new_schedule;
                Ok(SynthesisOutcome {
                    schedule: self.schedule.clone(),
                    disturbance,
                    latency,
                    backend,
                })
            }
        }
    }

    /// Adds `task`, preferring the local backend and falling back to the
    /// cloud — the mixed strategy of \[21\]. Returns the outcome of whichever
    /// backend succeeded.
    ///
    /// # Errors
    ///
    /// Returns the cloud backend's error if both fail.
    pub fn add_task_mixed(
        &mut self,
        task: TaskSpec,
        round_trip: SimDuration,
    ) -> Result<SynthesisOutcome, TtSynthesisError> {
        match self.add_task(task.clone(), SynthesisBackend::Local) {
            Ok(outcome) => Ok(outcome),
            Err(TtSynthesisError::DuplicateTask(id)) => Err(TtSynthesisError::DuplicateTask(id)),
            Err(_) => self.add_task(task, SynthesisBackend::Cloud { round_trip }),
        }
    }

    /// Removes a task; the remaining slots keep their positions, so running
    /// applications see zero disturbance.
    ///
    /// Returns `false` if the task is unknown.
    pub fn remove_task(&mut self, id: dynplat_common::TaskId) -> bool {
        if self.tasks.remove(id).is_none() {
            return false;
        }
        let remaining: Vec<tt::TtEntry> = self
            .schedule
            .entries()
            .iter()
            .filter(|e| e.task != id)
            .cloned()
            .collect();
        self.schedule = TtSchedule::from_entries(self.schedule.hyperperiod(), remaining)
            .expect("subset of a valid schedule stays valid");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::TaskId;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("t{id}"), ms(period_ms), ms(wcet_ms))
    }

    #[test]
    fn local_insert_has_zero_disturbance() {
        let set: TaskSet = [t(1, 4, 1), t(2, 8, 2)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        let outcome = mgr.add_task(t(3, 8, 1), SynthesisBackend::Local).unwrap();
        assert_eq!(outcome.disturbance, 0);
        assert_eq!(outcome.backend, SynthesisBackend::Local);
    }

    #[test]
    fn cloud_resynthesis_pays_round_trip_but_packs() {
        let set: TaskSet = [t(1, 8, 2), t(2, 8, 2)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        let rt = ms(120);
        let outcome = mgr
            .add_task(t(3, 4, 1), SynthesisBackend::Cloud { round_trip: rt })
            .unwrap();
        assert!(outcome.latency >= rt);
        // Full resynthesis re-sorts by period: old slots move.
        assert!(outcome.disturbance > 0);
    }

    #[test]
    fn mixed_strategy_prefers_local() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        let outcome = mgr.add_task_mixed(t(2, 8, 2), ms(120)).unwrap();
        assert_eq!(outcome.backend, SynthesisBackend::Local);
        assert!(outcome.latency < ms(120));
    }

    #[test]
    fn mixed_strategy_falls_back_to_cloud() {
        // Fill the schedule so the incremental gaps get tight, then ask for
        // a task the fragmented layout cannot take but a repack can.
        let set: TaskSet = [t(1, 8, 3), t(2, 8, 3)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        // Gaps: [6,8) in each 8 ms cycle. A 1 ms-per-4 ms task needs a slot
        // in [0,4) too — incremental fails, cloud repacks.
        let outcome = mgr.add_task_mixed(t(3, 4, 1), ms(100)).unwrap();
        assert!(matches!(outcome.backend, SynthesisBackend::Cloud { .. }));
        assert!(outcome.disturbance > 0);
    }

    #[test]
    fn remove_task_frees_slots_without_moving_others() {
        let set: TaskSet = [t(1, 4, 1), t(2, 8, 2)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        let before = mgr.schedule().clone();
        assert!(mgr.remove_task(TaskId(2)));
        assert!(!mgr.remove_task(TaskId(2)));
        assert_eq!(tt::disturbance(&before, mgr.schedule()), 0);
        assert!(mgr.schedule().entries().iter().all(|e| e.task != TaskId(2)));
        // Freed capacity is reusable.
        assert!(mgr.add_task(t(9, 8, 2), SynthesisBackend::Local).is_ok());
    }

    #[test]
    fn duplicate_is_reported_not_retried() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let mut mgr = ScheduleManager::with_initial(set).unwrap();
        assert_eq!(
            mgr.add_task_mixed(t(1, 4, 1), ms(10)),
            Err(TtSynthesisError::DuplicateTask(TaskId(1)))
        );
    }
}
