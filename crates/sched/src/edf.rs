//! Earliest-deadline-first schedulability tests.
//!
//! Two standard tests: the exact utilization bound for implicit deadlines
//! (U ≤ 1) and the processor-demand criterion for constrained deadlines:
//! for all absolute deadlines `t` up to the analysis horizon,
//! `dbf(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1) · C_i ≤ t`.

use crate::task::TaskSet;
use dynplat_common::time::SimDuration;

/// Processor demand of `set` in any interval of length `t` (synchronous
/// release), per the demand bound function.
pub fn demand_bound(set: &TaskSet, t: SimDuration) -> SimDuration {
    set.tasks()
        .iter()
        .map(|task| {
            if t < task.deadline {
                SimDuration::ZERO
            } else {
                let jobs = (t - task.deadline) / task.period + 1;
                task.wcet * jobs
            }
        })
        .sum()
}

/// All testing points (absolute deadlines) up to `horizon`.
fn deadline_points(set: &TaskSet, horizon: SimDuration) -> Vec<SimDuration> {
    let mut points = Vec::new();
    for task in set.tasks() {
        let mut d = task.deadline;
        while d <= horizon {
            points.push(d);
            d += task.period;
        }
    }
    points.sort();
    points.dedup();
    points
}

/// Exact EDF schedulability for constrained-deadline periodic tasks.
///
/// Checks `U ≤ 1` and the processor-demand criterion at every absolute
/// deadline up to the hyperperiod (sufficient for synchronous periodic
/// sets). Returns `false` for over-utilized sets immediately.
pub fn is_edf_schedulable(set: &TaskSet) -> bool {
    if set.is_empty() {
        return true;
    }
    if set.utilization() > 1.0 + 1e-12 {
        return false;
    }
    let horizon = set.hyperperiod();
    deadline_points(set, horizon)
        .into_iter()
        .all(|t| demand_bound(set, t) <= t)
}

/// The maximum extra utilization that could still be admitted under EDF
/// with implicit deadlines (headroom to 1.0).
pub fn edf_headroom(set: &TaskSet) -> f64 {
    (1.0 - set.utilization()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use dynplat_common::TaskId;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn implicit_deadline_full_utilization_is_schedulable() {
        let set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "a", ms(4), ms(2)),
            TaskSpec::periodic(TaskId(2), "b", ms(8), ms(4)),
        ]
        .into_iter()
        .collect();
        assert!((set.utilization() - 1.0).abs() < 1e-12);
        assert!(is_edf_schedulable(&set));
        assert_eq!(edf_headroom(&set), 0.0);
    }

    #[test]
    fn over_utilization_fails() {
        let set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "a", ms(4), ms(3)),
            TaskSpec::periodic(TaskId(2), "b", ms(8), ms(4)),
        ]
        .into_iter()
        .collect();
        assert!(!is_edf_schedulable(&set));
    }

    #[test]
    fn constrained_deadlines_tighten_the_test() {
        // U = 0.75 but both deadlines at 2 ms demand 3 ms of work by t=2.
        let set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "a", ms(4), ms(1)).with_deadline(ms(2)),
            TaskSpec::periodic(TaskId(2), "b", ms(4), ms(2)).with_deadline(ms(2)),
        ]
        .into_iter()
        .collect();
        assert!(set.utilization() < 1.0);
        assert!(!is_edf_schedulable(&set));
    }

    #[test]
    fn demand_bound_values() {
        let set: TaskSet = [TaskSpec::periodic(TaskId(1), "a", ms(10), ms(3)).with_deadline(ms(5))]
            .into_iter()
            .collect();
        assert_eq!(demand_bound(&set, ms(4)), SimDuration::ZERO);
        assert_eq!(demand_bound(&set, ms(5)), ms(3));
        assert_eq!(demand_bound(&set, ms(14)), ms(3));
        assert_eq!(demand_bound(&set, ms(15)), ms(6));
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert!(is_edf_schedulable(&TaskSet::new()));
        assert_eq!(edf_headroom(&TaskSet::new()), 1.0);
    }
}
