//! Sensitivity analysis: how much execution-time growth a schedule
//! tolerates.
//!
//! The paper's core worry is *uncertainty*: execution times on a dynamic
//! platform are not pinned down at design time. The critical scaling factor
//! (Lehoczky-style) answers "by how much may every WCET grow before the
//! task set stops being schedulable?" — the backend uses it to decide how
//! much headroom a vehicle configuration has before admitting yet another
//! application, and the monitoring substrate uses it to set drift-warning
//! thresholds.

use crate::rta;
use crate::task::{TaskSet, TaskSpec};

/// Scales every WCET in `set` by `factor` (deadlines/periods untouched).
fn scaled(set: &TaskSet, factor: f64) -> TaskSet {
    set.tasks()
        .iter()
        .map(|t| {
            let wcet = t
                .wcet
                .mul_f64(factor)
                .max(dynplat_common::time::SimDuration::from_nanos(1))
                .min(t.period);
            let mut scaled_task = TaskSpec::periodic(t.id, t.name.clone(), t.period, wcet)
                .with_priority(t.priority)
                .with_offset(t.offset);
            scaled_task.deadline = t.deadline;
            scaled_task.kind = t.kind;
            scaled_task
        })
        .collect()
}

/// The critical scaling factor under fixed-priority scheduling: the largest
/// uniform WCET multiplier (within `precision`) for which the set stays
/// schedulable by response-time analysis. Returns `0.0` if the set is
/// already unschedulable, and caps the search at `16.0` for nearly empty
/// sets.
///
/// # Panics
///
/// Panics if `precision` is not positive.
pub fn critical_scaling_factor(set: &TaskSet, precision: f64) -> f64 {
    assert!(precision > 0.0, "precision must be positive");
    if set.is_empty() {
        return 16.0;
    }
    if !rta::is_schedulable(set) {
        return 0.0;
    }
    let mut lo = 1.0f64;
    let mut hi = 16.0f64;
    if schedulable_at(set, hi) {
        return hi;
    }
    while hi - lo > precision {
        let mid = (lo + hi) / 2.0;
        if schedulable_at(set, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A scaling factor is feasible only if no WCET outgrows its period (the
/// clamp in [`scaled`] would otherwise mask the overload) and the scaled
/// set passes response-time analysis.
fn schedulable_at(set: &TaskSet, factor: f64) -> bool {
    let fits = set
        .tasks()
        .iter()
        .all(|t| t.wcet.mul_f64(factor) <= t.period);
    fits && rta::is_schedulable(&scaled(set, factor))
}

/// Slack report per task: WCRT and the margin to the deadline, at a given
/// scaling of the current set.
pub fn slack_at(set: &TaskSet, factor: f64) -> Vec<(dynplat_common::TaskId, Option<f64>)> {
    let scaled_set = scaled(set, factor);
    rta::response_times(&scaled_set)
        .into_iter()
        .map(|r| {
            let margin = r.wcrt.map(|w| {
                (r.deadline.as_nanos() as f64 - w.as_nanos() as f64) / r.deadline.as_nanos() as f64
            });
            (r.id, margin)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;
    use dynplat_common::TaskId;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("t{id}"), ms(period_ms), ms(wcet_ms))
            .with_priority(id)
    }

    #[test]
    fn lightly_loaded_set_has_large_headroom() {
        let set: TaskSet = [t(1, 100, 5), t(2, 200, 5)].into_iter().collect();
        let f = critical_scaling_factor(&set, 0.01);
        assert!(f > 10.0, "U = 0.075 tolerates >10x growth, got {f}");
    }

    #[test]
    fn nearly_full_set_has_little_headroom() {
        let set: TaskSet = [t(1, 10, 4), t(2, 20, 8)].into_iter().collect(); // U = 0.8
        let f = critical_scaling_factor(&set, 0.001);
        assert!((1.0..1.3).contains(&f), "got {f}");
        // The scaled set at the reported factor is indeed schedulable...
        assert!(rta::is_schedulable(&scaled(&set, f)));
        // ...and slightly above it is not.
        assert!(!rta::is_schedulable(&scaled(&set, f + 0.05)));
    }

    #[test]
    fn unschedulable_set_reports_zero() {
        let set: TaskSet = [t(1, 10, 6), t(2, 10, 6)].into_iter().collect();
        assert_eq!(critical_scaling_factor(&set, 0.01), 0.0);
    }

    #[test]
    fn empty_set_reports_the_cap() {
        assert_eq!(critical_scaling_factor(&TaskSet::new(), 0.01), 16.0);
    }

    #[test]
    fn slack_shrinks_with_scaling() {
        let set: TaskSet = [t(1, 10, 2), t(2, 20, 4)].into_iter().collect();
        let at_1: Vec<f64> = slack_at(&set, 1.0)
            .into_iter()
            .filter_map(|(_, m)| m)
            .collect();
        let at_2: Vec<f64> = slack_at(&set, 2.0)
            .into_iter()
            .filter_map(|(_, m)| m)
            .collect();
        assert_eq!(at_1.len(), 2);
        assert_eq!(at_2.len(), 2);
        for (a, b) in at_1.iter().zip(&at_2) {
            assert!(b < a, "slack must shrink: {a} -> {b}");
        }
    }

    #[test]
    fn factor_is_monotone_in_load() {
        let light: TaskSet = [t(1, 100, 2)].into_iter().collect();
        let heavy: TaskSet = [t(1, 100, 40)].into_iter().collect();
        assert!(critical_scaling_factor(&light, 0.01) > critical_scaling_factor(&heavy, 0.01));
    }
}
