//! Fixed-priority preemptive response-time analysis.
//!
//! The classic recurrence (Joseph & Pandya / Audsley): the worst-case
//! response time of task *i* satisfies
//! `R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j`,
//! iterated from `R_i = C_i` until a fixed point or until `R_i > D_i`
//! (unschedulable). This is the admission test the dynamic platform runs in
//! the backend before accepting a new deterministic application (§3.1).

use crate::task::{TaskSet, TaskSpec};
use dynplat_common::time::SimDuration;
use dynplat_common::TaskId;

/// Analysis result for one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtaResult {
    /// The analyzed task.
    pub id: TaskId,
    /// Worst-case response time, or `None` if the recurrence exceeded the
    /// deadline (task unschedulable at its priority).
    pub wcrt: Option<SimDuration>,
    /// The task's relative deadline, for convenience.
    pub deadline: SimDuration,
}

impl RtaResult {
    /// `true` if the task meets its deadline in the worst case.
    pub fn is_schedulable(&self) -> bool {
        self.wcrt.is_some()
    }

    /// Slack between deadline and WCRT (zero when unschedulable).
    pub fn slack(&self) -> SimDuration {
        match self.wcrt {
            Some(r) => self.deadline.saturating_sub(r),
            None => SimDuration::ZERO,
        }
    }
}

/// Computes worst-case response times for every task in `set` under
/// preemptive fixed-priority scheduling.
///
/// Ties in priority are broken by task id (lower id first), matching the
/// simulator in [`crate::simulate`].
pub fn response_times(set: &TaskSet) -> Vec<RtaResult> {
    set.tasks()
        .iter()
        .map(|task| {
            let hp: Vec<&TaskSpec> = set
                .tasks()
                .iter()
                .filter(|j| (j.priority, j.id.raw()) < (task.priority, task.id.raw()))
                .collect();
            let mut r = task.wcet;
            let wcrt = loop {
                let interference: SimDuration = hp
                    .iter()
                    .map(|j| j.wcet * r.as_nanos().div_ceil(j.period.as_nanos()))
                    .sum();
                let r_next = task.wcet + interference;
                if r_next == r {
                    break Some(r);
                }
                if r_next > task.deadline {
                    break None;
                }
                r = r_next;
            };
            RtaResult {
                id: task.id,
                wcrt,
                deadline: task.deadline,
            }
        })
        .collect()
}

/// `true` if every task in `set` is schedulable under fixed priorities.
pub fn is_schedulable(set: &TaskSet) -> bool {
    response_times(set).iter().all(RtaResult::is_schedulable)
}

/// Assigns deadline-monotonic priorities (shorter deadline → higher
/// priority, i.e. smaller priority number), which is optimal for
/// constrained-deadline synchronous task sets. Returns a new set; relative
/// order of equal deadlines follows task id.
pub fn assign_deadline_monotonic(set: &TaskSet) -> TaskSet {
    let mut tasks: Vec<TaskSpec> = set.tasks().to_vec();
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].deadline, tasks[i].id.raw()));
    for (prio, &i) in order.iter().enumerate() {
        tasks[i].priority = prio as u32;
    }
    tasks.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(id: u32, period_ms: u64, wcet_ms: u64, prio: u32) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("t{id}"), ms(period_ms), ms(wcet_ms))
            .with_priority(prio)
    }

    #[test]
    fn textbook_example() {
        // Classic three-task example: T=(7,12,20), C=(3,3,5), RM priorities.
        let set: TaskSet = [t(1, 7, 3, 0), t(2, 12, 3, 1), t(3, 20, 5, 2)]
            .into_iter()
            .collect();
        let rts = response_times(&set);
        assert_eq!(rts[0].wcrt, Some(ms(3)));
        assert_eq!(rts[1].wcrt, Some(ms(6)));
        // R3: 5 + 2*3 + 1*3 = 14 -> iterate: 5, 11, 14, 17, 20, 20.
        assert_eq!(rts[2].wcrt, Some(ms(20)));
        assert!(is_schedulable(&set));
    }

    #[test]
    fn unschedulable_low_priority_task_detected() {
        let set: TaskSet = [t(1, 4, 2, 0), t(2, 8, 4, 1), t(3, 16, 2, 2)]
            .into_iter()
            .collect();
        // U = 0.5 + 0.5 + 0.125 > 1: lowest task cannot fit.
        let rts = response_times(&set);
        assert!(rts[0].is_schedulable());
        assert!(!rts[2].is_schedulable());
        assert!(!is_schedulable(&set));
        assert_eq!(rts[2].slack(), SimDuration::ZERO);
    }

    #[test]
    fn highest_priority_wcrt_is_own_wcet() {
        let set: TaskSet = [t(1, 100, 10, 0), t(2, 100, 50, 1)].into_iter().collect();
        let rts = response_times(&set);
        assert_eq!(rts[0].wcrt, Some(ms(10)));
        assert_eq!(rts[0].slack(), ms(90));
    }

    #[test]
    fn deadline_monotonic_assignment() {
        let set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "slow", ms(100), ms(1)).with_deadline(ms(50)),
            TaskSpec::periodic(TaskId(2), "fast", ms(100), ms(1)).with_deadline(ms(5)),
            TaskSpec::periodic(TaskId(3), "mid", ms(100), ms(1)).with_deadline(ms(20)),
        ]
        .into_iter()
        .collect();
        let dm = assign_deadline_monotonic(&set);
        let prio_of = |id: u32| dm.get(TaskId(id)).unwrap().priority;
        assert!(prio_of(2) < prio_of(3));
        assert!(prio_of(3) < prio_of(1));
    }

    #[test]
    fn dm_recovers_schedulability() {
        // With inverted priorities this set fails; with DM it passes.
        let bad: TaskSet = [
            TaskSpec::periodic(TaskId(1), "fast", ms(5), ms(2)).with_priority(1),
            TaskSpec::periodic(TaskId(2), "slow", ms(50), ms(20)).with_priority(0),
        ]
        .into_iter()
        .collect();
        assert!(!is_schedulable(&bad));
        let dm = assign_deadline_monotonic(&bad);
        assert!(is_schedulable(&dm));
    }

    #[test]
    fn priority_ties_break_by_id() {
        let set: TaskSet = [t(2, 10, 3, 0), t(1, 10, 3, 0)].into_iter().collect();
        let rts = response_times(&set);
        // Task 1 (lower id) is treated as higher priority.
        let r1 = rts.iter().find(|r| r.id == TaskId(1)).unwrap();
        let r2 = rts.iter().find(|r| r.id == TaskId(2)).unwrap();
        assert_eq!(r1.wcrt, Some(ms(3)));
        assert_eq!(r2.wcrt, Some(ms(6)));
    }
}
