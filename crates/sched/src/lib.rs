//! RTOS scheduling substrate for the dynamic platform.
//!
//! §3.1 of the paper ("CPU") demands that deterministic applications with
//! fixed activation intervals and computation deadlines keep their schedule
//! even when non-deterministic applications run side-by-side, and that new
//! schedules for changed application sets are synthesized and validated in
//! the backend. This crate provides the full toolbox:
//!
//! * [`task`] — the periodic task model shared by all analyses;
//! * [`rta`] — fixed-priority preemptive response-time analysis;
//! * [`edf`] — EDF utilization and processor-demand tests;
//! * [`tt`] — time-triggered schedule synthesis on the hyperperiod, with
//!   incremental insertion (minimal disturbance) and full resynthesis;
//! * [`server`] — periodic-resource (budget) servers and the compositional
//!   supply/demand admission test used to sandbox NDA load;
//! * [`simulate`] — a scheduler simulator measuring response times,
//!   jitter and deadline misses under several policies (the E2 engine);
//! * [`admission`] — online admission control for new applications;
//! * [`manage`] — the schedule-management framework of \[21\]: local
//!   incremental synthesis vs. cloud-based full resynthesis;
//! * [`sensitivity`] — critical scaling factors: how much WCET uncertainty
//!   a configuration absorbs before becoming unschedulable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod edf;
pub mod manage;
pub mod rta;
pub mod sensitivity;
pub mod server;
pub mod simulate;
pub mod task;
pub mod tt;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionError};
pub use manage::{ScheduleManager, SynthesisBackend, SynthesisOutcome};
pub use rta::{assign_deadline_monotonic, response_times, RtaResult};
pub use sensitivity::critical_scaling_factor;
pub use server::{PeriodicServer, ServerAnalysis};
pub use simulate::{simulate_schedule, Policy, SchedSimConfig, SchedStats};
pub use task::{TaskSet, TaskSpec};
pub use tt::{TtEntry, TtSchedule, TtSynthesisError};
