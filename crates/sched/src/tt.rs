//! Time-triggered schedule synthesis.
//!
//! The paper proposes to "generate a schedule from the model and test this
//! schedule in simulations in the backend" (§3.1). A time-triggered schedule
//! fixes, for every job of every deterministic task within the hyperperiod,
//! a non-preemptive execution slot. Synthesis here is an earliest-fit
//! heuristic in rate-monotonic order — fast enough for online use and
//! producing compact schedules; its output is validated structurally by
//! [`TtSchedule::validate`] and behaviorally by the simulator.
//!
//! Two synthesis modes mirror the schedule-management framework of \[21\]:
//!
//! * [`synthesize`] — full resynthesis: may move every slot, packs best;
//! * [`insert_incremental`] — adds one task's jobs into the gaps of an
//!   existing schedule without touching any placed slot (zero disturbance
//!   to running applications).

use crate::task::{TaskSet, TaskSpec};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::TaskId;
use std::fmt;

/// One non-preemptive execution slot within the hyperperiod.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TtEntry {
    /// The task this slot belongs to.
    pub task: TaskId,
    /// Job index within the hyperperiod (k-th release).
    pub job: u64,
    /// Slot start offset from hyperperiod start.
    pub start: SimDuration,
    /// Slot length (the task's WCET).
    pub duration: SimDuration,
}

impl TtEntry {
    /// Slot end offset.
    pub fn end(&self) -> SimDuration {
        self.start + self.duration
    }
}

/// Errors from schedule synthesis or validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TtSynthesisError {
    /// No gap accommodates job `job` of the task within its release/deadline
    /// window.
    NoFeasibleSlot {
        /// Task that could not be placed.
        task: TaskId,
        /// Job index that failed.
        job: u64,
    },
    /// The task set exceeds CPU capacity (utilization > 1).
    OverUtilized,
    /// A task with the same id is already in the schedule.
    DuplicateTask(TaskId),
}

impl fmt::Display for TtSynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtSynthesisError::NoFeasibleSlot { task, job } => {
                write!(f, "no feasible slot for job {job} of {task}")
            }
            TtSynthesisError::OverUtilized => write!(f, "task set utilization exceeds 1"),
            TtSynthesisError::DuplicateTask(id) => write!(f, "task {id} already scheduled"),
        }
    }
}

impl std::error::Error for TtSynthesisError {}

/// A complete time-triggered table repeating every hyperperiod.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TtSchedule {
    hyperperiod: SimDuration,
    entries: Vec<TtEntry>,
}

impl TtSchedule {
    /// Builds a schedule from raw entries, sorting them and rejecting
    /// overlapping slots. Used when reconstructing a table after removing a
    /// task (remaining slots keep their positions).
    ///
    /// # Errors
    ///
    /// Returns a description of the first overlapping pair found.
    pub fn from_entries(hyperperiod: SimDuration, entries: Vec<TtEntry>) -> Result<Self, String> {
        let mut schedule = TtSchedule {
            hyperperiod,
            entries,
        };
        schedule.sort();
        for pair in schedule.entries.windows(2) {
            if pair[0].end() > pair[1].start {
                return Err(format!("slots overlap: {:?} and {:?}", pair[0], pair[1]));
            }
        }
        Ok(schedule)
    }

    /// The table's repetition period.
    pub fn hyperperiod(&self) -> SimDuration {
        self.hyperperiod
    }

    /// All slots, sorted by start offset.
    pub fn entries(&self) -> &[TtEntry] {
        &self.entries
    }

    /// Slots of one task.
    pub fn entries_of(&self, task: TaskId) -> impl Iterator<Item = &TtEntry> {
        self.entries.iter().filter(move |e| e.task == task)
    }

    /// Total busy time within one hyperperiod.
    pub fn busy_time(&self) -> SimDuration {
        self.entries.iter().map(|e| e.duration).sum()
    }

    /// Utilization of the table (busy time / hyperperiod).
    pub fn utilization(&self) -> f64 {
        if self.hyperperiod.is_zero() {
            return 0.0;
        }
        self.busy_time().as_nanos() as f64 / self.hyperperiod.as_nanos() as f64
    }

    /// The slot active at absolute time `t`, if any.
    pub fn slot_at(&self, t: SimTime) -> Option<&TtEntry> {
        if self.hyperperiod.is_zero() {
            return None;
        }
        let off = t % self.hyperperiod;
        self.entries
            .iter()
            .find(|e| e.start <= off && off < e.end())
    }

    /// Structural validation against the task set that produced it.
    ///
    /// Checks: entries sorted and non-overlapping; every job of every task
    /// has exactly one slot of WCET length inside its `[release, release +
    /// deadline]` window; no foreign tasks.
    pub fn validate(&self, set: &TaskSet) -> Result<(), String> {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|e| e.start);
        for pair in sorted.windows(2) {
            if pair[0].end() > pair[1].start {
                return Err(format!("slots overlap: {:?} and {:?}", pair[0], pair[1]));
            }
        }
        for e in &self.entries {
            if set.get(e.task).is_none() {
                return Err(format!("foreign task {} in schedule", e.task));
            }
        }
        for task in set.tasks() {
            if self.hyperperiod % task.period != SimDuration::ZERO {
                return Err(format!(
                    "hyperperiod not a multiple of {}'s period",
                    task.id
                ));
            }
            let jobs = self.hyperperiod / task.period;
            let mut seen = vec![false; jobs as usize];
            for e in self.entries_of(task.id) {
                if e.job >= jobs {
                    return Err(format!("job index {} out of range for {}", e.job, task.id));
                }
                if seen[e.job as usize] {
                    return Err(format!("job {} of {} scheduled twice", e.job, task.id));
                }
                seen[e.job as usize] = true;
                if e.duration != task.wcet {
                    return Err(format!("slot length mismatch for {}", task.id));
                }
                let release = task.period * e.job + task.offset;
                if e.start < release || e.end() > release + task.deadline {
                    return Err(format!(
                        "job {} of {} outside its window: slot {}..{}",
                        e.job,
                        task.id,
                        e.start,
                        e.end()
                    ));
                }
            }
            if !seen.iter().all(|&s| s) {
                return Err(format!("missing jobs for {}", task.id));
            }
        }
        Ok(())
    }

    fn sort(&mut self) {
        self.entries.sort_by_key(|e| e.start);
    }

    /// Places all jobs of `task` into the current gaps; used by both
    /// synthesis modes. Does not sort afterwards.
    fn place_task(&mut self, task: &TaskSpec) -> Result<(), TtSynthesisError> {
        let jobs = self.hyperperiod / task.period;
        for job in 0..jobs {
            let release = task.period * job + task.offset;
            let latest_start = release + task.deadline - task.wcet;
            let mut candidate = release;
            // Scan occupied slots in start order for the first fitting gap.
            let mut occupied: Vec<(SimDuration, SimDuration)> =
                self.entries.iter().map(|e| (e.start, e.end())).collect();
            occupied.sort();
            for (s, e) in occupied {
                if candidate + task.wcet <= s {
                    break; // fits before this slot
                }
                if e > candidate {
                    candidate = e;
                }
                if candidate > latest_start {
                    return Err(TtSynthesisError::NoFeasibleSlot { task: task.id, job });
                }
            }
            if candidate > latest_start {
                return Err(TtSynthesisError::NoFeasibleSlot { task: task.id, job });
            }
            self.entries.push(TtEntry {
                task: task.id,
                job,
                start: candidate,
                duration: task.wcet,
            });
        }
        Ok(())
    }

    /// Expands this schedule to a larger hyperperiod by replication.
    ///
    /// # Panics
    ///
    /// Panics if `new_hp` is not a multiple of the current hyperperiod.
    pub fn expand_to(&self, new_hp: SimDuration) -> TtSchedule {
        if self.hyperperiod.is_zero() {
            return TtSchedule {
                hyperperiod: new_hp,
                entries: Vec::new(),
            };
        }
        assert!(
            new_hp % self.hyperperiod == SimDuration::ZERO,
            "new hyperperiod must be a multiple of the current one"
        );
        let reps = new_hp / self.hyperperiod;
        let jobs_per_rep: std::collections::BTreeMap<TaskId, u64> =
            self.entries
                .iter()
                .fold(std::collections::BTreeMap::new(), |mut m, e| {
                    let c = m.entry(e.task).or_insert(0);
                    *c = (*c).max(e.job + 1);
                    m
                });
        let mut entries = Vec::with_capacity(self.entries.len() * reps as usize);
        for rep in 0..reps {
            for e in &self.entries {
                entries.push(TtEntry {
                    task: e.task,
                    job: e.job + rep * jobs_per_rep[&e.task],
                    start: e.start + self.hyperperiod * rep,
                    duration: e.duration,
                });
            }
        }
        let mut out = TtSchedule {
            hyperperiod: new_hp,
            entries,
        };
        out.sort();
        out
    }
}

/// Full synthesis: earliest-fit placement in rate-monotonic order.
///
/// # Errors
///
/// Returns [`TtSynthesisError::OverUtilized`] if utilization exceeds 1, or
/// [`TtSynthesisError::NoFeasibleSlot`] if the heuristic cannot place a job
/// (the set may still be schedulable preemptively; non-preemptive TT is
/// stricter).
pub fn synthesize(set: &TaskSet) -> Result<TtSchedule, TtSynthesisError> {
    if set.utilization() > 1.0 + 1e-12 {
        return Err(TtSynthesisError::OverUtilized);
    }
    let mut schedule = TtSchedule {
        hyperperiod: set.hyperperiod(),
        entries: Vec::new(),
    };
    let mut tasks: Vec<&TaskSpec> = set.tasks().iter().collect();
    tasks.sort_by_key(|t| (t.period, t.id.raw()));
    for task in tasks {
        schedule.place_task(task)?;
    }
    schedule.sort();
    Ok(schedule)
}

/// Incremental insertion: adds `task` to `schedule` without moving any
/// existing slot — the zero-disturbance "local" mode of \[21\].
///
/// The hyperperiod grows to `lcm` of the old one and the task's period; the
/// existing table is replicated accordingly.
///
/// # Errors
///
/// Returns [`TtSynthesisError::DuplicateTask`] if the task is already
/// scheduled, or [`TtSynthesisError::NoFeasibleSlot`] if the gaps do not
/// suffice (the caller may then fall back to full resynthesis).
pub fn insert_incremental(
    schedule: &TtSchedule,
    task: &TaskSpec,
) -> Result<TtSchedule, TtSynthesisError> {
    if schedule.entries.iter().any(|e| e.task == task.id) {
        return Err(TtSynthesisError::DuplicateTask(task.id));
    }
    let new_hp = if schedule.hyperperiod.is_zero() {
        task.period
    } else {
        schedule.hyperperiod.lcm(task.period)
    };
    let mut expanded = schedule.expand_to(new_hp);
    expanded.place_task(task)?;
    expanded.sort();
    Ok(expanded)
}

/// Counts how many slots of tasks common to both schedules moved — the
/// *disturbance* metric of the schedule-management experiments (E10).
///
/// Both schedules are compared over the LCM of their hyperperiods.
pub fn disturbance(old: &TtSchedule, new: &TtSchedule) -> usize {
    if old.hyperperiod.is_zero() || new.hyperperiod.is_zero() {
        return 0;
    }
    let common = old.hyperperiod.lcm(new.hyperperiod);
    let old_x = old.expand_to(common);
    let new_x = new.expand_to(common);
    let mut moved = 0;
    for e in old_x.entries() {
        let matching = new_x
            .entries()
            .iter()
            .find(|n| n.task == e.task && n.job == e.job);
        match matching {
            Some(n) if n.start == e.start => {}
            Some(_) => moved += 1,
            None => {} // task removed; not counted as disturbance
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn t(id: u32, period_ms: u64, wcet_ms: u64) -> TaskSpec {
        TaskSpec::periodic(TaskId(id), format!("t{id}"), ms(period_ms), ms(wcet_ms))
    }

    #[test]
    fn synthesizes_and_validates_simple_set() {
        let set: TaskSet = [t(1, 4, 1), t(2, 8, 2), t(3, 8, 1)].into_iter().collect();
        let schedule = synthesize(&set).unwrap();
        assert_eq!(schedule.hyperperiod(), ms(8));
        schedule.validate(&set).unwrap();
        // 2 jobs of t1 + 1 of t2 + 1 of t3 = 4 entries.
        assert_eq!(schedule.entries().len(), 4);
        assert!((schedule.utilization() - (2.0 + 2.0 + 1.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn over_utilized_set_is_rejected() {
        let set: TaskSet = [t(1, 4, 3), t(2, 8, 3)].into_iter().collect();
        assert_eq!(synthesize(&set), Err(TtSynthesisError::OverUtilized));
    }

    #[test]
    fn slot_lookup() {
        let set: TaskSet = [t(1, 4, 2)].into_iter().collect();
        let schedule = synthesize(&set).unwrap();
        assert_eq!(
            schedule.slot_at(SimTime::from_millis(0)).unwrap().task,
            TaskId(1)
        );
        assert!(schedule.slot_at(SimTime::from_millis(3)).is_none());
        // Repeats every hyperperiod.
        assert_eq!(
            schedule.slot_at(SimTime::from_millis(9)).unwrap().task,
            TaskId(1)
        );
    }

    #[test]
    fn incremental_insert_preserves_existing_slots() {
        let set: TaskSet = [t(1, 4, 1), t(2, 8, 2)].into_iter().collect();
        let base = synthesize(&set).unwrap();
        let new_task = t(3, 8, 1);
        let grown = insert_incremental(&base, &new_task).unwrap();
        assert_eq!(
            disturbance(&base, &grown),
            0,
            "incremental mode must not move slots"
        );
        let mut full_set = set.clone();
        full_set.push(new_task);
        grown.validate(&full_set).unwrap();
    }

    #[test]
    fn incremental_insert_grows_hyperperiod() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let base = synthesize(&set).unwrap();
        let grown = insert_incremental(&base, &t(2, 6, 1)).unwrap();
        assert_eq!(grown.hyperperiod(), ms(12));
        let mut full_set = set.clone();
        full_set.push(t(2, 6, 1));
        grown.validate(&full_set).unwrap();
    }

    #[test]
    fn incremental_rejects_duplicates_and_overfull() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let base = synthesize(&set).unwrap();
        assert_eq!(
            insert_incremental(&base, &t(1, 4, 1)),
            Err(TtSynthesisError::DuplicateTask(TaskId(1)))
        );
        // A task needing a 4 ms slot every 4 ms cannot fit next to t1.
        let fat = t(9, 4, 4);
        assert!(matches!(
            insert_incremental(&base, &fat),
            Err(TtSynthesisError::NoFeasibleSlot { .. })
        ));
    }

    #[test]
    fn full_resynthesis_may_disturb() {
        let set: TaskSet = [t(1, 8, 2), t(2, 8, 2)].into_iter().collect();
        let base = synthesize(&set).unwrap();
        // Resynthesize with an extra short-period task: RM order changes
        // placement of the old tasks.
        let mut bigger = set.clone();
        bigger.push(t(3, 4, 1));
        let full = synthesize(&bigger).unwrap();
        full.validate(&bigger).unwrap();
        assert!(
            disturbance(&base, &full) > 0,
            "full resynthesis moves old slots"
        );
    }

    #[test]
    fn validate_catches_corruption() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let mut schedule = synthesize(&set).unwrap();
        schedule.entries[0].start = ms(3); // outside [0, 4-1] window start is fine but overlaps? job0 window is [0,4]; start=3, end=4 ok.
                                           // Make it actually invalid: shift beyond deadline window.
        schedule.entries[0].start = ms(4);
        assert!(schedule.validate(&set).is_err());
    }

    #[test]
    fn expand_replicates_entries() {
        let set: TaskSet = [t(1, 4, 1)].into_iter().collect();
        let base = synthesize(&set).unwrap();
        let doubled = base.expand_to(ms(8));
        assert_eq!(doubled.entries().len(), 2);
        assert_eq!(doubled.entries()[1].start, ms(4));
        assert_eq!(doubled.entries()[1].job, 1);
        doubled.validate(&set).unwrap();
    }

    #[test]
    fn offsets_are_respected() {
        let set: TaskSet = [TaskSpec::periodic(TaskId(1), "a", ms(10), ms(2)).with_offset(ms(5))]
            .into_iter()
            .collect();
        let schedule = synthesize(&set).unwrap();
        assert!(schedule.entries()[0].start >= ms(5));
        schedule.validate(&set).unwrap();
    }
}
