//! Periodic-resource servers and compositional admission.
//!
//! To give non-deterministic applications CPU time without letting them
//! disturb deterministic ones (§3.1 "freedom of interference"), the platform
//! sandboxes NDA load in a *periodic server*: a budget of Θ time units
//! replenished every Π. The deterministic side sees the server as one more
//! periodic task of WCET Θ and period Π; the NDA side receives a guaranteed
//! *supply bound function* and can be admission-tested compositionally
//! against it (Shin & Lee's periodic resource model), which is the
//! "compositional analysis approach" admission control of \[6\] in the
//! paper's related work.

use crate::edf::demand_bound;
use crate::task::{TaskSet, TaskSpec};
use dynplat_common::time::SimDuration;
use dynplat_common::TaskId;

/// A periodic resource: `budget` units of CPU guaranteed every `period`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeriodicServer {
    /// Guaranteed execution budget per replenishment period.
    pub budget: SimDuration,
    /// Replenishment period.
    pub period: SimDuration,
}

impl PeriodicServer {
    /// Creates a server.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `budget > period`.
    pub fn new(budget: SimDuration, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "server period must be non-zero");
        assert!(budget <= period, "budget cannot exceed period");
        PeriodicServer { budget, period }
    }

    /// Fraction of the CPU this server reserves.
    pub fn bandwidth(self) -> f64 {
        self.budget.as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// The supply bound function: minimum CPU time guaranteed in *any*
    /// interval of length `t` (Shin & Lee, RTSS 2003).
    pub fn supply_bound(self, t: SimDuration) -> SimDuration {
        let theta = self.budget.as_nanos() as i128;
        let pi = self.period.as_nanos() as i128;
        let t = t.as_nanos() as i128;
        let blackout = pi - theta;
        if t <= blackout {
            return SimDuration::ZERO;
        }
        let y = (t - blackout) / pi;
        let supply = y * theta + 0.max(t - 2 * blackout - y * pi);
        SimDuration::from_nanos(supply.max(0) as u64)
    }

    /// The periodic task the *host* schedule must reserve for this server.
    pub fn as_host_task(self, id: TaskId, name: impl Into<String>) -> TaskSpec {
        TaskSpec::periodic(id, name, self.period, self.budget)
    }
}

/// Compositional admission of a child task set onto a periodic server.
#[derive(Clone, Debug)]
pub struct ServerAnalysis {
    server: PeriodicServer,
}

impl ServerAnalysis {
    /// Creates an analysis for `server`.
    pub fn new(server: PeriodicServer) -> Self {
        ServerAnalysis { server }
    }

    /// The analyzed server.
    pub fn server(&self) -> PeriodicServer {
        self.server
    }

    /// `true` if `child` (scheduled EDF inside the server) is guaranteed
    /// enough supply: `dbf(t) ≤ sbf(t)` at every absolute deadline up to
    /// the child hyperperiod plus one server period.
    pub fn admits(&self, child: &TaskSet) -> bool {
        if child.is_empty() {
            return true;
        }
        if child.utilization() > self.server.bandwidth() + 1e-12 {
            return false;
        }
        let horizon = child.hyperperiod() + self.server.period * 2;
        let mut points: Vec<SimDuration> = Vec::new();
        for task in child.tasks() {
            let mut d = task.deadline;
            while d <= horizon {
                points.push(d);
                d += task.period;
            }
        }
        points.sort();
        points.dedup();
        points
            .into_iter()
            .all(|t| demand_bound(child, t) <= self.server.supply_bound(t))
    }

    /// The smallest budget (at granularity `step`) for which this server's
    /// period admits `child`; `None` if even a full-period budget fails.
    pub fn minimal_budget(&self, child: &TaskSet, step: SimDuration) -> Option<SimDuration> {
        assert!(!step.is_zero(), "step must be non-zero");
        let mut budget = step;
        while budget <= self.server.period {
            let candidate = ServerAnalysis::new(PeriodicServer::new(budget, self.server.period));
            if candidate.admits(child) {
                return Some(budget);
            }
            budget += step;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn supply_bound_shape() {
        let s = PeriodicServer::new(ms(2), ms(5));
        // Blackout: worst case 2*(Π−Θ) = 6 ms without supply... sbf(3)=0.
        assert_eq!(s.supply_bound(ms(3)), SimDuration::ZERO);
        assert_eq!(s.supply_bound(ms(5) - ms(2)), SimDuration::ZERO);
        // At t = Π - Θ + Π = 8 ms: one full budget guaranteed.
        assert_eq!(s.supply_bound(ms(8)), ms(2));
        // Long horizon: supply approaches bandwidth * t.
        let t = ms(1000);
        let sup = s.supply_bound(t);
        let expect = t.as_nanos() as f64 * s.bandwidth();
        assert!((sup.as_nanos() as f64 - expect).abs() / expect < 0.02);
    }

    #[test]
    fn supply_bound_is_monotone() {
        let s = PeriodicServer::new(ms(3), ms(10));
        let mut last = SimDuration::ZERO;
        for k in 0..200 {
            let sup = s.supply_bound(SimDuration::from_micros(k * 137));
            assert!(sup >= last);
            last = sup;
        }
    }

    #[test]
    fn admits_light_child_rejects_heavy() {
        let server = PeriodicServer::new(ms(4), ms(10)); // 40% bandwidth
        let analysis = ServerAnalysis::new(server);
        let light: TaskSet = [TaskSpec::periodic(TaskId(1), "l", ms(100), ms(10))]
            .into_iter()
            .collect();
        assert!(analysis.admits(&light));
        let heavy: TaskSet = [TaskSpec::periodic(TaskId(1), "h", ms(10), ms(5))]
            .into_iter()
            .collect();
        assert!(!analysis.admits(&heavy), "50% demand exceeds 40% bandwidth");
        // Bandwidth is necessary but not sufficient: tight deadline fails too.
        let tight: TaskSet =
            [TaskSpec::periodic(TaskId(1), "t", ms(100), ms(3)).with_deadline(ms(5))]
                .into_iter()
                .collect();
        assert!(
            !analysis.admits(&tight),
            "deadline shorter than worst-case blackout"
        );
    }

    #[test]
    fn empty_child_is_admitted() {
        let analysis = ServerAnalysis::new(PeriodicServer::new(ms(1), ms(10)));
        assert!(analysis.admits(&TaskSet::new()));
    }

    #[test]
    fn minimal_budget_search() {
        let child: TaskSet = [TaskSpec::periodic(TaskId(1), "c", ms(50), ms(5))]
            .into_iter()
            .collect();
        let analysis = ServerAnalysis::new(PeriodicServer::new(ms(1), ms(10)));
        let min = analysis.minimal_budget(&child, ms(1)).unwrap();
        assert!(min >= ms(2) && min <= ms(10), "got {min}");
        // The found budget indeed admits.
        assert!(ServerAnalysis::new(PeriodicServer::new(min, ms(10))).admits(&child));
    }

    #[test]
    fn host_task_matches_reservation() {
        let s = PeriodicServer::new(ms(2), ms(8));
        let host = s.as_host_task(TaskId(99), "nda-server");
        assert_eq!(host.period, ms(8));
        assert_eq!(host.wcet, ms(2));
        assert!((s.bandwidth() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "budget cannot exceed period")]
    fn oversized_budget_panics() {
        PeriodicServer::new(ms(11), ms(10));
    }
}
