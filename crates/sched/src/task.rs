//! The periodic task model.
//!
//! A deterministic application (§3.1) is modeled as one or more periodic
//! tasks with fixed activation interval, worst-case execution time and a
//! deadline. Non-deterministic work appears either as sporadic tasks with
//! soft deadlines or as aggregate load inside a budget server.

use dynplat_common::time::{hyperperiod, SimDuration};
use dynplat_common::{AppKind, TaskId};
use std::fmt;

/// A periodic task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task identifier.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Deterministic or non-deterministic origin.
    pub kind: AppKind,
    /// Activation period.
    pub period: SimDuration,
    /// Worst-case execution time.
    pub wcet: SimDuration,
    /// Relative deadline (defaults to the period).
    pub deadline: SimDuration,
    /// First release offset from time zero.
    pub offset: SimDuration,
    /// Fixed priority; **lower value = higher priority**. Assigned by
    /// [`crate::rta::assign_deadline_monotonic`] when not set manually.
    pub priority: u32,
}

impl TaskSpec {
    /// Creates a deterministic periodic task with deadline = period, zero
    /// offset, and priority equal to its id.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `wcet` is zero, or `wcet > period`.
    pub fn periodic(
        id: TaskId,
        name: impl Into<String>,
        period: SimDuration,
        wcet: SimDuration,
    ) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        assert!(!wcet.is_zero(), "wcet must be non-zero");
        assert!(wcet <= period, "wcet must not exceed period");
        TaskSpec {
            id,
            name: name.into(),
            kind: AppKind::Deterministic,
            period,
            wcet,
            deadline: period,
            offset: SimDuration::ZERO,
            priority: id.raw(),
        }
    }

    /// Marks this task as non-deterministic background work.
    pub fn non_deterministic(mut self) -> Self {
        self.kind = AppKind::NonDeterministic;
        self
    }

    /// Sets a constrained relative deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or smaller than the WCET.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(
            !deadline.is_zero() && deadline >= self.wcet,
            "invalid deadline"
        );
        self.deadline = deadline;
        self
    }

    /// Sets the release offset.
    pub fn with_offset(mut self, offset: SimDuration) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the fixed priority (lower value = higher priority).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// CPU utilization of this task.
    pub fn utilization(&self) -> f64 {
        self.wcet.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): T={} C={} D={} prio={}",
            self.name, self.id, self.period, self.wcet, self.deadline, self.priority
        )
    }
}

/// An ordered collection of tasks bound to one CPU.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskSet {
    tasks: Vec<TaskSpec>,
}

impl TaskSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Adds a task.
    ///
    /// # Panics
    ///
    /// Panics if a task with the same id is already present.
    pub fn push(&mut self, task: TaskSpec) {
        assert!(
            !self.tasks.iter().any(|t| t.id == task.id),
            "duplicate task id {}",
            task.id
        );
        self.tasks.push(task);
    }

    /// Removes a task by id, returning it if present.
    pub fn remove(&mut self, id: TaskId) -> Option<TaskSpec> {
        let idx = self.tasks.iter().position(|t| t.id == id)?;
        Some(self.tasks.remove(idx))
    }

    /// The tasks in insertion order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Looks up a task by id.
    pub fn get(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total CPU utilization.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(TaskSpec::utilization).sum()
    }

    /// Hyperperiod (LCM of all periods); zero for an empty set.
    pub fn hyperperiod(&self) -> SimDuration {
        hyperperiod(self.tasks.iter().map(|t| t.period))
    }

    /// Only the deterministic tasks.
    pub fn deterministic(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks
            .iter()
            .filter(|t| t.kind == AppKind::Deterministic)
    }

    /// Only the non-deterministic tasks.
    pub fn non_deterministic(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks
            .iter()
            .filter(|t| t.kind == AppKind::NonDeterministic)
    }
}

impl FromIterator<TaskSpec> for TaskSet {
    fn from_iter<I: IntoIterator<Item = TaskSpec>>(iter: I) -> Self {
        let mut set = TaskSet::new();
        for t in iter {
            set.push(t);
        }
        set
    }
}

impl Extend<TaskSpec> for TaskSet {
    fn extend<I: IntoIterator<Item = TaskSpec>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a TaskSpec;
    type IntoIter = std::slice::Iter<'a, TaskSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn periodic_defaults() {
        let t = TaskSpec::periodic(TaskId(1), "ctrl", ms(10), ms(2));
        assert_eq!(t.deadline, ms(10));
        assert_eq!(t.offset, SimDuration::ZERO);
        assert_eq!(t.kind, AppKind::Deterministic);
        assert!((t.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wcet must not exceed period")]
    fn overcommitted_task_panics() {
        TaskSpec::periodic(TaskId(1), "bad", ms(1), ms(2));
    }

    #[test]
    fn builder_methods() {
        let t = TaskSpec::periodic(TaskId(2), "x", ms(20), ms(1))
            .with_deadline(ms(5))
            .with_offset(ms(3))
            .with_priority(7)
            .non_deterministic();
        assert_eq!(t.deadline, ms(5));
        assert_eq!(t.offset, ms(3));
        assert_eq!(t.priority, 7);
        assert_eq!(t.kind, AppKind::NonDeterministic);
    }

    #[test]
    fn set_operations() {
        let mut set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "a", ms(4), ms(1)),
            TaskSpec::periodic(TaskId(2), "b", ms(6), ms(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.hyperperiod(), ms(12));
        assert!((set.utilization() - (0.25 + 1.0 / 6.0)).abs() < 1e-12);
        assert!(set.get(TaskId(1)).is_some());
        let removed = set.remove(TaskId(1)).unwrap();
        assert_eq!(removed.name, "a");
        assert_eq!(set.len(), 1);
        assert!(set.remove(TaskId(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate task id")]
    fn duplicate_ids_panic() {
        let mut set = TaskSet::new();
        set.push(TaskSpec::periodic(TaskId(1), "a", ms(4), ms(1)));
        set.push(TaskSpec::periodic(TaskId(1), "b", ms(4), ms(1)));
    }

    #[test]
    fn kind_filters() {
        let set: TaskSet = [
            TaskSpec::periodic(TaskId(1), "da", ms(4), ms(1)),
            TaskSpec::periodic(TaskId(2), "nda", ms(6), ms(1)).non_deterministic(),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.deterministic().count(), 1);
        assert_eq!(set.non_deterministic().count(), 1);
    }
}
