//! Declarative fault plans.
//!
//! A [`FaultPlan`] is the complete, seed-driven description of what a chaos
//! run does to the system: stochastic per-message perturbations (drop,
//! corrupt, duplicate, delay spikes) plus scheduled structural faults
//! (bus partitions, babbling idiots, ECU crashes and hangs, clock drift).
//! Plans are plain data — building one performs no injection; feed it to
//! [`crate::inject::ChaosFabric`] to act on a communication fabric.

use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{BusId, EcuId};
use std::fmt;

/// A bus that carries no traffic during a time window (harness break,
/// switch reboot, cable cut).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusPartition {
    /// Partitioned bus.
    pub bus: BusId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl BusPartition {
    /// `true` while the partition is active.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A node flooding a bus with highest-priority traffic — the classic
/// babbling-idiot failure mode of shared automotive buses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BabblingIdiot {
    /// The misbehaving sender.
    pub src: EcuId,
    /// A reachable victim ECU the babble is addressed to (any peer on the
    /// shared segment works — the load is what matters).
    pub dst: EcuId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Inter-message gap of the flood.
    pub period: SimDuration,
    /// Payload bytes of each flood message.
    pub payload: usize,
}

/// A fail-stop ECU crash at a point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcuCrash {
    /// Crashing ECU.
    pub ecu: EcuId,
    /// Crash instant; the ECU neither sends nor receives from here on.
    pub at: SimTime,
}

/// A transient ECU hang: outgoing traffic freezes during the window and
/// flushes when it ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EcuHang {
    /// Hanging ECU.
    pub ecu: EcuId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); queued sends resume here.
    pub until: SimTime,
}

impl EcuHang {
    /// `true` while the hang is active.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A node clock running fast or slow against the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockDrift {
    /// Drifting ECU.
    pub ecu: EcuId,
    /// Drift in parts per million; positive = the node's events happen
    /// late, negative = early.
    pub ppm: i64,
}

/// Errors of plan validation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// A stochastic rate is outside `[0, 1]`.
    RateOutOfRange {
        /// Which rate.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scheduled fault window is empty or inverted.
    EmptyWindow {
        /// Which fault.
        name: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::RateOutOfRange { name, value } => {
                write!(f, "{name} = {value} is outside [0, 1]")
            }
            PlanError::EmptyWindow { name } => write!(f, "{name} window is empty"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The complete description of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Probability that a message is silently dropped.
    pub drop_rate: f64,
    /// Probability that a message arrives with a failed integrity check
    /// (it still burns bus time).
    pub corrupt_rate: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_rate: f64,
    /// Probability that a message's injection is delayed by a spike.
    pub delay_spike_rate: f64,
    /// Maximum spike magnitude; the actual spike is uniform in
    /// `(0, delay_spike]`.
    pub delay_spike: SimDuration,
    /// Scheduled bus partitions.
    pub partitions: Vec<BusPartition>,
    /// Scheduled babbling idiots.
    pub babblers: Vec<BabblingIdiot>,
    /// Scheduled fail-stop crashes.
    pub crashes: Vec<EcuCrash>,
    /// Scheduled transient hangs.
    pub hangs: Vec<EcuHang>,
    /// Permanent clock drifts.
    pub drifts: Vec<ClockDrift>,
}

impl FaultPlan {
    /// A plan that injects nothing (the control arm of a campaign).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            delay_spike_rate: 0.0,
            delay_spike: SimDuration::ZERO,
            partitions: Vec::new(),
            babblers: Vec::new(),
            crashes: Vec::new(),
            hangs: Vec::new(),
            drifts: Vec::new(),
        }
    }

    /// Sets the stochastic per-message rates (builder style).
    pub fn with_message_faults(mut self, drop: f64, corrupt: f64, duplicate: f64) -> Self {
        self.drop_rate = drop;
        self.corrupt_rate = corrupt;
        self.duplicate_rate = duplicate;
        self
    }

    /// Enables delay spikes (builder style).
    pub fn with_delay_spikes(mut self, rate: f64, magnitude: SimDuration) -> Self {
        self.delay_spike_rate = rate;
        self.delay_spike = magnitude;
        self
    }

    /// Schedules a bus partition (builder style).
    pub fn partition(mut self, bus: BusId, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(BusPartition { bus, from, until });
        self
    }

    /// Schedules a babbling idiot (builder style).
    pub fn babble(mut self, babbler: BabblingIdiot) -> Self {
        self.babblers.push(babbler);
        self
    }

    /// Schedules a fail-stop crash (builder style).
    pub fn crash(mut self, ecu: EcuId, at: SimTime) -> Self {
        self.crashes.push(EcuCrash { ecu, at });
        self
    }

    /// Schedules a transient hang (builder style).
    pub fn hang(mut self, ecu: EcuId, from: SimTime, until: SimTime) -> Self {
        self.hangs.push(EcuHang { ecu, from, until });
        self
    }

    /// Adds a permanent clock drift (builder style).
    pub fn drift(mut self, ecu: EcuId, ppm: i64) -> Self {
        self.drifts.push(ClockDrift { ecu, ppm });
        self
    }

    /// Multiplies every stochastic rate by `intensity` (clamped to 1.0) —
    /// the one-knob sweep axis of a chaos campaign. Scheduled faults are
    /// not scaled.
    pub fn scaled(mut self, intensity: f64) -> Self {
        let scale = |r: f64| (r * intensity).clamp(0.0, 1.0);
        self.drop_rate = scale(self.drop_rate);
        self.corrupt_rate = scale(self.corrupt_rate);
        self.duplicate_rate = scale(self.duplicate_rate);
        self.delay_spike_rate = scale(self.delay_spike_rate);
        self
    }

    /// Checks every rate and window.
    ///
    /// # Errors
    ///
    /// [`PlanError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), PlanError> {
        for (name, value) in [
            ("drop_rate", self.drop_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("delay_spike_rate", self.delay_spike_rate),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(PlanError::RateOutOfRange { name, value });
            }
        }
        for p in &self.partitions {
            if p.until <= p.from {
                return Err(PlanError::EmptyWindow { name: "partition" });
            }
        }
        for b in &self.babblers {
            if b.until <= b.from || b.period.is_zero() {
                return Err(PlanError::EmptyWindow { name: "babbler" });
            }
        }
        for h in &self.hangs {
            if h.until <= h.from {
                return Err(PlanError::EmptyWindow { name: "hang" });
            }
        }
        Ok(())
    }

    /// Earliest instant at or after `t` at which `bus` carries traffic
    /// again — `t` itself when no partition of `bus` is active. Chained or
    /// overlapping partition windows are skipped in one call, so download
    /// and retry models can ask "when may I transmit?" without scanning
    /// windows themselves.
    pub fn clear_of_partitions(&self, bus: BusId, t: SimTime) -> SimTime {
        let mut clear = t;
        // Windows may abut or overlap in any order; iterate to a fixpoint.
        // Each pass either leaves `clear` alone (done) or moves it strictly
        // forward past at least one window, so this terminates after at
        // most `partitions.len()` passes.
        loop {
            let mut moved = false;
            for p in &self.partitions {
                if p.bus == bus && p.active_at(clear) {
                    clear = p.until;
                    moved = true;
                }
            }
            if !moved {
                return clear;
            }
        }
    }

    /// `true` if the plan injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.delay_spike_rate == 0.0
            && self.partitions.is_empty()
            && self.babblers.is_empty()
            && self.crashes.is_empty()
            && self.hangs.is_empty()
            && self.drifts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn quiet_plan_is_quiet_and_valid() {
        let plan = FaultPlan::quiet(1);
        assert!(plan.is_quiet());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::quiet(7)
            .with_message_faults(0.1, 0.02, 0.05)
            .with_delay_spikes(0.05, SimDuration::from_millis(2))
            .partition(BusId(0), ms(100), ms(200))
            .crash(EcuId(2), ms(500))
            .hang(EcuId(1), ms(300), ms(350))
            .drift(EcuId(0), 150);
        assert!(!plan.is_quiet());
        assert!(plan.validate().is_ok());
        assert!(plan.partitions[0].active_at(ms(150)));
        assert!(!plan.partitions[0].active_at(ms(200)));
    }

    #[test]
    fn scaling_clamps_rates() {
        let plan = FaultPlan::quiet(1)
            .with_message_faults(0.4, 0.4, 0.4)
            .scaled(3.0);
        assert_eq!(plan.drop_rate, 1.0);
        assert!(plan.validate().is_ok());
        let down = FaultPlan::quiet(1)
            .with_message_faults(0.4, 0.2, 0.0)
            .scaled(0.5);
        assert!((down.drop_rate - 0.2).abs() < 1e-12);
        assert!((down.corrupt_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clear_of_partitions_skips_chained_windows() {
        let plan = FaultPlan::quiet(1)
            .partition(BusId(0), ms(100), ms(200))
            .partition(BusId(0), ms(200), ms(300)) // abuts the first
            .partition(BusId(0), ms(250), ms(400)) // overlaps the second
            .partition(BusId(1), ms(0), ms(1_000)); // other bus, ignored
        assert_eq!(plan.clear_of_partitions(BusId(0), ms(50)), ms(50));
        assert_eq!(plan.clear_of_partitions(BusId(0), ms(100)), ms(400));
        assert_eq!(plan.clear_of_partitions(BusId(0), ms(399)), ms(400));
        assert_eq!(plan.clear_of_partitions(BusId(0), ms(400)), ms(400));
        assert_eq!(plan.clear_of_partitions(BusId(2), ms(150)), ms(150));
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad_rate = FaultPlan::quiet(1).with_message_faults(1.5, 0.0, 0.0);
        assert!(matches!(
            bad_rate.validate(),
            Err(PlanError::RateOutOfRange {
                name: "drop_rate",
                ..
            })
        ));
        let bad_window = FaultPlan::quiet(1).partition(BusId(0), ms(200), ms(100));
        assert!(matches!(
            bad_window.validate(),
            Err(PlanError::EmptyWindow { name: "partition" })
        ));
    }
}
