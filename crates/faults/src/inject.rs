//! Seed-driven fault injection over the communication fabric.
//!
//! [`ChaosFabric`] wraps a [`Fabric`] and perturbs every message batch
//! according to a [`FaultPlan`]: stochastic drops, corruption, duplication
//! and delay spikes from dedicated SplitMix64 streams, plus scheduled bus
//! partitions, babbling-idiot floods, ECU crashes/hangs and clock drift.
//! Every injection is logged — both as a structured [`InjectedFault`] and,
//! where a monitoring fault class exists, into a
//! [`FaultRecorder`], so an experiment can diff what was
//! injected against what the platform's monitors detected.

use crate::plan::FaultPlan;
use dynplat_comm::fabric::{Fabric, MessageDelivery, MessageSend};
use dynplat_common::rng::{seeded_rng, split_seed, Rng, SplitMix64};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{EcuId, TaskId};
use dynplat_monitor::fault::{Fault, FaultKind, FaultRecorder};
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Correlation ids at or above this value are fabric-internal babble load;
/// they never appear in the deliveries returned to the caller.
pub const BABBLE_ID_BASE: u64 = 1 << 62;

/// What was injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectedFaultKind {
    /// A message was silently dropped.
    MessageDrop,
    /// A message was delivered with a failed integrity check.
    MessageCorruption,
    /// A message was delivered twice.
    MessageDuplicate,
    /// A message's injection was delayed by a spike.
    DelaySpike,
    /// A message was lost to a partitioned bus on its route.
    PartitionLoss,
    /// A message was lost because its source or destination ECU had
    /// crashed.
    CrashLoss,
    /// A message was held back by a hung source ECU.
    HangDelay,
    /// A babbling-idiot flood was started.
    BabbleStart,
    /// An ECU crashed (fail-stop).
    EcuCrash,
    /// An ECU hung for a window.
    EcuHang,
    /// An ECU's clock drifts against the fleet.
    ClockDrift,
}

impl InjectedFaultKind {
    /// The monitoring fault class this injection should be detectable as,
    /// if any. Duplicates, delay spikes and the babble load itself have no
    /// direct monitor class — they surface indirectly (jitter, deadline
    /// misses).
    pub fn monitor_kind(self) -> Option<FaultKind> {
        match self {
            InjectedFaultKind::MessageDrop
            | InjectedFaultKind::PartitionLoss
            | InjectedFaultKind::CrashLoss => Some(FaultKind::MessageLoss),
            InjectedFaultKind::MessageCorruption => Some(FaultKind::MessageCorruption),
            InjectedFaultKind::EcuCrash | InjectedFaultKind::EcuHang => {
                Some(FaultKind::NodeFailure)
            }
            InjectedFaultKind::ClockDrift => Some(FaultKind::ClockDrift),
            InjectedFaultKind::MessageDuplicate
            | InjectedFaultKind::DelaySpike
            | InjectedFaultKind::HangDelay
            | InjectedFaultKind::BabbleStart => None,
        }
    }
}

impl fmt::Display for InjectedFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InjectedFaultKind::MessageDrop => "message drop",
            InjectedFaultKind::MessageCorruption => "message corruption",
            InjectedFaultKind::MessageDuplicate => "message duplicate",
            InjectedFaultKind::DelaySpike => "delay spike",
            InjectedFaultKind::PartitionLoss => "partition loss",
            InjectedFaultKind::CrashLoss => "crash loss",
            InjectedFaultKind::HangDelay => "hang delay",
            InjectedFaultKind::BabbleStart => "babble start",
            InjectedFaultKind::EcuCrash => "ecu crash",
            InjectedFaultKind::EcuHang => "ecu hang",
            InjectedFaultKind::ClockDrift => "clock drift",
        };
        write!(f, "{s}")
    }
}

/// One logged injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// When the injection took effect.
    pub time: SimTime,
    /// What was injected.
    pub kind: InjectedFaultKind,
    /// Context ("msg 17 ecu0->ecu2", "bus0", ...).
    pub detail: String,
}

/// Deterministic aggregate counters over one injector's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Messages seen by the injector (babble load excluded).
    pub messages: u64,
    /// Stochastic drops.
    pub drops: u64,
    /// Corrupted deliveries.
    pub corruptions: u64,
    /// Duplicated deliveries.
    pub duplicates: u64,
    /// Delay spikes applied.
    pub delay_spikes: u64,
    /// Losses to partitioned buses.
    pub partition_losses: u64,
    /// Losses to crashed ECUs.
    pub crash_losses: u64,
    /// Sends held back by hung ECUs.
    pub hang_delays: u64,
    /// Babble load messages generated.
    pub babble_messages: u64,
}

impl InjectionStats {
    /// Every message the plan removed from the system before the
    /// application layer could see it.
    pub fn total_losses(&self) -> u64 {
        self.drops + self.corruptions + self.partition_losses + self.crash_losses
    }
}

/// The seed-driven decision engine behind [`ChaosFabric`].
///
/// One SplitMix64 stream per stochastic fault category keeps decisions
/// independent of each other while staying bit-reproducible for a fixed
/// plan and send order.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    drop_rng: SplitMix64,
    corrupt_rng: SplitMix64,
    dup_rng: SplitMix64,
    delay_rng: SplitMix64,
    log: Vec<InjectedFault>,
    recorder: FaultRecorder,
    stats: InjectionStats,
    flight: Option<Arc<FlightRecorder>>,
}

/// What the injector decided for one send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Forward these copies (possibly delayed or duplicated).
    Deliver(Vec<MessageSend>),
    /// Forward these copies, but their payload integrity is broken: the
    /// receiver must discard them after the bus time is burnt.
    DeliverCorrupted(Vec<MessageSend>),
    /// The message never reaches the fabric.
    Drop,
}

impl FaultInjector {
    /// Creates an injector for `plan`, logging the plan's scheduled
    /// structural faults up front.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate().expect("fault plan must validate");
        let seed = plan.seed;
        let mut injector = FaultInjector {
            drop_rng: seeded_rng(split_seed(seed, 0x01)),
            corrupt_rng: seeded_rng(split_seed(seed, 0x02)),
            dup_rng: seeded_rng(split_seed(seed, 0x03)),
            delay_rng: seeded_rng(split_seed(seed, 0x04)),
            log: Vec::new(),
            recorder: FaultRecorder::new(4096),
            stats: InjectionStats::default(),
            flight: None,
            plan,
        };
        let scheduled: Vec<(SimTime, InjectedFaultKind, String)> = injector
            .plan
            .crashes
            .iter()
            .map(|c| (c.at, InjectedFaultKind::EcuCrash, c.ecu.to_string()))
            .chain(
                injector
                    .plan
                    .hangs
                    .iter()
                    .map(|h| (h.from, InjectedFaultKind::EcuHang, h.ecu.to_string())),
            )
            .chain(injector.plan.drifts.iter().map(|d| {
                (
                    SimTime::ZERO,
                    InjectedFaultKind::ClockDrift,
                    format!("{} {}ppm", d.ecu, d.ppm),
                )
            }))
            .chain(injector.plan.babblers.iter().map(|b| {
                (
                    b.from,
                    InjectedFaultKind::BabbleStart,
                    format!("{} on link to {}", b.src, b.dst),
                )
            }))
            .collect();
        for (time, kind, detail) in scheduled {
            injector.log_injection(time, kind, detail);
        }
        injector
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Structured injection log, in injection order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// The injected-fault recorder (monitor vocabulary) — diff its
    /// [`FaultRecorder::counts`] against the detection side.
    pub fn recorder(&self) -> &FaultRecorder {
        &self.recorder
    }

    /// Aggregate counters.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Attaches a flight recorder: every injection lands in its event
    /// ring (stage `faults.inject`). Injections deliberately do *not*
    /// trigger dumps — dumps freeze on the detection side, so the window
    /// between cause and detection stays measurable (E13).
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.flight = Some(recorder);
    }

    fn log_injection(&mut self, time: SimTime, kind: InjectedFaultKind, detail: String) {
        dynplat_obs::counter!("faults.injected_total").inc();
        match kind {
            InjectedFaultKind::MessageDrop => {
                dynplat_obs::counter!("faults.injected.message_drop").inc()
            }
            InjectedFaultKind::MessageCorruption => {
                dynplat_obs::counter!("faults.injected.message_corruption").inc()
            }
            InjectedFaultKind::MessageDuplicate => {
                dynplat_obs::counter!("faults.injected.message_duplicate").inc()
            }
            InjectedFaultKind::DelaySpike => {
                dynplat_obs::counter!("faults.injected.delay_spike").inc()
            }
            InjectedFaultKind::PartitionLoss => {
                dynplat_obs::counter!("faults.injected.partition_loss").inc()
            }
            InjectedFaultKind::CrashLoss => {
                dynplat_obs::counter!("faults.injected.crash_loss").inc()
            }
            InjectedFaultKind::HangDelay => {
                dynplat_obs::counter!("faults.injected.hang_delay").inc()
            }
            InjectedFaultKind::BabbleStart => {
                dynplat_obs::counter!("faults.injected.babble_start").inc()
            }
            InjectedFaultKind::EcuCrash => dynplat_obs::counter!("faults.injected.ecu_crash").inc(),
            InjectedFaultKind::EcuHang => dynplat_obs::counter!("faults.injected.ecu_hang").inc(),
            InjectedFaultKind::ClockDrift => {
                dynplat_obs::counter!("faults.injected.clock_drift").inc()
            }
        }
        if let Some(monitor_kind) = kind.monitor_kind() {
            self.recorder.record(Fault {
                time,
                task: TaskId(0),
                kind: monitor_kind,
                detail: detail.clone(),
            });
        }
        if let Some(fr) = &self.flight {
            fr.record(
                time.as_nanos(),
                TraceCtx::NONE,
                "faults.inject",
                format!("{kind}: {detail}"),
            );
        }
        self.log.push(InjectedFault { time, kind, detail });
    }

    fn crashed_at(&self, ecu: EcuId, t: SimTime) -> bool {
        self.plan.crashes.iter().any(|c| c.ecu == ecu && t >= c.at)
    }

    /// Runs one send through the plan. `route_buses` is the bus path the
    /// fabric would use (empty for ECU-local messages).
    pub fn judge(
        &mut self,
        send: &MessageSend,
        route_buses: &[dynplat_common::BusId],
    ) -> SendVerdict {
        self.stats.messages += 1;
        let mut send = send.clone();
        let label = |s: &MessageSend| format!("msg {} {}->{}", s.id, s.src, s.dst);

        // Clock drift shifts the sender's notion of "now".
        if let Some(d) = self.plan.drifts.iter().find(|d| d.ecu == send.src) {
            let ns = send.time.saturating_since(SimTime::ZERO).as_nanos() as i128;
            let shifted = ns + ns * i128::from(d.ppm) / 1_000_000;
            send.time = SimTime::ZERO + SimDuration::from_nanos(shifted.max(0) as u64);
        }

        // Fail-stop crashes kill the message outright.
        if self.crashed_at(send.src, send.time) || self.crashed_at(send.dst, send.time) {
            self.stats.crash_losses += 1;
            let detail = label(&send);
            self.log_injection(send.time, InjectedFaultKind::CrashLoss, detail);
            return SendVerdict::Drop;
        }

        // Partitioned bus anywhere on the route loses the message.
        if let Some(p) = self
            .plan
            .partitions
            .iter()
            .find(|p| p.active_at(send.time) && route_buses.contains(&p.bus))
        {
            self.stats.partition_losses += 1;
            let detail = format!("{} on {}", label(&send), p.bus);
            self.log_injection(send.time, InjectedFaultKind::PartitionLoss, detail);
            return SendVerdict::Drop;
        }

        // A hung source holds its traffic until the hang ends.
        if let Some(until) = self
            .plan
            .hangs
            .iter()
            .find(|h| h.ecu == send.src && h.active_at(send.time))
            .map(|h| h.until)
        {
            self.stats.hang_delays += 1;
            let detail = label(&send);
            self.log_injection(send.time, InjectedFaultKind::HangDelay, detail);
            send.time = until;
        }

        // Stochastic faults, one independent stream each. Every stream is
        // advanced for every message so decisions stay aligned across
        // plans that differ only in rates.
        let drop_roll = self.drop_rng.gen::<f64>();
        let corrupt_roll = self.corrupt_rng.gen::<f64>();
        let dup_roll = self.dup_rng.gen::<f64>();
        let delay_roll = self.delay_rng.gen::<f64>();
        let delay_frac = self.delay_rng.gen::<f64>();

        if drop_roll < self.plan.drop_rate {
            self.stats.drops += 1;
            let detail = label(&send);
            self.log_injection(send.time, InjectedFaultKind::MessageDrop, detail);
            return SendVerdict::Drop;
        }

        if delay_roll < self.plan.delay_spike_rate && !self.plan.delay_spike.is_zero() {
            self.stats.delay_spikes += 1;
            let spike =
                SimDuration::from_secs_f64(self.plan.delay_spike.as_secs_f64() * delay_frac);
            let detail = format!("{} +{spike}", label(&send));
            self.log_injection(send.time, InjectedFaultKind::DelaySpike, detail);
            send.time += spike;
        }

        let mut copies = vec![send.clone()];
        if dup_roll < self.plan.duplicate_rate {
            self.stats.duplicates += 1;
            let detail = label(&send);
            self.log_injection(send.time, InjectedFaultKind::MessageDuplicate, detail);
            copies.push(send.clone());
        }

        if corrupt_roll < self.plan.corrupt_rate {
            self.stats.corruptions += 1;
            let detail = label(&send);
            self.log_injection(send.time, InjectedFaultKind::MessageCorruption, detail);
            return SendVerdict::DeliverCorrupted(copies);
        }
        SendVerdict::Deliver(copies)
    }

    /// The babble load messages the plan schedules, ids starting at
    /// [`BABBLE_ID_BASE`].
    pub fn babble_load(&mut self) -> Vec<MessageSend> {
        let mut load = Vec::new();
        let mut id = BABBLE_ID_BASE;
        for b in &self.plan.babblers {
            let mut t = b.from;
            while t < b.until {
                load.push(MessageSend {
                    id,
                    time: t,
                    src: b.src,
                    dst: b.dst,
                    payload: b.payload,
                    class: dynplat_net::TrafficClass::Critical,
                    priority: 0, // out-shouts everything, the point of babbling
                    trace: TraceCtx::NONE,
                });
                id += 1;
                t += b.period;
            }
        }
        self.stats.babble_messages += load.len() as u64;
        load
    }
}

/// A [`Fabric`] under fault injection.
pub struct ChaosFabric {
    fabric: Fabric,
    injector: FaultInjector,
}

impl fmt::Debug for ChaosFabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosFabric")
            .field("fabric", &self.fabric)
            .field("plan", self.injector.plan())
            .finish()
    }
}

impl ChaosFabric {
    /// Wraps `fabric` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(fabric: Fabric, plan: FaultPlan) -> Self {
        ChaosFabric {
            fabric,
            injector: FaultInjector::new(plan),
        }
    }

    /// The wrapped fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The injector (log, recorder, stats).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Attaches a flight recorder to both the inner fabric (lifecycle
    /// events for traced messages) and the injector (injection events).
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.fabric.attach_flight_recorder(recorder.clone());
        self.injector.attach_flight_recorder(recorder);
    }

    fn route_of(&self, send: &MessageSend) -> Vec<dynplat_common::BusId> {
        self.fabric
            .topology()
            .route(send.src, send.dst)
            .map(|r| r.buses)
            .unwrap_or_default()
    }

    /// Runs a batch of sends through the plan and then the fabric.
    ///
    /// Corrupted copies traverse the network (burning bus time) but are
    /// withheld from `on_delivery` and from the returned deliveries —
    /// exactly how a CRC-protected link behaves. Babble load is simulated
    /// but equally invisible to the caller. Reactions injected by
    /// `on_delivery` pass through the plan too.
    pub fn run<F>(&mut self, sends: Vec<MessageSend>, mut on_delivery: F) -> Vec<MessageDelivery>
    where
        F: FnMut(&MessageDelivery) -> Vec<MessageSend>,
    {
        let mut corrupted: BTreeSet<u64> = BTreeSet::new();
        let mut admitted = Vec::new();
        let admit = |injector: &mut FaultInjector,
                     corrupted: &mut BTreeSet<u64>,
                     route: Vec<dynplat_common::BusId>,
                     send: &MessageSend,
                     out: &mut Vec<MessageSend>| {
            match injector.judge(send, &route) {
                SendVerdict::Deliver(copies) => out.extend(copies),
                SendVerdict::DeliverCorrupted(copies) => {
                    corrupted.insert(send.id);
                    out.extend(copies);
                }
                SendVerdict::Drop => {}
            }
        };
        for send in &sends {
            let route = self.route_of(send);
            admit(
                &mut self.injector,
                &mut corrupted,
                route,
                send,
                &mut admitted,
            );
        }
        admitted.extend(self.injector.babble_load());

        let fabric = &mut self.fabric;
        let injector = &mut self.injector;
        let topology = fabric.topology().clone();
        let deliveries = fabric.run(admitted, |delivery| {
            if delivery.id >= BABBLE_ID_BASE || corrupted.contains(&delivery.id) {
                return Vec::new();
            }
            let mut reactions = Vec::new();
            for send in on_delivery(delivery) {
                let route = topology
                    .route(send.src, send.dst)
                    .map(|r| r.buses)
                    .unwrap_or_default();
                admit(injector, &mut corrupted, route, &send, &mut reactions);
            }
            reactions
        });
        deliveries
            .into_iter()
            .filter(|d| d.id < BABBLE_ID_BASE && !corrupted.contains(&d.id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::{BusId, EcuId};
    use dynplat_hw::ecu::{EcuClass, EcuSpec};
    use dynplat_hw::topology::{BusKind, BusSpec, HwTopology};
    use dynplat_net::TrafficClass;

    /// ecu0 --can0-- ecu1 --eth0-- ecu2
    fn topo() -> HwTopology {
        HwTopology::from_parts(
            [
                EcuSpec::of_class(EcuId(0), "body", EcuClass::LowEnd),
                EcuSpec::of_class(EcuId(1), "gateway", EcuClass::Domain),
                EcuSpec::of_class(EcuId(2), "adas", EcuClass::HighPerformance),
            ],
            [
                BusSpec::new(BusId(0), "can0", BusKind::can_500k(), [EcuId(0), EcuId(1)]),
                BusSpec::new(
                    BusId(1),
                    "eth0",
                    BusKind::ethernet_100m(),
                    [EcuId(1), EcuId(2)],
                ),
            ],
        )
        .expect("static test topology is valid")
    }

    fn send(id: u64, t_us: u64, src: u16, dst: u16) -> MessageSend {
        MessageSend {
            id,
            time: SimTime::from_micros(t_us),
            src: EcuId(src),
            dst: EcuId(dst),
            payload: 200,
            class: TrafficClass::BestEffort,
            priority: 3,
            trace: TraceCtx::NONE,
        }
    }

    fn batch(n: u64) -> Vec<MessageSend> {
        (0..n).map(|i| send(i, i * 500, 1, 2)).collect()
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let mut plain = Fabric::new(topo());
        let expected = plain.run(batch(50), |_| vec![]);
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), FaultPlan::quiet(1));
        let got = chaos.run(batch(50), |_| vec![]);
        assert_eq!(got, expected);
        assert_eq!(chaos.injector().stats().total_losses(), 0);
        assert!(chaos.injector().log().is_empty());
    }

    #[test]
    fn drops_are_seeded_and_reproducible() {
        let plan = FaultPlan::quiet(42).with_message_faults(0.3, 0.0, 0.0);
        let mut a = ChaosFabric::new(Fabric::new(topo()), plan.clone());
        let mut b = ChaosFabric::new(Fabric::new(topo()), plan.clone());
        let da = a.run(batch(200), |_| vec![]);
        let db = b.run(batch(200), |_| vec![]);
        assert_eq!(da, db, "same plan, same seed: identical outcome");
        let losses = a.injector().stats().drops;
        assert!(
            (30..90).contains(&losses),
            "~30% of 200 expected, got {losses}"
        );
        assert_eq!(da.len() as u64, 200 - losses);
        assert_eq!(
            a.injector().recorder().count(FaultKind::MessageLoss),
            losses,
            "every drop lands in the injected-fault recorder"
        );
        // A different seed makes different choices.
        let mut c = ChaosFabric::new(
            Fabric::new(topo()),
            FaultPlan::quiet(43).with_message_faults(0.3, 0.0, 0.0),
        );
        let dc = c.run(batch(200), |_| vec![]);
        assert_ne!(da, dc);
    }

    #[test]
    fn corrupted_messages_burn_bus_time_but_never_arrive() {
        let plan = FaultPlan::quiet(7).with_message_faults(0.0, 1.0, 0.0);
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let done = chaos.run(batch(10), |_| vec![]);
        assert!(
            done.is_empty(),
            "all deliveries failed their integrity check"
        );
        assert_eq!(chaos.injector().stats().corruptions, 10);
        assert_eq!(
            chaos
                .injector()
                .recorder()
                .count(FaultKind::MessageCorruption),
            10
        );
    }

    #[test]
    fn duplicates_arrive_twice() {
        let plan = FaultPlan::quiet(7).with_message_faults(0.0, 0.0, 1.0);
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let done = chaos.run(batch(5), |_| vec![]);
        assert_eq!(done.len(), 10);
        for i in 0..5u64 {
            assert_eq!(done.iter().filter(|d| d.id == i).count(), 2);
        }
    }

    #[test]
    fn delay_spikes_postpone_injection() {
        let plan = FaultPlan::quiet(7).with_delay_spikes(1.0, SimDuration::from_millis(5));
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let done = chaos.run(vec![send(1, 0, 1, 2)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].sent > SimTime::ZERO,
            "spike moved the injection time"
        );
        assert_eq!(chaos.injector().stats().delay_spikes, 1);
    }

    #[test]
    fn partition_window_loses_routed_messages() {
        let plan = FaultPlan::quiet(7).partition(
            BusId(1),
            SimTime::from_millis(1),
            SimTime::from_millis(3),
        );
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        // One message before, one inside, one after the window; plus one
        // on the unaffected CAN bus during the window.
        let sends = vec![
            send(1, 0, 1, 2),
            send(2, 2_000, 1, 2),
            send(3, 4_000, 1, 2),
            send(4, 2_000, 0, 1),
        ];
        let done = chaos.run(sends, |_| vec![]);
        let ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        assert!(ids.contains(&1) && ids.contains(&3) && ids.contains(&4));
        assert!(
            !ids.contains(&2),
            "in-window message on the partitioned bus is lost"
        );
        assert_eq!(chaos.injector().stats().partition_losses, 1);
    }

    #[test]
    fn crashed_ecu_goes_silent() {
        let plan = FaultPlan::quiet(7).crash(EcuId(2), SimTime::from_millis(1));
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let sends = vec![send(1, 0, 1, 2), send(2, 2_000, 1, 2), send(3, 2_000, 2, 1)];
        let done = chaos.run(sends, |_| vec![]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
        assert_eq!(chaos.injector().stats().crash_losses, 2);
        assert_eq!(chaos.injector().recorder().count(FaultKind::NodeFailure), 1);
        assert_eq!(chaos.injector().recorder().count(FaultKind::MessageLoss), 2);
    }

    #[test]
    fn hung_ecu_flushes_after_the_window() {
        let plan = FaultPlan::quiet(7).hang(EcuId(1), SimTime::ZERO, SimTime::from_millis(10));
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let done = chaos.run(vec![send(1, 100, 1, 2)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert!(
            done[0].sent >= SimTime::from_millis(10),
            "held until the hang ended"
        );
        assert_eq!(chaos.injector().stats().hang_delays, 1);
    }

    #[test]
    fn clock_drift_shifts_send_times() {
        let plan = FaultPlan::quiet(7).drift(EcuId(1), 100_000); // 10% fast
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let done = chaos.run(vec![send(1, 10_000, 1, 2)], |_| vec![]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].sent, SimTime::from_micros(11_000));
        assert_eq!(chaos.injector().recorder().count(FaultKind::ClockDrift), 1);
    }

    #[test]
    fn babble_load_crowds_the_bus_but_stays_invisible() {
        let plan = FaultPlan::quiet(7).babble(crate::plan::BabblingIdiot {
            src: EcuId(1),
            dst: EcuId(2),
            from: SimTime::ZERO,
            until: SimTime::from_millis(20),
            period: SimDuration::from_micros(130),
            payload: 1500,
        });
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let victim = send(1, 0, 1, 2);
        let done = chaos.run(vec![victim.clone()], |_| vec![]);
        assert_eq!(done.len(), 1, "babble never surfaces in the results");
        let with_babble = done[0].latency();
        let mut quiet = ChaosFabric::new(Fabric::new(topo()), FaultPlan::quiet(7));
        let baseline = quiet.run(vec![victim], |_| vec![])[0].latency();
        assert!(
            with_babble > baseline,
            "flood must slow the victim: {with_babble} vs {baseline}"
        );
        assert!(chaos.injector().stats().babble_messages > 100);
    }

    #[test]
    fn callback_reactions_pass_through_the_plan() {
        // RPC shape: every request triggers a response; with 100% drop on
        // a plan that only starts dropping after the first message, the
        // response is dropped too. Use full drop: request itself dies, so
        // no response is ever generated.
        let plan = FaultPlan::quiet(7).with_message_faults(1.0, 0.0, 0.0);
        let mut chaos = ChaosFabric::new(Fabric::new(topo()), plan);
        let mut responses_generated = 0;
        let done = chaos.run(vec![send(1, 0, 1, 2)], |_| {
            responses_generated += 1;
            vec![send(100, 0, 2, 1)]
        });
        assert!(done.is_empty());
        assert_eq!(responses_generated, 0);
        // Now drop nothing; the response must flow and be judged (counted).
        let mut open = ChaosFabric::new(Fabric::new(topo()), FaultPlan::quiet(7));
        let done = open.run(vec![send(1, 0, 1, 2)], |d| {
            if d.id == 1 {
                vec![send(
                    100,
                    d.delivered.saturating_since(SimTime::ZERO).as_micros(),
                    2,
                    1,
                )]
            } else {
                vec![]
            }
        });
        assert_eq!(done.len(), 2);
        assert_eq!(open.injector().stats().messages, 2);
    }
}
