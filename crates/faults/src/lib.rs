//! Deterministic fault injection for the dynamic platform (§3.3, §3.4).
//!
//! The paper's central argument is that future E/E architectures must
//! *manage uncertainty* — faults, load transients and partial failures are
//! the normal case, not the exception. This crate provides the adversary
//! side of that argument: a seed-driven chaos layer that perturbs the
//! communication fabric and the ECU fleet in reproducible ways, so that
//! the platform's robustness machinery (retry/backoff, circuit breaking,
//! service rebinding, redundancy failover, the degradation ladder) can be
//! exercised and measured.
//!
//! * [`plan`] — declarative [`FaultPlan`]s: stochastic message faults
//!   (drop, corruption, duplication, delay spikes) and scheduled
//!   structural faults (bus partitions, babbling idiots, ECU
//!   crashes/hangs, clock drift);
//! * [`inject`] — the [`FaultInjector`] decision engine and the
//!   [`ChaosFabric`] wrapper that applies a plan to a live
//!   `dynplat_comm::Fabric`, logging every injection both structurally
//!   and into a `monitor` fault recorder for injected-vs-detected diffs.
//!
//! Everything is a pure function of the plan (seed included) and the
//! send order: two runs of the same plan over the same workload produce
//! byte-identical outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod plan;

pub use inject::{
    ChaosFabric, FaultInjector, InjectedFault, InjectedFaultKind, InjectionStats, SendVerdict,
    BABBLE_ID_BASE,
};
pub use plan::{BabblingIdiot, BusPartition, ClockDrift, EcuCrash, EcuHang, FaultPlan, PlanError};
