//! Fault records and the bounded fault recorder.

use dynplat_common::time::SimTime;
use dynplat_common::TaskId;
use std::collections::BTreeMap;
use std::fmt;

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Inter-activation time left the declared period tolerance.
    PeriodViolation,
    /// A job completed after (or never before) its deadline.
    DeadlineMiss,
    /// Response-time spread exceeded the declared jitter bound.
    JitterViolation,
    /// Memory usage exceeded the declared budget.
    MemoryOverrun,
    /// The task stopped producing activations (watchdog).
    Silence,
    /// A message never reached its destination (dropped, partitioned or
    /// crowded out by a babbling sender).
    MessageLoss,
    /// A message arrived with a failed integrity check.
    MessageCorruption,
    /// An ECU crashed or hung; everything it hosted went silent.
    NodeFailure,
    /// A node's clock ran measurably fast or slow against the fleet.
    ClockDrift,
}

impl FaultKind {
    /// Every fault class, in declaration order (stable report layout).
    pub const ALL: [FaultKind; 9] = [
        FaultKind::PeriodViolation,
        FaultKind::DeadlineMiss,
        FaultKind::JitterViolation,
        FaultKind::MemoryOverrun,
        FaultKind::Silence,
        FaultKind::MessageLoss,
        FaultKind::MessageCorruption,
        FaultKind::NodeFailure,
        FaultKind::ClockDrift,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PeriodViolation => write!(f, "period violation"),
            FaultKind::DeadlineMiss => write!(f, "deadline miss"),
            FaultKind::JitterViolation => write!(f, "jitter violation"),
            FaultKind::MemoryOverrun => write!(f, "memory overrun"),
            FaultKind::Silence => write!(f, "task silent"),
            FaultKind::MessageLoss => write!(f, "message loss"),
            FaultKind::MessageCorruption => write!(f, "message corruption"),
            FaultKind::NodeFailure => write!(f, "node failure"),
            FaultKind::ClockDrift => write!(f, "clock drift"),
        }
    }
}

/// One detected fault, with the conditions that led to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Detection time.
    pub time: SimTime,
    /// Affected task.
    pub task: TaskId,
    /// Fault class.
    pub kind: FaultKind,
    /// Human-readable detail ("observed 12ms, bound 10ms").
    pub detail: String,
}

/// Bounded in-memory fault store: keeps the most recent `capacity` faults,
/// counts everything (the recording half of §3.4).
#[derive(Clone, Debug)]
pub struct FaultRecorder {
    capacity: usize,
    faults: Vec<Fault>,
    counts: BTreeMap<FaultKind, u64>,
}

impl FaultRecorder {
    /// Creates a recorder retaining up to `capacity` faults.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        FaultRecorder {
            capacity,
            faults: Vec::new(),
            counts: BTreeMap::new(),
        }
    }

    /// Records a fault.
    pub fn record(&mut self, fault: Fault) {
        *self.counts.entry(fault.kind).or_insert(0) += 1;
        self.faults.push(fault);
        if self.faults.len() > self.capacity {
            let excess = self.faults.len() - self.capacity;
            self.faults.drain(0..excess);
        }
    }

    /// Retained faults, oldest first.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total number of faults of `kind` ever recorded.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total faults ever recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Per-kind totals over the recorder's whole lifetime (not just the
    /// retained window) — the counters surfaced by diagnostic reports.
    pub fn counts(&self) -> &BTreeMap<FaultKind, u64> {
        &self.counts
    }

    /// Drains retained faults for transfer to the backend; counters are
    /// preserved.
    pub fn drain(&mut self) -> Vec<Fault> {
        std::mem::take(&mut self.faults)
    }
}

impl Default for FaultRecorder {
    fn default() -> Self {
        FaultRecorder::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(ms: u64, kind: FaultKind) -> Fault {
        Fault {
            time: SimTime::from_millis(ms),
            task: TaskId(1),
            kind,
            detail: String::new(),
        }
    }

    #[test]
    fn records_and_counts() {
        let mut r = FaultRecorder::new(10);
        r.record(fault(1, FaultKind::DeadlineMiss));
        r.record(fault(2, FaultKind::DeadlineMiss));
        r.record(fault(3, FaultKind::MemoryOverrun));
        assert_eq!(r.count(FaultKind::DeadlineMiss), 2);
        assert_eq!(r.count(FaultKind::Silence), 0);
        assert_eq!(r.total(), 3);
        assert_eq!(r.faults().len(), 3);
    }

    #[test]
    fn ring_behavior_keeps_latest() {
        let mut r = FaultRecorder::new(2);
        for i in 0..5 {
            r.record(fault(i, FaultKind::PeriodViolation));
        }
        assert_eq!(r.faults().len(), 2);
        assert_eq!(r.faults()[0].time, SimTime::from_millis(3));
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn drain_transfers_but_keeps_counts() {
        let mut r = FaultRecorder::new(10);
        r.record(fault(1, FaultKind::JitterViolation));
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert!(r.faults().is_empty());
        assert_eq!(r.count(FaultKind::JitterViolation), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        FaultRecorder::new(0);
    }
}
