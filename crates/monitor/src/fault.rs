//! Fault records and the bounded fault recorder.
//!
//! Per-kind counting is delegated to a [`MetricsRegistry`] rather than a
//! private map: by default each recorder counts into its own registry
//! (hermetic, exact per-instance counts), and
//! [`FaultRecorder::with_registry`] plugs a recorder into a shared
//! registry — e.g. [`dynplat_obs::global_arc`] — so fault counters show
//! up in the same snapshot as every other platform metric.

use dynplat_common::time::SimTime;
use dynplat_common::TaskId;
use dynplat_obs::{Counter, FlightRecorder, MetricsRegistry, TraceCtx};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Inter-activation time left the declared period tolerance.
    PeriodViolation,
    /// A job completed after (or never before) its deadline.
    DeadlineMiss,
    /// Response-time spread exceeded the declared jitter bound.
    JitterViolation,
    /// Memory usage exceeded the declared budget.
    MemoryOverrun,
    /// The task stopped producing activations (watchdog).
    Silence,
    /// A message never reached its destination (dropped, partitioned or
    /// crowded out by a babbling sender).
    MessageLoss,
    /// A message arrived with a failed integrity check.
    MessageCorruption,
    /// An ECU crashed or hung; everything it hosted went silent.
    NodeFailure,
    /// A node's clock ran measurably fast or slow against the fleet.
    ClockDrift,
}

impl FaultKind {
    /// The metric name this kind counts under in an obs registry.
    pub const fn metric_name(self) -> &'static str {
        match self {
            FaultKind::PeriodViolation => "monitor.fault.period_violation",
            FaultKind::DeadlineMiss => "monitor.fault.deadline_miss",
            FaultKind::JitterViolation => "monitor.fault.jitter_violation",
            FaultKind::MemoryOverrun => "monitor.fault.memory_overrun",
            FaultKind::Silence => "monitor.fault.silence",
            FaultKind::MessageLoss => "monitor.fault.message_loss",
            FaultKind::MessageCorruption => "monitor.fault.message_corruption",
            FaultKind::NodeFailure => "monitor.fault.node_failure",
            FaultKind::ClockDrift => "monitor.fault.clock_drift",
        }
    }

    /// Every fault class, in declaration order (stable report layout).
    pub const ALL: [FaultKind; 9] = [
        FaultKind::PeriodViolation,
        FaultKind::DeadlineMiss,
        FaultKind::JitterViolation,
        FaultKind::MemoryOverrun,
        FaultKind::Silence,
        FaultKind::MessageLoss,
        FaultKind::MessageCorruption,
        FaultKind::NodeFailure,
        FaultKind::ClockDrift,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PeriodViolation => write!(f, "period violation"),
            FaultKind::DeadlineMiss => write!(f, "deadline miss"),
            FaultKind::JitterViolation => write!(f, "jitter violation"),
            FaultKind::MemoryOverrun => write!(f, "memory overrun"),
            FaultKind::Silence => write!(f, "task silent"),
            FaultKind::MessageLoss => write!(f, "message loss"),
            FaultKind::MessageCorruption => write!(f, "message corruption"),
            FaultKind::NodeFailure => write!(f, "node failure"),
            FaultKind::ClockDrift => write!(f, "clock drift"),
        }
    }
}

/// One detected fault, with the conditions that led to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Detection time.
    pub time: SimTime,
    /// Affected task.
    pub task: TaskId,
    /// Fault class.
    pub kind: FaultKind,
    /// Human-readable detail ("observed 12ms, bound 10ms").
    pub detail: String,
}

/// Bounded in-memory fault store: keeps the most recent `capacity` faults,
/// counts everything (the recording half of §3.4). Counting is backed by
/// an obs [`MetricsRegistry`] — private by default, shareable via
/// [`FaultRecorder::with_registry`].
#[derive(Clone, Debug)]
pub struct FaultRecorder {
    capacity: usize,
    faults: Vec<Fault>,
    registry: Arc<MetricsRegistry>,
    counters: [Arc<Counter>; FaultKind::ALL.len()],
    flight: Option<Arc<FlightRecorder>>,
}

impl FaultRecorder {
    /// Creates a recorder retaining up to `capacity` faults, counting
    /// into its own private registry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        FaultRecorder::with_registry(capacity, Arc::new(MetricsRegistry::new()))
    }

    /// Creates a recorder that counts into `registry` (one counter per
    /// [`FaultKind::metric_name`]). Several recorders may share a
    /// registry; their counts then merge, which is exactly what a
    /// platform-wide snapshot wants.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_registry(capacity: usize, registry: Arc<MetricsRegistry>) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        let counters = FaultKind::ALL.map(|k| registry.counter(k.metric_name()));
        FaultRecorder {
            capacity,
            faults: Vec::new(),
            registry,
            counters,
            flight: None,
        }
    }

    /// Attaches a flight recorder. Every recorded fault lands in its
    /// event ring (stage `monitor.fault`), and — because detection is the
    /// moment a black box should freeze — fires
    /// [`FlightRecorder::trigger_if_armed`] with the fault as the reason.
    #[must_use]
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The registry this recorder counts into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records a fault.
    pub fn record(&mut self, fault: Fault) {
        self.counters[fault.kind as usize].inc();
        if let Some(fr) = &self.flight {
            let t = fault.time.as_nanos();
            fr.record(
                t,
                TraceCtx::NONE,
                "monitor.fault",
                format!("{}: {}", fault.kind, fault.detail),
            );
            fr.trigger_if_armed(t, &format!("fault detected: {}", fault.kind));
        }
        self.faults.push(fault);
        if self.faults.len() > self.capacity {
            let excess = self.faults.len() - self.capacity;
            self.faults.drain(0..excess);
        }
    }

    /// Retained faults, oldest first.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Total number of faults of `kind` ever recorded.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counters[kind as usize].get()
    }

    /// Total faults ever recorded.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|c| c.get()).sum()
    }

    /// Per-kind totals over the recorder's whole lifetime (not just the
    /// retained window) — the counters surfaced by diagnostic reports.
    /// Kinds never recorded are omitted.
    pub fn counts(&self) -> BTreeMap<FaultKind, u64> {
        FaultKind::ALL
            .iter()
            .filter_map(|&k| {
                let n = self.count(k);
                (n > 0).then_some((k, n))
            })
            .collect()
    }

    /// Drains retained faults for transfer to the backend; counters are
    /// preserved.
    pub fn drain(&mut self) -> Vec<Fault> {
        std::mem::take(&mut self.faults)
    }
}

impl Default for FaultRecorder {
    fn default() -> Self {
        FaultRecorder::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(ms: u64, kind: FaultKind) -> Fault {
        Fault {
            time: SimTime::from_millis(ms),
            task: TaskId(1),
            kind,
            detail: String::new(),
        }
    }

    #[test]
    fn records_and_counts() {
        let mut r = FaultRecorder::new(10);
        r.record(fault(1, FaultKind::DeadlineMiss));
        r.record(fault(2, FaultKind::DeadlineMiss));
        r.record(fault(3, FaultKind::MemoryOverrun));
        assert_eq!(r.count(FaultKind::DeadlineMiss), 2);
        assert_eq!(r.count(FaultKind::Silence), 0);
        assert_eq!(r.total(), 3);
        assert_eq!(r.faults().len(), 3);
    }

    #[test]
    fn ring_behavior_keeps_latest() {
        let mut r = FaultRecorder::new(2);
        for i in 0..5 {
            r.record(fault(i, FaultKind::PeriodViolation));
        }
        assert_eq!(r.faults().len(), 2);
        assert_eq!(r.faults()[0].time, SimTime::from_millis(3));
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn drain_transfers_but_keeps_counts() {
        let mut r = FaultRecorder::new(10);
        r.record(fault(1, FaultKind::JitterViolation));
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert!(r.faults().is_empty());
        assert_eq!(r.count(FaultKind::JitterViolation), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        FaultRecorder::new(0);
    }

    #[test]
    fn flight_recorder_sees_faults_and_armed_trigger_freezes_a_dump() {
        let flight = Arc::new(FlightRecorder::new(64));
        flight.arm();
        let mut r = FaultRecorder::new(10).with_flight(flight.clone());
        r.record(fault(5, FaultKind::MessageLoss));
        let dumps = flight.dumps();
        assert_eq!(dumps.len(), 1, "armed trigger freezes exactly one dump");
        assert_eq!(dumps[0].reason, "fault detected: message loss");
        assert_eq!(dumps[0].time_ns, SimTime::from_millis(5).as_nanos());
        assert_eq!(dumps[0].events.len(), 1);
        assert_eq!(dumps[0].events[0].stage, "monitor.fault");
        // Disarmed means disabled: further faults leave no flight trace.
        flight.disarm();
        r.record(fault(6, FaultKind::DeadlineMiss));
        assert_eq!(flight.dumps().len(), 1);
        assert_eq!(flight.total_events(), 1);
        assert_eq!(r.total(), 2, "the fault counters still see everything");
    }
}
