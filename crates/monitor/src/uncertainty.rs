//! Confidence-interval estimation over monitored parameters.
//!
//! The hard-threshold monitors ([`crate::task`]) and the EWMA drift
//! detector ([`crate::anomaly`]) both react to *points*: one sample either
//! violates a bound or it does not. Uncertainty management (the paper's
//! title) needs the monitor to carry a *distribution* instead: how noisy is
//! the signal, how wide is the confidence band around its level, and how
//! probable is a violation of the operational boundary right now. This
//! module supplies that layer:
//!
//! * [`RollingRegression`] — an ordinary-least-squares fit over a bounded
//!   window of `(t, x)` samples, yielding a level prediction, its standard
//!   error, and a residual noise estimate;
//! * [`BoundaryEstimator`] — a boundary-aware estimator combining the
//!   regression band with a sequential log-likelihood-ratio accumulator,
//!   producing one [`UncertaintyEstimate`] per sample;
//! * [`normal_cdf`] — the deterministic Φ used for every exceedance
//!   probability (Abramowitz–Stegun erf, no libm dispersion).
//!
//! Everything is deterministic and allocation-free after construction, so
//! estimators can run inside seeded campaigns without perturbing replay.
//! Estimators are *off* the fabric hot path by design: they ingest
//! per-round or per-window aggregates, never per-message events.

use dynplat_common::time::SimTime;
use dynplat_common::uncertainty::UncertaintyEstimate;
use dynplat_obs::{FlightRecorder, TraceCtx};
use std::sync::Arc;

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (|error| < 1.5e-7), fully deterministic across platforms.
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let signed = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + signed)
}

/// Ordinary-least-squares regression `x = a + b·t` over a bounded ring of
/// the most recent samples.
///
/// Provides the predicted level at any time, the standard error of that
/// prediction (which grows under extrapolation), and the residual standard
/// deviation — the raw material of every confidence band.
#[derive(Clone, Debug)]
pub struct RollingRegression {
    window: usize,
    ring: Vec<(f64, f64)>,
    head: usize,
    total: u64,
}

impl RollingRegression {
    /// Creates a regression over the `window` most recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `window < 3` (a line through fewer points has no residual).
    pub fn new(window: usize) -> Self {
        assert!(window >= 3, "regression window must hold >= 3 samples");
        RollingRegression {
            window,
            ring: Vec::with_capacity(window),
            head: 0,
            total: 0,
        }
    }

    /// Ingests one `(t, x)` sample, evicting the oldest when full.
    pub fn ingest(&mut self, t: SimTime, x: f64) {
        let ts = t.as_nanos() as f64 / 1e9;
        if self.ring.len() < self.window {
            self.ring.push((ts, x));
        } else {
            self.ring[self.head] = (ts, x);
            self.head = (self.head + 1) % self.window;
        }
        self.total += 1;
    }

    /// Samples currently inside the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples ingested over the estimator's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The fitted line `(intercept, slope)` plus residual standard
    /// deviation, or `None` with fewer than 3 samples.
    pub fn fit(&self) -> Option<Fit> {
        let n = self.ring.len();
        if n < 3 {
            return None;
        }
        let nf = n as f64;
        let (mut st, mut sx) = (0.0, 0.0);
        for &(t, x) in &self.ring {
            st += t;
            sx += x;
        }
        let (tbar, xbar) = (st / nf, sx / nf);
        let (mut stt, mut stx) = (0.0, 0.0);
        for &(t, x) in &self.ring {
            stt += (t - tbar) * (t - tbar);
            stx += (t - tbar) * (x - xbar);
        }
        // Degenerate time spread (all samples at one instant): fall back to
        // a constant fit around the mean.
        let slope = if stt > 1e-18 { stx / stt } else { 0.0 };
        let intercept = xbar - slope * tbar;
        // Residual sum of squares from the residuals themselves — the
        // closed form `sse_mean - slope*stx` cancels catastrophically on
        // near-perfect fits and reports phantom noise.
        let mut sse = 0.0;
        for &(t, x) in &self.ring {
            let r = x - (intercept + slope * t);
            sse += r * r;
        }
        let sigma = (sse / (nf - 2.0)).sqrt();
        Some(Fit {
            intercept,
            slope,
            sigma,
            n,
            tbar,
            stt,
        })
    }

    /// Predicted level and standard error of the *mean* at `t`, or `None`
    /// while under-sampled. The standard error grows with distance from the
    /// window's center of mass — extrapolation is penalized.
    pub fn predict(&self, t: SimTime) -> Option<(f64, f64)> {
        let fit = self.fit()?;
        let ts = t.as_nanos() as f64 / 1e9;
        let mean = fit.intercept + fit.slope * ts;
        let lever = if fit.stt > 1e-18 {
            (ts - fit.tbar) * (ts - fit.tbar) / fit.stt
        } else {
            0.0
        };
        let se = fit.sigma * (1.0 / fit.n as f64 + lever).sqrt();
        Some((mean, se))
    }
}

/// One least-squares fit: `x ≈ intercept + slope · t` with residual
/// standard deviation `sigma` over `n` samples.
#[derive(Clone, Copy, Debug)]
pub struct Fit {
    /// Level at `t = 0`.
    pub intercept: f64,
    /// Level change per second.
    pub slope: f64,
    /// Residual standard deviation around the fitted line.
    pub sigma: f64,
    /// Samples in the fit.
    pub n: usize,
    tbar: f64,
    stt: f64,
}

/// Configuration of a [`BoundaryEstimator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundaryConfig {
    /// The operational boundary the monitored parameter must stay below.
    pub boundary: f64,
    /// Rolling-regression window (samples).
    pub window: usize,
    /// Samples before the estimate reports `converged` — no consumer trips
    /// off an unconverged estimate.
    pub min_samples: u64,
    /// Warm-up widening constant `c`: bands are scaled by `sqrt(1 + c/n)`,
    /// so early estimates are wide and tighten as evidence accumulates.
    pub warmup_widening: f64,
    /// Noise floor as a fraction of the boundary — keeps the band and the
    /// likelihood ratio finite on zero-variance (perfectly regular)
    /// signals.
    pub sigma_floor_frac: f64,
    /// Clamp on the accumulated exceedance log-odds; bounds how much
    /// quiet-time evidence a real fault must first overcome.
    pub max_log_odds: f64,
    /// Per-sample clamp on the evidence step — one ambiguous sample can
    /// never flip the belief on its own (robustness against heavy-tailed
    /// outliers the Gaussian model does not cover).
    pub step_cap: f64,
    /// Evidence scale floor as a fraction of the boundary: exceedance
    /// z-scores are measured against at least `rel_floor · boundary`, so
    /// "how far past the boundary" is always judged at boundary scale,
    /// however quiet the healthy signal was.
    pub rel_floor: f64,
    /// Exceedance z at or above which a single sample is unambiguous and
    /// saturates the belief immediately (the fast path for hard faults).
    pub saturation_z: f64,
    /// Confidence multiplier of the reported band (`z* = 1.96` ≈ 95 %).
    pub band_z: f64,
}

impl Default for BoundaryConfig {
    fn default() -> Self {
        BoundaryConfig {
            boundary: 1.0,
            window: 16,
            min_samples: 5,
            warmup_widening: 8.0,
            sigma_floor_frac: 0.02,
            max_log_odds: 6.0,
            step_cap: 2.5,
            rel_floor: 0.15,
            saturation_z: 6.0,
            band_z: 1.96,
        }
    }
}

impl BoundaryConfig {
    /// A config for a "badness" signal bounded by `boundary`, with the
    /// default window and gates.
    ///
    /// # Panics
    ///
    /// Panics if `boundary` is not positive.
    pub fn for_boundary(boundary: f64) -> Self {
        assert!(boundary > 0.0, "operational boundary must be positive");
        BoundaryConfig {
            boundary,
            ..BoundaryConfig::default()
        }
    }
}

/// Boundary-aware uncertainty estimator over one monitored parameter.
///
/// Per sample it maintains:
///
/// * a [`RollingRegression`] band around the signal level (noise →
///   regression bands, per Snippet 3's API set);
/// * a sequential exceedance accumulator: each sample contributes a
///   bounded log-odds step proportional to its exceedance z-score against
///   the boundary (a robust, deterministic SPRT-style test — the
///   probability that the boundary has been crossed, kept in odds space);
///   a sample whose exceedance is unambiguous (`z ≥ saturation_z`)
///   saturates the belief immediately, so hard faults are detected in the
///   very sample that carries them;
/// * the resulting [`UncertaintyEstimate`], whose `exceed` is the maximum
///   of the band-based tail probability and the accumulated sequential
///   evidence — the band term captures a drifted mean, the sequential term
///   captures a sudden excursion in the very sample that carries it.
///
/// Estimator state is exported through `monitor.uncertainty.*` gauges
/// (values in parts-per-million of the boundary) and, when a flight
/// recorder is attached, every exceedance-gate crossing lands in the
/// incident ring with the ingesting sample's [`TraceCtx`].
#[derive(Clone, Debug)]
pub struct BoundaryEstimator {
    config: BoundaryConfig,
    regression: RollingRegression,
    log_odds: f64,
    last: UncertaintyEstimate,
    flight: Option<Arc<FlightRecorder>>,
    /// Whether the previous estimate was past the ½ mark, for edge-triggered
    /// flight events.
    was_exceeding: bool,
}

impl BoundaryEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    ///
    /// Panics on non-positive boundary, `window < 3` or `min_samples < 3`.
    pub fn new(config: BoundaryConfig) -> Self {
        assert!(
            config.boundary > 0.0,
            "operational boundary must be positive"
        );
        assert!(config.min_samples >= 3, "min_samples must be >= 3");
        BoundaryEstimator {
            regression: RollingRegression::new(config.window),
            log_odds: -config.max_log_odds,
            last: UncertaintyEstimate::unknown(SimTime::ZERO),
            flight: None,
            was_exceeding: false,
            config,
        }
    }

    /// Shorthand: default config against `boundary`.
    pub fn for_boundary(boundary: f64) -> Self {
        BoundaryEstimator::new(BoundaryConfig::for_boundary(boundary))
    }

    /// Attaches a flight recorder: estimator gate crossings land in the
    /// event ring (stage `monitor.uncertainty`) with the crossing sample's
    /// trace context.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// The configuration in force.
    pub fn config(&self) -> &BoundaryConfig {
        &self.config
    }

    /// Discards all accumulated evidence, returning the estimator to its
    /// just-constructed state (config and attached flight recorder are
    /// kept). Consumers that gate a *sequence* of independent episodes —
    /// e.g. an update master judging one rollout wave after another — reset
    /// between episodes so stale belief from a healthy wave cannot mask a
    /// broken one.
    pub fn reset(&mut self) {
        self.regression = RollingRegression::new(self.config.window);
        self.log_odds = -self.config.max_log_odds;
        self.last = UncertaintyEstimate::unknown(SimTime::ZERO);
        self.was_exceeding = false;
    }

    /// The most recent estimate (neutral before the first sample).
    pub fn estimate(&self) -> UncertaintyEstimate {
        self.last
    }

    /// Accumulated exceedance log-odds (diagnostic).
    pub fn log_odds(&self) -> f64 {
        self.log_odds
    }

    /// Ingests one sample without trace attribution.
    pub fn ingest(&mut self, now: SimTime, sample: f64) -> UncertaintyEstimate {
        self.ingest_traced(now, sample, TraceCtx::NONE)
    }

    /// Ingests one sample and returns the updated estimate; `ctx` is the
    /// causal context of whatever produced the sample (a control round, a
    /// V2X reception) and rides along into flight-recorder events.
    pub fn ingest_traced(
        &mut self,
        now: SimTime,
        sample: f64,
        ctx: TraceCtx,
    ) -> UncertaintyEstimate {
        let b = self.config.boundary;
        let floor = b * self.config.sigma_floor_frac;
        // Healthy-noise estimate *before* this sample — the excursion the
        // sample may carry must not inflate its own evidence scale.
        let prior_sigma = self.regression.fit().map(|f| f.sigma);
        self.regression.ingest(now, sample);
        let n_window = self.regression.len() as f64;
        let n_total = self.regression.total();
        let widen = (1.0 + self.config.warmup_widening / n_window).sqrt();

        let (mean, se, sigma) = match self.regression.predict(now) {
            Some((mean, se)) => {
                let sigma = self
                    .regression
                    .fit()
                    .map(|f| f.sigma)
                    .unwrap_or(0.0)
                    .max(floor);
                (mean, se.max(floor / n_window.sqrt()), sigma)
            }
            // Fewer than 3 samples: only the raw value, maximal width.
            None => (sample, b, b),
        };

        // Sequential exceedance evidence. Above the boundary the step is
        // the sample's exceedance z against max(healthy noise, boundary
        // scale), warm-up-widened; an unambiguous sample saturates the
        // belief outright. Below the boundary the step is judged at
        // boundary scale alone — a clearly-healthy sample is direct
        // evidence of non-exceedance no matter how wild the recent window
        // looked — so recovery is never hostage to fault-inflated noise.
        let rel = b * self.config.rel_floor;
        if sample >= b {
            let scale = prior_sigma.unwrap_or(b).max(rel) * widen;
            let z = (sample - b) / scale;
            if z >= self.config.saturation_z {
                self.log_odds = self.config.max_log_odds;
            } else {
                self.log_odds += z.min(self.config.step_cap);
            }
        } else {
            self.log_odds += ((sample - b) / rel).max(-self.config.step_cap);
        }
        self.log_odds = self
            .log_odds
            .clamp(-self.config.max_log_odds, self.config.max_log_odds);
        let p_seq = 1.0 / (1.0 + (-self.log_odds).exp());

        // Band exceedance: probability the *level* sits past the boundary,
        // from the regression's standard error, widened during warm-up.
        let band = self.config.band_z * se * widen;
        let p_band = normal_cdf((mean - b) / (se * widen).max(floor / 10.0));

        let converged = n_total >= self.config.min_samples;
        let exceed = if converged { p_seq.max(p_band) } else { 0.5 };
        let est = UncertaintyEstimate {
            at: now,
            mean,
            sigma,
            band,
            exceed,
            samples: n_total,
            converged,
        };
        self.last = est;
        self.export_gauges(&est);
        self.flight_crossing(now, &est, ctx);
        est
    }

    /// Exports the estimator state as `monitor.uncertainty.*` gauges.
    /// Values are scaled to parts-per-million of the boundary (gauges are
    /// integers), except `exceed_ppm` which is ppm of probability 1.
    fn export_gauges(&self, est: &UncertaintyEstimate) {
        let b = self.config.boundary;
        let ppm = |v: f64| ((v / b) * 1e6) as i64;
        dynplat_obs::gauge!("monitor.uncertainty.mean_ppm").set(ppm(est.mean));
        dynplat_obs::gauge!("monitor.uncertainty.band_ppm").set(ppm(est.band));
        dynplat_obs::gauge!("monitor.uncertainty.sigma_ppm").set(ppm(est.sigma));
        dynplat_obs::gauge!("monitor.uncertainty.exceed_ppm").set((est.exceed * 1e6) as i64);
        dynplat_obs::gauge!("monitor.uncertainty.samples").set(est.samples as i64);
    }

    /// Edge-triggered flight events on the ½-probability crossing, both
    /// directions — the moments the belief flips are exactly what a
    /// post-mortem needs in the window.
    fn flight_crossing(&mut self, now: SimTime, est: &UncertaintyEstimate, ctx: TraceCtx) {
        let exceeding = est.converged && est.exceed > 0.5;
        if exceeding != self.was_exceeding {
            if let Some(fr) = &self.flight {
                fr.record(
                    now.as_nanos(),
                    ctx,
                    "monitor.uncertainty",
                    format!(
                        "exceedance {} (p {:.3}, mean {:.4}, band {:.4}, n {})",
                        if exceeding { "asserted" } else { "cleared" },
                        est.exceed,
                        est.mean,
                        est.band,
                        est.samples
                    ),
                );
            }
            dynplat_obs::counter!("monitor.uncertainty.crossings").inc();
        }
        self.was_exceeding = exceeding;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::rng::{seeded_rng, Rng};

    fn s(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn normal_cdf_matches_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn regression_recovers_a_clean_line() {
        let mut r = RollingRegression::new(16);
        for k in 0..16u64 {
            r.ingest(s(k * 100), 2.0 + 0.5 * (k as f64 * 0.1));
        }
        let fit = r.fit().unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-9, "slope {}", fit.slope);
        assert!(fit.sigma < 1e-9);
        let (mean, se) = r.predict(s(1_500)).unwrap();
        assert!((mean - 2.75).abs() < 1e-9);
        assert!(se < 1e-9);
    }

    #[test]
    fn regression_window_forgets_old_samples() {
        let mut r = RollingRegression::new(8);
        for k in 0..8u64 {
            r.ingest(s(k * 100), 1.0);
        }
        for k in 8..16u64 {
            r.ingest(s(k * 100), 3.0);
        }
        let (mean, _) = r.predict(s(1_500)).unwrap();
        assert!((mean - 3.0).abs() < 1e-6, "window must purge the old level");
        assert_eq!(r.len(), 8);
        assert_eq!(r.total(), 16);
    }

    #[test]
    fn warm_up_is_unconverged_and_neutral() {
        let mut e = BoundaryEstimator::for_boundary(1.0);
        for k in 0..4u64 {
            let est = e.ingest(s(k * 100), 0.2);
            assert!(!est.converged, "sample {k} still warming up");
            assert_eq!(est.exceed, 0.5);
            assert!(!est.exceeds_with_confidence(0.9));
        }
        let est = e.ingest(s(400), 0.2);
        assert!(est.converged, "min_samples reached");
        assert!(est.exceed < 0.1, "quiet signal, low exceedance");
    }

    #[test]
    fn reset_replays_like_a_fresh_estimator() {
        let cfg = BoundaryConfig::for_boundary(0.10);
        let mut fresh = BoundaryEstimator::new(cfg);
        let mut reused = BoundaryEstimator::new(cfg);
        // Poison the reused estimator with a saturated fault episode.
        for k in 0..20u64 {
            reused.ingest(s(k * 100), 0.9);
        }
        assert!(reused.estimate().exceeds_with_confidence(0.9));
        reused.reset();
        assert_eq!(
            reused.estimate(),
            UncertaintyEstimate::unknown(SimTime::ZERO)
        );
        // The next episode must evolve exactly like a fresh estimator's.
        for k in 0..12u64 {
            let a = fresh.ingest(s(k * 250), 0.03);
            let b = reused.ingest(s(k * 250), 0.03);
            assert_eq!(a, b, "sample {k} diverged after reset");
        }
    }

    #[test]
    fn quiet_noise_never_trips_but_a_jump_trips_immediately() {
        let mut e = BoundaryEstimator::for_boundary(0.10);
        let mut rng = seeded_rng(0xE14);
        let mut t = 0u64;
        for _ in 0..60 {
            let x = 0.03 + rng.gen_range(-0.02..0.02);
            let est = e.ingest(s(t), x.max(0.0));
            assert!(
                !est.exceeds_with_confidence(0.9),
                "noise sample tripped at t={t}: {est:?}"
            );
            t += 250;
        }
        // The partition hits: the very first saturated sample must carry
        // enough evidence on its own.
        let est = e.ingest(s(t), 0.95);
        assert!(
            est.exceeds_with_confidence(0.9),
            "jump must trip in-sample: {est:?}"
        );
    }

    #[test]
    fn single_moderate_spike_is_absorbed() {
        let mut e = BoundaryEstimator::for_boundary(0.10);
        let mut t = 0u64;
        for _ in 0..40 {
            e.ingest(s(t), 0.04);
            t += 250;
        }
        let est = e.ingest(s(t), 0.13);
        assert!(
            !est.exceeds_with_confidence(0.9),
            "one spike is not a fault: {est:?}"
        );
        t += 250;
        let est = e.ingest(s(t), 0.04);
        assert!(est.exceed < 0.5, "belief must fall back after the spike");
    }

    #[test]
    fn persistent_drift_is_detected_before_the_boundary() {
        // The signal creeps toward the boundary; the band-based exceedance
        // must fire while samples are still below it.
        let mut e = BoundaryEstimator::for_boundary(0.10);
        let mut tripped_at: Option<f64> = None;
        let mut level = 0.02;
        let mut t = 0u64;
        while level < 0.15 {
            let est = e.ingest(s(t), level);
            if est.exceeds_with_confidence(0.9) && tripped_at.is_none() {
                tripped_at = Some(level);
            }
            level += 0.002;
            t += 250;
        }
        let at = tripped_at.expect("drift toward the boundary must trip");
        assert!(at < 0.13, "tripped only at {at}");
    }

    #[test]
    fn recovery_clears_and_band_tightens() {
        let mut e = BoundaryEstimator::for_boundary(0.10);
        let mut t = 0u64;
        for _ in 0..30 {
            e.ingest(s(t), 0.03);
            t += 250;
        }
        for _ in 0..10 {
            e.ingest(s(t), 0.9);
            t += 250;
        }
        assert!(e.estimate().exceed > 0.9);
        let band_during = e.estimate().band;
        for _ in 0..40 {
            e.ingest(s(t), 0.03);
            t += 250;
        }
        let est = e.estimate();
        assert!(
            est.exceed < 0.2,
            "belief must clear after recovery: {est:?}"
        );
        assert!(
            est.band < band_during,
            "band must tighten once the window is clean again"
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let run = || {
            let mut e = BoundaryEstimator::for_boundary(0.10);
            let mut rng = seeded_rng(77);
            let mut out = Vec::new();
            for k in 0..100u64 {
                let x: f64 = rng.gen_range(0.0..0.08);
                out.push(e.ingest(s(k * 250), x));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gate_crossings_land_in_the_flight_ring() {
        let flight = Arc::new(FlightRecorder::new(64));
        let mut e = BoundaryEstimator::for_boundary(0.10);
        e.attach_flight_recorder(flight.clone());
        let ctx = TraceCtx::new(0xBEEF, 1);
        flight.arm(); // recording only happens while enabled
        let mut t = 0u64;
        for _ in 0..20 {
            e.ingest_traced(s(t), 0.02, ctx);
            t += 250;
        }
        for _ in 0..3 {
            e.ingest_traced(s(t), 0.95, ctx);
            t += 250;
        }
        flight.arm();
        flight.trigger_if_armed(SimTime::from_millis(t).as_nanos(), "test freeze");
        let dumps = flight.dumps();
        assert_eq!(dumps.len(), 1);
        let ev = dumps[0]
            .events
            .iter()
            .find(|e| e.stage == "monitor.uncertainty")
            .expect("crossing event recorded");
        assert!(ev.detail.contains("asserted"));
        assert_eq!(ev.trace.trace_id, 0xBEEF, "trace attribution rides along");
    }

    #[test]
    #[should_panic(expected = "operational boundary must be positive")]
    fn zero_boundary_panics() {
        BoundaryEstimator::for_boundary(0.0);
    }
}
