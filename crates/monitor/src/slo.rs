//! SLO burn-rate gating under uncertainty.
//!
//! `obs::slo::BurnTracker` turns batched `(good, bad)` counts into burn
//! rates and arms the flight recorder, but deliberately does not decide
//! trips: a burn rate is a noisy point sample, and tripping on a point is
//! exactly the hair-trigger behaviour the paper's uncertainty management
//! replaces. [`SloBurnGate`] closes the loop — each batch's burn rate is
//! ingested by a [`BoundaryEstimator`] against the natural boundary
//! **burn = 1.0** (budget being spent exactly as fast as allowed), and
//! the gate trips only when the estimator is *confident* the burn rate
//! exceeds it.
//!
//! Because every [`BoundaryConfig`] parameter scales linearly with its
//! boundary, estimating `fraction / budget` against boundary 1.0 is
//! mathematically identical to estimating `fraction` against boundary
//! `budget` — so a consumer that migrates from a bare failure-rate gate
//! (e.g. `fleet::UpdateMaster`) keeps its trip timing bit-for-bit while
//! gaining burn-rate arming, flight capture and SLO vocabulary.
//!
//! On the rising trip edge the gate fires the attached flight recorder:
//! the tracker armed it when the fast-window burn first crossed the
//! arming level, so the dump carries the causal window *before* the trip,
//! and every trip is paired with a `dynplat.flight.v1` dump (the recorder
//! is armed unconditionally on the edge, so a trip that outran the fast
//! window still captures).

use dynplat_common::time::SimTime;
use dynplat_common::uncertainty::UncertaintyEstimate;
use dynplat_obs::slo::{BurnObservation, BurnTracker, SloSpec};
use dynplat_obs::{FlightDump, FlightRecorder};
use std::sync::Arc;

use crate::uncertainty::{BoundaryConfig, BoundaryEstimator};

/// One gated observation batch: the burn rates, the estimator's belief,
/// and the trip decision.
#[derive(Clone, Debug)]
pub struct SloVerdict {
    /// Burn rates from the tracker (batch, fast window, slow window).
    pub burn: BurnObservation,
    /// The estimator's belief that the burn rate exceeds 1.0.
    pub estimate: UncertaintyEstimate,
    /// `true` while the estimator is confident the objective is violated.
    pub tripped: bool,
    /// `true` on the rising edge only — the batch that flipped the gate.
    pub trip_edge: bool,
    /// The flight dump frozen on this trip edge, if a recorder is
    /// attached and its dump quota is not exhausted.
    pub dump: Option<FlightDump>,
}

/// An SLO gate: multi-window burn tracking fused with boundary-exceedance
/// estimation.
///
/// # Examples
///
/// ```
/// use dynplat_common::time::SimTime;
/// use dynplat_monitor::slo::SloBurnGate;
/// use dynplat_obs::slo::SloSpec;
///
/// let mut gate = SloBurnGate::new(SloSpec::error_fraction("doc.gate", 0.05));
/// // A noisy-but-healthy stream: one bad in 32 is 0.625x budget.
/// let mut t = SimTime::from_millis(1);
/// for _ in 0..8 {
///     let v = gate.observe(t, 31, 1);
///     assert!(!v.tripped);
///     t = t + dynplat_common::time::SimDuration::from_millis(10);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SloBurnGate {
    tracker: BurnTracker,
    estimator: BoundaryEstimator,
    flight: Option<Arc<FlightRecorder>>,
    was_tripped: bool,
    trips: u64,
    dumps: u64,
}

impl SloBurnGate {
    /// A gate for `spec`, estimating burn against boundary 1.0 at the
    /// spec's trip confidence.
    pub fn new(spec: SloSpec) -> Self {
        SloBurnGate {
            tracker: BurnTracker::new(spec),
            estimator: BoundaryEstimator::new(BoundaryConfig::for_boundary(1.0)),
            flight: None,
            was_tripped: false,
            trips: 0,
            dumps: 0,
        }
    }

    /// The objective in force.
    pub fn spec(&self) -> &SloSpec {
        self.tracker.spec()
    }

    /// The underlying estimator (diagnostics: log-odds, config).
    pub fn estimator(&self) -> &BoundaryEstimator {
        &self.estimator
    }

    /// Whether the fast-window burn currently has the recorder armed.
    pub fn is_armed(&self) -> bool {
        self.tracker.is_armed()
    }

    /// Rising trip edges seen since construction (reset does not clear).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Flight dumps captured on trip edges since construction.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// Attaches a flight recorder to both halves: the tracker arms it on
    /// fast-burn crossings, the gate triggers a dump on every trip edge.
    pub fn attach_flight_recorder(&mut self, flight: Arc<FlightRecorder>) {
        self.tracker.attach_flight_recorder(Arc::clone(&flight));
        self.estimator.attach_flight_recorder(Arc::clone(&flight));
        self.flight = Some(flight);
    }

    /// Ingests one `(good, bad)` observation batch at `at` and returns
    /// the verdict. Once tripped, the gate stays tripped until the
    /// estimator's belief decays below the confidence gate (recovery) or
    /// [`SloBurnGate::reset`] starts a fresh episode.
    pub fn observe(&mut self, at: SimTime, good: u64, bad: u64) -> SloVerdict {
        let burn = self.tracker.observe_at(at.as_nanos(), good, bad);
        let estimate = self.estimator.ingest(at, burn.batch_burn);
        let tripped = estimate.exceeds_with_confidence(self.spec().trip_confidence);
        let trip_edge = tripped && !self.was_tripped;
        self.was_tripped = tripped;
        let mut dump = None;
        if trip_edge {
            self.trips += 1;
            if let Some(fr) = &self.flight {
                // Arm unconditionally so the trip always captures, even if
                // the fast window never crossed the arming level (e.g. a
                // slow sustained burn).
                fr.arm();
                dump = fr.trigger_if_armed(
                    at.as_nanos(),
                    &format!(
                        "slo {} burn-rate trip: burn {:.3} exceed {:.3}",
                        self.spec().name,
                        burn.batch_burn,
                        estimate.exceed
                    ),
                );
                if dump.is_some() {
                    self.dumps += 1;
                }
            }
        }
        SloVerdict {
            burn,
            estimate,
            tripped,
            trip_edge,
            dump,
        }
    }

    /// Starts a fresh gating episode: tracker windows, estimator belief
    /// and the trip latch are cleared (trip/dump totals are kept).
    pub fn reset(&mut self) {
        self.tracker.reset();
        self.estimator.reset();
        self.was_tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn spec() -> SloSpec {
        SloSpec::error_fraction("slo.test", 0.05)
    }

    #[test]
    fn healthy_noise_never_trips() {
        let mut gate = SloBurnGate::new(spec());
        let mut t = at(1);
        for i in 0..64u64 {
            // One bad vehicle in some batches: 1/32 = 0.625x budget.
            let bad = u64::from(i % 3 == 0);
            let v = gate.observe(t, 32 - bad, bad);
            assert!(!v.tripped, "healthy stream tripped at batch {i}: {v:?}");
            t += SimDuration::from_millis(10);
        }
        assert_eq!(gate.trips(), 0);
    }

    #[test]
    fn catastrophic_burn_trips_once_with_a_dump() {
        let flight = Arc::new(FlightRecorder::new(64));
        let mut gate = SloBurnGate::new(spec());
        gate.attach_flight_recorder(Arc::clone(&flight));
        let mut t = at(1);
        for _ in 0..8 {
            assert!(!gate.observe(t, 32, 0).tripped);
            t += SimDuration::from_millis(10);
        }
        let mut edges = 0u64;
        let mut dumps = 0u64;
        for _ in 0..4 {
            let v = gate.observe(t, 8, 24); // 75% bad = 15x budget
            assert!(v.burn.batch_burn > 10.0);
            if v.trip_edge {
                edges += 1;
                assert!(v.tripped);
                assert!(v.dump.is_some(), "trip edge must pair with a dump");
                dumps += 1;
            }
            t += SimDuration::from_millis(10);
        }
        assert_eq!(edges, 1, "edge fires exactly once per episode");
        assert_eq!(gate.trips(), 1);
        assert_eq!(gate.dumps(), dumps);
        assert_eq!(flight.dumps().len(), 1);
        assert!(flight.dumps()[0].reason.contains("slo.test"));
    }

    #[test]
    fn equivalent_to_raw_fraction_gate_at_budget_boundary() {
        // The linearity argument in the module docs, checked numerically:
        // burn/1.0 and fraction/budget gates trip on the same batch.
        let budget = 0.05;
        let mut burn_gate = SloBurnGate::new(SloSpec::error_fraction("eq", budget));
        let mut raw = BoundaryEstimator::new(BoundaryConfig::for_boundary(budget));
        let series: Vec<(u64, u64)> = (0..24)
            .map(|i| if i < 12 { (32, 0) } else { (26, 6) })
            .collect();
        let mut t = at(1);
        let (mut burn_trip, mut raw_trip) = (None, None);
        for (i, &(good, bad)) in series.iter().enumerate() {
            let v = burn_gate.observe(t, good, bad);
            if v.tripped && burn_trip.is_none() {
                burn_trip = Some(i);
            }
            let fraction = bad as f64 / (good + bad) as f64;
            let e = raw.ingest(t, fraction);
            if e.exceeds_with_confidence(0.95) && raw_trip.is_none() {
                raw_trip = Some(i);
            }
            t += SimDuration::from_millis(10);
        }
        assert!(burn_trip.is_some(), "degraded stream must trip");
        assert_eq!(burn_trip, raw_trip, "gates must trip on the same batch");
    }

    #[test]
    fn reset_starts_a_new_episode() {
        let mut gate = SloBurnGate::new(spec());
        let mut t = at(1);
        for _ in 0..8 {
            gate.observe(t, 0, 32);
            t += SimDuration::from_millis(10);
        }
        assert!(gate.observe(t, 0, 32).tripped);
        gate.reset();
        let v = gate.observe(t + SimDuration::from_millis(10), 32, 0);
        assert!(!v.tripped, "fresh episode must not inherit belief");
        assert_eq!(gate.trips(), 1, "trip total survives the reset");
    }
}
