//! Per-task runtime observers.
//!
//! A [`TaskMonitor`] is configured from the application manifest's declared
//! bounds ([`MonitorSpec`]) and fed the raw activation/completion/memory
//! events of one task. It detects violations online and emits [`Fault`]s
//! into a recorder, while keeping running statistics for diagnostics.

use crate::fault::{Fault, FaultKind, FaultRecorder};
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::TaskId;

/// Declared bounds a deterministic application promises in its manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorSpec {
    /// Monitored task.
    pub task: TaskId,
    /// Expected activation period.
    pub period: SimDuration,
    /// Allowed deviation of inter-activation times from the period.
    pub period_tolerance: SimDuration,
    /// Relative deadline per activation.
    pub deadline: SimDuration,
    /// Allowed response-time spread (max − min).
    pub jitter_bound: SimDuration,
    /// Memory budget in bytes.
    pub memory_budget: u64,
}

impl MonitorSpec {
    /// Creates a spec with a 10% period tolerance and jitter bound equal to
    /// the deadline.
    pub fn new(
        task: TaskId,
        period: SimDuration,
        deadline: SimDuration,
        memory_budget: u64,
    ) -> Self {
        MonitorSpec {
            task,
            period,
            period_tolerance: period / 10,
            deadline,
            jitter_bound: deadline,
            memory_budget,
        }
    }

    /// Overrides the period tolerance.
    pub fn with_period_tolerance(mut self, tolerance: SimDuration) -> Self {
        self.period_tolerance = tolerance;
        self
    }

    /// Overrides the jitter bound.
    pub fn with_jitter_bound(mut self, bound: SimDuration) -> Self {
        self.jitter_bound = bound;
        self
    }
}

/// One raw observation fed to the monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskObservation {
    /// The task was activated (job release observed).
    Activation(SimTime),
    /// The job released at `release` completed at `completion`.
    Completion {
        /// Release time of the job.
        release: SimTime,
        /// Completion time of the job.
        completion: SimTime,
    },
    /// Memory usage sample in bytes.
    Memory(SimTime, u64),
}

/// Online monitor for one task.
#[derive(Clone, Debug)]
pub struct TaskMonitor {
    spec: MonitorSpec,
    last_activation: Option<SimTime>,
    activations: u64,
    completions: u64,
    response_min: SimDuration,
    response_max: SimDuration,
    response_sum: SimDuration,
    memory_peak: u64,
}

impl TaskMonitor {
    /// Creates a monitor for `spec`.
    pub fn new(spec: MonitorSpec) -> Self {
        TaskMonitor {
            spec,
            last_activation: None,
            activations: 0,
            completions: 0,
            response_min: SimDuration::MAX,
            response_max: SimDuration::ZERO,
            response_sum: SimDuration::ZERO,
            memory_peak: 0,
        }
    }

    /// The monitored spec.
    pub fn spec(&self) -> &MonitorSpec {
        &self.spec
    }

    /// Number of observed activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Number of observed completions.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Observed response-time jitter so far.
    pub fn observed_jitter(&self) -> SimDuration {
        if self.completions < 2 {
            SimDuration::ZERO
        } else {
            self.response_max.saturating_sub(self.response_min)
        }
    }

    /// Peak observed memory usage.
    pub fn memory_peak(&self) -> u64 {
        self.memory_peak
    }

    /// Mean observed response time.
    pub fn response_mean(&self) -> SimDuration {
        if self.completions == 0 {
            SimDuration::ZERO
        } else {
            self.response_sum / self.completions
        }
    }

    /// Largest observed response time.
    pub fn response_max(&self) -> SimDuration {
        self.response_max
    }

    /// Feeds one observation; any detected faults go into `recorder`.
    /// Returns the number of faults raised by this observation.
    pub fn observe(&mut self, obs: TaskObservation, recorder: &mut FaultRecorder) -> usize {
        let mut raised = 0;
        match obs {
            TaskObservation::Activation(t) => {
                self.activations += 1;
                if let Some(last) = self.last_activation {
                    let gap = t.saturating_since(last);
                    let lo = self.spec.period.saturating_sub(self.spec.period_tolerance);
                    let hi = self.spec.period + self.spec.period_tolerance;
                    if gap < lo || gap > hi {
                        recorder.record(Fault {
                            time: t,
                            task: self.spec.task,
                            kind: FaultKind::PeriodViolation,
                            detail: format!(
                                "inter-activation {gap}, expected {} ± {}",
                                self.spec.period, self.spec.period_tolerance
                            ),
                        });
                        raised += 1;
                    }
                }
                self.last_activation = Some(t);
            }
            TaskObservation::Completion {
                release,
                completion,
            } => {
                self.completions += 1;
                let response = completion.saturating_since(release);
                self.response_min = self.response_min.min(response);
                self.response_max = self.response_max.max(response);
                self.response_sum += response;
                dynplat_obs::histogram!("monitor.task.response_ns").record(response.as_nanos());
                if response > self.spec.deadline {
                    recorder.record(Fault {
                        time: completion,
                        task: self.spec.task,
                        kind: FaultKind::DeadlineMiss,
                        detail: format!("response {response} > deadline {}", self.spec.deadline),
                    });
                    raised += 1;
                }
                if self.observed_jitter() > self.spec.jitter_bound {
                    recorder.record(Fault {
                        time: completion,
                        task: self.spec.task,
                        kind: FaultKind::JitterViolation,
                        detail: format!(
                            "jitter {} > bound {}",
                            self.observed_jitter(),
                            self.spec.jitter_bound
                        ),
                    });
                    raised += 1;
                }
            }
            TaskObservation::Memory(t, bytes) => {
                self.memory_peak = self.memory_peak.max(bytes);
                if bytes > self.spec.memory_budget {
                    recorder.record(Fault {
                        time: t,
                        task: self.spec.task,
                        kind: FaultKind::MemoryOverrun,
                        detail: format!("usage {bytes} B > budget {} B", self.spec.memory_budget),
                    });
                    raised += 1;
                }
            }
        }
        raised
    }

    /// Watchdog check: raises [`FaultKind::Silence`] if no activation was
    /// seen within two periods (plus tolerance) before `now`.
    pub fn check_liveness(&self, now: SimTime, recorder: &mut FaultRecorder) -> bool {
        let Some(last) = self.last_activation else {
            return true; // never started: lifecycle's problem, not ours
        };
        let bound = self.spec.period * 2 + self.spec.period_tolerance;
        if now.saturating_since(last) > bound {
            recorder.record(Fault {
                time: now,
                task: self.spec.task,
                kind: FaultKind::Silence,
                detail: format!("no activation for {}", now.saturating_since(last)),
            });
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn spec() -> MonitorSpec {
        MonitorSpec::new(TaskId(3), ms(10), ms(10), 4096).with_jitter_bound(ms(4))
    }

    #[test]
    fn healthy_task_raises_no_faults() {
        let mut mon = TaskMonitor::new(spec());
        let mut rec = FaultRecorder::default();
        for k in 0..20u64 {
            let t = SimTime::from_millis(k * 10);
            assert_eq!(mon.observe(TaskObservation::Activation(t), &mut rec), 0);
            assert_eq!(
                mon.observe(
                    TaskObservation::Completion {
                        release: t,
                        completion: t + ms(2)
                    },
                    &mut rec
                ),
                0
            );
        }
        assert_eq!(rec.total(), 0);
        assert_eq!(mon.activations(), 20);
        assert_eq!(mon.completions(), 20);
        assert_eq!(mon.observed_jitter(), SimDuration::ZERO);
        assert_eq!(mon.response_mean(), ms(2));
    }

    #[test]
    fn period_violation_detected() {
        let mut mon = TaskMonitor::new(spec());
        let mut rec = FaultRecorder::default();
        mon.observe(
            TaskObservation::Activation(SimTime::from_millis(0)),
            &mut rec,
        );
        // 15 ms gap with 10 ± 1 ms bound.
        mon.observe(
            TaskObservation::Activation(SimTime::from_millis(15)),
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::PeriodViolation), 1);
        // Early activation also violates.
        mon.observe(
            TaskObservation::Activation(SimTime::from_millis(17)),
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::PeriodViolation), 2);
    }

    #[test]
    fn deadline_miss_detected() {
        let mut mon = TaskMonitor::new(spec());
        let mut rec = FaultRecorder::default();
        let r = SimTime::from_millis(0);
        mon.observe(
            TaskObservation::Completion {
                release: r,
                completion: r + ms(12),
            },
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::DeadlineMiss), 1);
        assert!(!rec.faults()[0].detail.is_empty());
    }

    #[test]
    fn jitter_violation_detected() {
        let mut mon = TaskMonitor::new(spec()); // jitter bound 4 ms
        let mut rec = FaultRecorder::default();
        let r0 = SimTime::from_millis(0);
        mon.observe(
            TaskObservation::Completion {
                release: r0,
                completion: r0 + ms(1),
            },
            &mut rec,
        );
        let r1 = SimTime::from_millis(10);
        mon.observe(
            TaskObservation::Completion {
                release: r1,
                completion: r1 + ms(8),
            },
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::JitterViolation), 1);
        assert_eq!(mon.observed_jitter(), ms(7));
    }

    #[test]
    fn memory_overrun_detected() {
        let mut mon = TaskMonitor::new(spec());
        let mut rec = FaultRecorder::default();
        mon.observe(
            TaskObservation::Memory(SimTime::from_millis(1), 4096),
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::MemoryOverrun), 0);
        mon.observe(
            TaskObservation::Memory(SimTime::from_millis(2), 5000),
            &mut rec,
        );
        assert_eq!(rec.count(FaultKind::MemoryOverrun), 1);
        assert_eq!(mon.memory_peak(), 5000);
    }

    #[test]
    fn watchdog_detects_silence() {
        let mut mon = TaskMonitor::new(spec());
        let mut rec = FaultRecorder::default();
        // Never activated: liveness passes (not our responsibility).
        assert!(mon.check_liveness(SimTime::from_millis(100), &mut rec));
        mon.observe(
            TaskObservation::Activation(SimTime::from_millis(0)),
            &mut rec,
        );
        assert!(mon.check_liveness(SimTime::from_millis(20), &mut rec));
        assert!(!mon.check_liveness(SimTime::from_millis(30), &mut rec));
        assert_eq!(rec.count(FaultKind::Silence), 1);
    }
}
