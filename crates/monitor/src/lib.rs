//! Runtime monitoring (§3.4 of the paper).
//!
//! "Such monitoring capabilities need to especially target the key
//! parameters of deterministic applications, such as period, deadline,
//! jitter, memory usage, etc. With such monitoring capabilities, faults can
//! easily be detected, the conditions leading to such faults recorded and,
//! if an internet connection is available, be transferred to the
//! manufacturer for further examinations."
//!
//! * [`task`] — per-task observers checking period, deadline, jitter and
//!   memory against the application manifest's declared bounds;
//! * [`fault`] — fault records and the bounded fault recorder;
//! * [`report`] — diagnostic snapshots for the manufacturer backend and
//!   certification data sets;
//! * [`anomaly`] — EWMA drift detection that warns while the "conditions
//!   leading to such faults" are still building up;
//! * [`uncertainty`] — confidence-interval estimators (regression bands,
//!   boundary-exceedance probabilities) that turn monitored parameters
//!   into the distributions the uncertainty-driven adaptation layer
//!   consumes;
//! * [`slo`] — burn-rate SLO gating: `obs::slo` burn tracking fused with
//!   a [`BoundaryEstimator`], tripping on confident budget violation and
//!   pairing every trip with a flight-recorder dump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod fault;
pub mod report;
pub mod slo;
pub mod task;
pub mod uncertainty;

pub use anomaly::{DriftDetector, DriftVerdict};
pub use fault::{Fault, FaultKind, FaultRecorder};
pub use report::{CertificationDataSet, DiagnosticReport};
pub use slo::{SloBurnGate, SloVerdict};
pub use task::{MonitorSpec, TaskMonitor, TaskObservation};
pub use uncertainty::{normal_cdf, BoundaryConfig, BoundaryEstimator, RollingRegression};
