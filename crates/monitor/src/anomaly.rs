//! Trend-based anomaly detection.
//!
//! Hard threshold monitors ([`crate::task`]) fire only once a bound is
//! already violated. §3.4's promise that "faults can easily be detected,
//! the conditions leading to such faults recorded" also needs the *leading*
//! part: a detector that flags a metric drifting toward its bound before
//! the first hard violation. [`DriftDetector`] keeps exponentially weighted
//! moving estimates of mean and variance (EWMA/EWMV) and raises an anomaly
//! when a sample leaves the adaptive band, or when the mean itself crosses
//! a configured fraction of the hard bound.

/// Verdict for one ingested sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftVerdict {
    /// Within the adaptive band and below the warning line.
    Normal,
    /// Statistically surprising sample (outside `k · σ` of the EWMA).
    Outlier,
    /// The moving mean crossed the warning fraction of the hard bound —
    /// the metric is trending into its limit.
    Drifting,
}

/// Samples before the EWMA is considered converged: until then the
/// detector emits neither `Outlier` nor `Drifting` — an unconverged mean
/// crossing the warning line is an artifact of initialization, not a
/// trend, and a hard verdict off it would trigger spurious degradation.
const WARMUP_SAMPLES: u64 = 8;

/// EWMA/EWMV drift detector over a scalar metric (response time in
/// nanoseconds, memory in bytes, …).
#[derive(Clone, Debug)]
pub struct DriftDetector {
    alpha: f64,
    sigma_k: f64,
    hard_bound: f64,
    warn_fraction: f64,
    mean: f64,
    variance: f64,
    samples: u64,
    outliers: u64,
}

impl DriftDetector {
    /// Creates a detector.
    ///
    /// * `alpha` — EWMA smoothing factor in `(0, 1]` (0.05–0.2 typical);
    /// * `sigma_k` — band half-width in standard deviations (3 typical);
    /// * `hard_bound` — the monitored metric's hard limit;
    /// * `warn_fraction` — fraction of the bound at which a drifting mean
    ///   raises [`DriftVerdict::Drifting`] (e.g. 0.8).
    ///
    /// # Panics
    ///
    /// Panics on parameters outside their documented ranges.
    pub fn new(alpha: f64, sigma_k: f64, hard_bound: f64, warn_fraction: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
        assert!(sigma_k > 0.0, "sigma_k must be positive");
        assert!(hard_bound > 0.0, "hard bound must be positive");
        assert!(
            (0.0..=1.0).contains(&warn_fraction),
            "warn fraction in [0, 1]"
        );
        DriftDetector {
            alpha,
            sigma_k,
            hard_bound,
            warn_fraction,
            mean: 0.0,
            variance: 0.0,
            samples: 0,
            outliers: 0,
        }
    }

    /// A conventional response-time detector: α = 0.1, 3σ band, warn at
    /// 80 % of the bound.
    pub fn for_bound(hard_bound: f64) -> Self {
        DriftDetector::new(0.1, 3.0, hard_bound, 0.8)
    }

    /// Current moving mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current moving standard deviation.
    pub fn sigma(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Samples ingested.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Outliers seen.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Ingests one sample and classifies it.
    pub fn ingest(&mut self, sample: f64) -> DriftVerdict {
        self.samples += 1;
        if self.samples == 1 {
            self.mean = sample;
            self.variance = 0.0;
            return DriftVerdict::Normal;
        }
        let deviation = sample - self.mean;
        let sigma = self.sigma();
        // Warm-up: need a few samples before the band is meaningful. With
        // zero observed variance (a perfectly regular metric) any deviation
        // beyond float noise is anomalous — the band degenerates to a
        // relative epsilon instead of switching the check off.
        let band = (self.sigma_k * sigma).max(self.mean.abs() * 1e-9);
        let warmed_up = self.samples > WARMUP_SAMPLES;
        let is_outlier = warmed_up && deviation.abs() > band;
        // Update estimates (outliers included, with the same weight — a
        // persistent shift must eventually move the mean).
        self.mean += self.alpha * deviation;
        self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * deviation * deviation);
        if warmed_up && self.mean > self.warn_fraction * self.hard_bound {
            dynplat_obs::counter!("monitor.drift.drifting").inc();
            DriftVerdict::Drifting
        } else if is_outlier {
            self.outliers += 1;
            dynplat_obs::counter!("monitor.drift.outliers").inc();
            DriftVerdict::Outlier
        } else {
            DriftVerdict::Normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynplat_common::rng::seeded_rng;
    use dynplat_common::rng::Rng;

    fn noisy(rng: &mut impl Rng, center: f64, spread: f64) -> f64 {
        center + rng.gen_range(-spread..spread)
    }

    #[test]
    fn stable_metric_stays_normal() {
        let mut d = DriftDetector::for_bound(10_000.0);
        let mut rng = seeded_rng(1);
        for _ in 0..500 {
            let v = d.ingest(noisy(&mut rng, 2_000.0, 100.0));
            assert_eq!(v, DriftVerdict::Normal);
        }
        assert!((d.mean() - 2_000.0).abs() < 100.0);
    }

    #[test]
    fn single_spike_is_an_outlier_not_a_drift() {
        let mut d = DriftDetector::for_bound(10_000.0);
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            d.ingest(noisy(&mut rng, 2_000.0, 50.0));
        }
        assert_eq!(d.ingest(4_000.0), DriftVerdict::Outlier);
        // And the detector recovers.
        let v = d.ingest(noisy(&mut rng, 2_000.0, 50.0));
        assert_ne!(v, DriftVerdict::Drifting);
        assert_eq!(d.outliers(), 1);
    }

    #[test]
    fn creeping_degradation_raises_drift_before_the_bound() {
        // Response time creeps from 2 ms toward the 10 ms bound; the
        // detector must warn before any sample actually violates it.
        let mut d = DriftDetector::for_bound(10_000.0);
        let mut rng = seeded_rng(3);
        let mut warned_at: Option<(u64, f64)> = None;
        for k in 0..1_000u64 {
            let center = 2_000.0 + k as f64 * 8.0; // +8 us per activation
            let sample = noisy(&mut rng, center, 100.0);
            if d.ingest(sample) == DriftVerdict::Drifting && warned_at.is_none() {
                warned_at = Some((k, sample));
            }
        }
        let (k, sample_at_warning) = warned_at.expect("drift must be detected");
        assert!(
            sample_at_warning < 10_000.0,
            "warning must precede the hard violation (sample {sample_at_warning})"
        );
        assert!(k > 100, "no premature warning while healthy");
    }

    #[test]
    fn zero_variance_series_flags_any_deviation() {
        // A deterministic platform produces byte-identical rounds; the
        // first divergence must register even though sigma is exactly 0.
        let mut d = DriftDetector::for_bound(100_000.0);
        for _ in 0..20 {
            assert_eq!(d.ingest(5_000.0), DriftVerdict::Normal);
        }
        assert_eq!(d.ingest(5_400.0), DriftVerdict::Outlier);
    }

    #[test]
    fn warm_up_produces_no_outliers() {
        let mut d = DriftDetector::for_bound(1_000.0);
        for v in [10.0, 500.0, 20.0, 300.0, 15.0] {
            assert_ne!(
                d.ingest(v),
                DriftVerdict::Outlier,
                "warm-up suppresses outliers"
            );
        }
    }

    #[test]
    fn estimates_track_shifted_load() {
        let mut d = DriftDetector::for_bound(100_000.0);
        let mut rng = seeded_rng(4);
        for _ in 0..200 {
            d.ingest(noisy(&mut rng, 1_000.0, 10.0));
        }
        for _ in 0..400 {
            d.ingest(noisy(&mut rng, 5_000.0, 10.0));
        }
        assert!(
            (d.mean() - 5_000.0).abs() < 200.0,
            "mean tracked the shift: {}",
            d.mean()
        );
    }

    #[test]
    fn warm_up_emits_no_hard_verdicts_off_an_unconverged_ewma() {
        // The first sample of this ramp already sits above the warning
        // line (80 % of the bound); before the fix the detector flagged
        // `Drifting` from sample 2 onward, purely off the unconverged
        // mean. Warm-up must hold all hard verdicts back.
        let mut d = DriftDetector::for_bound(1_000.0);
        for k in 0..WARMUP_SAMPLES {
            let v = d.ingest(850.0 + k as f64);
            assert_eq!(v, DriftVerdict::Normal, "sample {k} is inside warm-up");
        }
        // Once warmed up, the (still high) mean is a legitimate verdict.
        assert_eq!(d.ingest(860.0), DriftVerdict::Drifting);
    }

    #[test]
    fn ramp_verdict_sequence_is_pinned() {
        // Regression pin: a seeded ramp from a healthy level into the
        // bound must produce exactly Normal* (warm-up + healthy), then
        // Drifting once the EWMA crosses the warning line — never a hard
        // verdict inside the warm-up window.
        let mut d = DriftDetector::for_bound(10_000.0);
        let mut rng = seeded_rng(0xA);
        let mut verdicts = Vec::new();
        for k in 0..240u64 {
            let center = 7_500.0 + k as f64 * 8.0;
            verdicts.push(d.ingest(noisy(&mut rng, center, 50.0)));
        }
        let first_drift = verdicts
            .iter()
            .position(|v| *v == DriftVerdict::Drifting)
            .expect("ramp must eventually drift");
        assert!(
            first_drift as u64 >= WARMUP_SAMPLES,
            "hard verdict at sample {first_drift} is inside warm-up"
        );
        assert!(
            verdicts[..first_drift]
                .iter()
                .all(|v| *v == DriftVerdict::Normal),
            "no outliers expected on the smooth ramp before the warning"
        );
        assert!(
            verdicts[first_drift..]
                .iter()
                .all(|v| *v == DriftVerdict::Drifting),
            "once the mean is past the warning line the ramp keeps drifting"
        );
    }

    #[test]
    #[should_panic(expected = "alpha in (0, 1]")]
    fn invalid_alpha_panics() {
        DriftDetector::new(0.0, 3.0, 1.0, 0.8);
    }
}
