//! Diagnostic reporting and certification data sets.
//!
//! The closing claim of §3.4: monitoring data is "transferred to the
//! manufacturer for further examinations" and "can generate data sets,
//! efficiently supporting the safety certification processes".
//! [`DiagnosticReport`] is the transfer unit; [`CertificationDataSet`]
//! aggregates response-time histograms over a fleet of reports.

use crate::fault::{Fault, FaultKind, FaultRecorder};
use crate::task::TaskMonitor;
use dynplat_common::time::{SimDuration, SimTime};
use dynplat_common::{DegradationLevel, TaskId, VehicleId};
use std::collections::BTreeMap;

/// Snapshot of one task's health, as shipped to the backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskHealth {
    /// Task identifier.
    pub task: TaskId,
    /// Activations observed.
    pub activations: u64,
    /// Completions observed.
    pub completions: u64,
    /// Mean response time.
    pub response_mean: SimDuration,
    /// Maximum response time.
    pub response_max: SimDuration,
    /// Observed jitter.
    pub jitter: SimDuration,
    /// Peak memory.
    pub memory_peak: u64,
}

impl From<&TaskMonitor> for TaskHealth {
    fn from(m: &TaskMonitor) -> Self {
        TaskHealth {
            task: m.spec().task,
            activations: m.activations(),
            completions: m.completions(),
            response_mean: m.response_mean(),
            response_max: m.response_max(),
            jitter: m.observed_jitter(),
            memory_peak: m.memory_peak(),
        }
    }
}

/// One degradation-ladder transition, as logged by the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationTransition {
    /// When the platform switched levels.
    pub time: SimTime,
    /// The level entered.
    pub level: DegradationLevel,
}

/// One vehicle's diagnostic upload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagnosticReport {
    /// Reporting vehicle.
    pub vehicle: VehicleId,
    /// Capture time.
    pub captured_at: SimTime,
    /// Health of every monitored task.
    pub tasks: Vec<TaskHealth>,
    /// Faults drained from the recorder.
    pub faults: Vec<Fault>,
    /// Lifetime per-kind fault totals (survive recorder drains).
    pub fault_counts: BTreeMap<FaultKind, u64>,
    /// Degradation-level transitions since the previous report.
    pub degradation: Vec<DegradationTransition>,
}

impl DiagnosticReport {
    /// Builds a report from live monitors and drained faults.
    pub fn capture(
        vehicle: VehicleId,
        captured_at: SimTime,
        monitors: &[&TaskMonitor],
        faults: Vec<Fault>,
    ) -> Self {
        DiagnosticReport {
            vehicle,
            captured_at,
            tasks: monitors.iter().map(|m| TaskHealth::from(*m)).collect(),
            faults,
            fault_counts: BTreeMap::new(),
            degradation: Vec::new(),
        }
    }

    /// Attaches the recorder's lifetime per-kind counters (builder style).
    pub fn with_fault_counts(mut self, recorder: &FaultRecorder) -> Self {
        self.fault_counts = recorder.counts();
        self
    }

    /// Attaches degradation-ladder transitions (builder style).
    pub fn with_degradation(
        mut self,
        transitions: impl IntoIterator<Item = (SimTime, DegradationLevel)>,
    ) -> Self {
        self.degradation = transitions
            .into_iter()
            .map(|(time, level)| DegradationTransition { time, level })
            .collect();
        self
    }

    /// `true` if the report carries at least one fault.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Per-kind counter rows in stable [`FaultKind::ALL`] order, zeros
    /// skipped — the one table shape shared by the monitoring and chaos
    /// experiments.
    pub fn fault_summary(&self) -> Vec<(FaultKind, u64)> {
        FaultKind::ALL
            .iter()
            .filter_map(|k| {
                let n = self.fault_counts.get(k).copied().unwrap_or(0);
                (n > 0).then_some((*k, n))
            })
            .collect()
    }

    /// The deepest degradation level the vehicle reached, if any
    /// transitions were logged.
    pub fn worst_degradation(&self) -> Option<DegradationLevel> {
        self.degradation.iter().map(|t| t.level).max()
    }
}

/// Fleet-level aggregation: per-task response-time histograms with fixed
/// bucket width, plus fault totals — the raw material for certification
/// arguments ("in N·10⁶ activations the 10 ms loop never exceeded 8 ms").
#[derive(Clone, Debug, Default)]
pub struct CertificationDataSet {
    bucket_width: SimDuration,
    histograms: BTreeMap<TaskId, Vec<u64>>,
    total_activations: BTreeMap<TaskId, u64>,
    total_faults: u64,
    reports: u64,
}

impl CertificationDataSet {
    /// Creates a data set with the given histogram bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: SimDuration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        CertificationDataSet {
            bucket_width,
            ..Default::default()
        }
    }

    /// Ingests one diagnostic report.
    pub fn ingest(&mut self, report: &DiagnosticReport) {
        self.reports += 1;
        self.total_faults += report.faults.len() as u64;
        for th in &report.tasks {
            let bucket = (th.response_max / self.bucket_width) as usize;
            let hist = self.histograms.entry(th.task).or_default();
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
            *self.total_activations.entry(th.task).or_insert(0) += th.activations;
        }
    }

    /// Number of ingested reports.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Total faults across the fleet.
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// Total activations of `task` across the fleet.
    pub fn activations(&self, task: TaskId) -> u64 {
        self.total_activations.get(&task).copied().unwrap_or(0)
    }

    /// Response-max histogram of `task` (bucket i covers
    /// `[i·width, (i+1)·width)`).
    pub fn histogram(&self, task: TaskId) -> Option<&[u64]> {
        self.histograms.get(&task).map(Vec::as_slice)
    }

    /// The smallest bound `b` such that a `quantile` fraction of reports
    /// had `response_max < b`.
    pub fn response_bound(&self, task: TaskId, quantile: f64) -> Option<SimDuration> {
        let hist = self.histograms.get(&task)?;
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (total as f64 * quantile).ceil() as u64;
        let mut acc = 0;
        for (i, count) in hist.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some(self.bucket_width * (i as u64 + 1));
            }
        }
        Some(self.bucket_width * hist.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultRecorder};
    use crate::task::{MonitorSpec, TaskMonitor, TaskObservation};

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn monitor_with_history(responses_ms: &[u64]) -> TaskMonitor {
        let mut mon = TaskMonitor::new(MonitorSpec::new(TaskId(1), ms(10), ms(100), 1 << 20));
        let mut rec = FaultRecorder::default();
        for (k, &r) in responses_ms.iter().enumerate() {
            let rel = SimTime::from_millis(k as u64 * 10);
            mon.observe(TaskObservation::Activation(rel), &mut rec);
            mon.observe(
                TaskObservation::Completion {
                    release: rel,
                    completion: rel + ms(r),
                },
                &mut rec,
            );
        }
        mon
    }

    #[test]
    fn report_capture_snapshots_monitors() {
        let mon = monitor_with_history(&[2, 3, 4]);
        let report =
            DiagnosticReport::capture(VehicleId(9), SimTime::from_secs(1), &[&mon], vec![]);
        assert_eq!(report.tasks.len(), 1);
        assert_eq!(report.tasks[0].activations, 3);
        assert_eq!(report.tasks[0].response_max, ms(4));
        assert!(!report.has_faults());
    }

    #[test]
    fn report_with_faults() {
        let mut rec = FaultRecorder::default();
        let mut mon = monitor_with_history(&[]);
        mon.observe(
            TaskObservation::Completion {
                release: SimTime::ZERO,
                completion: SimTime::from_millis(200),
            },
            &mut rec,
        );
        let report =
            DiagnosticReport::capture(VehicleId(1), SimTime::from_secs(1), &[&mon], rec.drain());
        assert!(report.has_faults());
        assert_eq!(report.faults[0].kind, FaultKind::DeadlineMiss);
    }

    #[test]
    fn certification_set_aggregates_fleet() {
        let mut set = CertificationDataSet::new(ms(1));
        for worst in [3u64, 4, 4, 5, 9] {
            let mon = monitor_with_history(&[2, worst]);
            let report = DiagnosticReport::capture(
                VehicleId(worst as u32),
                SimTime::from_secs(1),
                &[&mon],
                vec![],
            );
            set.ingest(&report);
        }
        assert_eq!(set.reports(), 5);
        assert_eq!(set.activations(TaskId(1)), 10);
        let hist = set.histogram(TaskId(1)).unwrap();
        assert_eq!(hist.iter().sum::<u64>(), 5);
        // 80% of vehicles stayed below 6 ms.
        assert_eq!(set.response_bound(TaskId(1), 0.8), Some(ms(6)));
        assert_eq!(set.response_bound(TaskId(1), 1.0), Some(ms(10)));
        assert_eq!(set.response_bound(TaskId(99), 0.5), None);
    }

    #[test]
    fn fault_totals_accumulate() {
        let mut set = CertificationDataSet::new(ms(1));
        let fault = Fault {
            time: SimTime::ZERO,
            task: TaskId(1),
            kind: FaultKind::MemoryOverrun,
            detail: String::new(),
        };
        let report = DiagnosticReport {
            vehicle: VehicleId(1),
            captured_at: SimTime::ZERO,
            tasks: vec![],
            faults: vec![fault.clone(), fault],
            fault_counts: BTreeMap::new(),
            degradation: vec![],
        };
        set.ingest(&report);
        assert_eq!(set.total_faults(), 2);
    }

    #[test]
    fn fault_counts_and_degradation_surface_in_reports() {
        let mut rec = FaultRecorder::default();
        for kind in [
            FaultKind::MessageLoss,
            FaultKind::MessageLoss,
            FaultKind::NodeFailure,
        ] {
            rec.record(Fault {
                time: SimTime::ZERO,
                task: TaskId(1),
                kind,
                detail: String::new(),
            });
        }
        let report = DiagnosticReport::capture(VehicleId(1), SimTime::from_secs(1), &[], vec![])
            .with_fault_counts(&rec)
            .with_degradation([
                (SimTime::from_millis(100), DegradationLevel::Degraded),
                (SimTime::from_millis(900), DegradationLevel::Full),
            ]);
        assert_eq!(
            report.fault_summary(),
            vec![(FaultKind::MessageLoss, 2), (FaultKind::NodeFailure, 1)]
        );
        assert_eq!(report.worst_degradation(), Some(DegradationLevel::Degraded));
        // Drains do not reset the surfaced counters.
        let mut rec2 = rec.clone();
        rec2.drain();
        let after = DiagnosticReport::capture(VehicleId(1), SimTime::from_secs(2), &[], vec![])
            .with_fault_counts(&rec2);
        assert_eq!(after.fault_summary(), report.fault_summary());
    }
}
