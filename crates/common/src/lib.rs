//! Common foundation types for the `dynplat` workspace.
//!
//! This crate collects the vocabulary shared by every other `dynplat` crate:
//!
//! * [`time`] — simulated time ([`SimTime`], [`SimDuration`]) with nanosecond
//!   resolution, the base clock of all discrete-event simulations;
//! * [`ids`] — strongly typed identifiers for ECUs, applications, services,
//!   tasks, buses and so on (newtypes per C-NEWTYPE);
//! * [`criticality`] — ASIL levels and the deterministic / non-deterministic
//!   application split of the paper's §3.1 application model;
//! * [`codec`] — small big-endian byte reader/writer used by every wire
//!   format in the workspace;
//! * [`value`] — the "complex objects, defined by complex data types" of the
//!   paper's §2.2 interface model: a self-describing [`DataType`] schema and
//!   matching [`Value`] runtime representation with binary codecs;
//! * [`rng`] — deterministic random-number helpers so every experiment is
//!   reproducible from a seed;
//! * [`uncertainty`] — the distribution-valued observation type
//!   ([`UncertaintyEstimate`]) the uncertainty-aware adaptation layer
//!   exchanges between monitor, core and comm.
//!
//! # Examples
//!
//! ```
//! use dynplat_common::time::{SimDuration, SimTime};
//!
//! let t = SimTime::ZERO + SimDuration::from_millis(10);
//! assert_eq!(t.as_micros(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod criticality;
pub mod ids;
pub mod rng;
pub mod time;
pub mod uncertainty;
pub mod value;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use criticality::{AppKind, Asil, DegradationLevel};
pub use ids::{
    AppId, BusId, EcuId, EventGroupId, InstanceId, LinkId, MessageId, MethodId, NodeId, ServiceId,
    ShardId, TaskId, VehicleId,
};
pub use time::{SimDuration, SimTime};
pub use uncertainty::UncertaintyEstimate;
pub use value::{DataType, Value};
