//! The shared vocabulary of uncertainty-aware adaptation.
//!
//! The paper's title promises uncertainty *management*, which needs more
//! than point signals: every adaptation consumer (degradation ladder,
//! redundancy supervision, circuit breakers) must be able to ask not "what
//! is the value?" but "how sure are we, and how likely is a boundary
//! violation?". [`UncertaintyEstimate`] is the answer type the estimators
//! in `dynplat-monitor` produce and the robustness substrate consumes. It
//! lives here, in the foundation crate, so `dynplat-comm` (which the
//! monitor crate cannot depend on) can gate its circuit breakers on the
//! same distribution the ladder sees.

use crate::time::SimTime;

/// One distribution-valued observation of a monitored parameter: the
/// estimator's belief about the signal at `at`, against one operational
/// boundary.
///
/// All fields are plain `f64` state so the estimate can cross crate
/// boundaries without dragging estimator internals along. Estimates are
/// deterministic functions of the ingested sample stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UncertaintyEstimate {
    /// When the estimate was produced.
    pub at: SimTime,
    /// Estimated signal level (regression prediction at `at`).
    pub mean: f64,
    /// Residual standard deviation of the fitted signal.
    pub sigma: f64,
    /// Half-width of the confidence band around `mean`, already widened
    /// for small sample counts (warm-up).
    pub band: f64,
    /// Probability that the monitored parameter currently exceeds its
    /// operational boundary, in `[0, 1]`.
    pub exceed: f64,
    /// Samples the estimator has ingested so far.
    pub samples: u64,
    /// `false` while the estimator is still warming up; consumers must not
    /// take irreversible decisions (trips, descents) off an unconverged
    /// estimate.
    pub converged: bool,
}

impl UncertaintyEstimate {
    /// A neutral, unconverged estimate: maximum ignorance about the
    /// monitored parameter. `exceed` is ½ — no evidence either way.
    pub fn unknown(at: SimTime) -> Self {
        UncertaintyEstimate {
            at,
            mean: 0.0,
            sigma: 0.0,
            band: f64::INFINITY,
            exceed: 0.5,
            samples: 0,
            converged: false,
        }
    }

    /// Upper edge of the confidence band — the conservative reading a
    /// safety consumer should assume for a "badness" signal.
    pub fn upper(&self) -> f64 {
        self.mean + self.band
    }

    /// Lower edge of the confidence band.
    pub fn lower(&self) -> f64 {
        self.mean - self.band
    }

    /// `true` once the estimate is converged *and* its exceedance
    /// probability clears `gate` — the standard trip condition shared by
    /// the ladder, failover and breaker consumers.
    ///
    /// # Panics
    ///
    /// Panics unless `gate` is in `[0, 1]`.
    pub fn exceeds_with_confidence(&self, gate: f64) -> bool {
        assert!((0.0..=1.0).contains(&gate), "confidence gate in [0, 1]");
        self.converged && self.exceed >= gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_neutral_and_never_trips() {
        let e = UncertaintyEstimate::unknown(SimTime::ZERO);
        assert!(!e.converged);
        assert!(!e.exceeds_with_confidence(0.0));
        assert_eq!(e.exceed, 0.5);
        assert!(e.band.is_infinite());
    }

    #[test]
    fn band_edges_bracket_the_mean() {
        let e = UncertaintyEstimate {
            at: SimTime::ZERO,
            mean: 0.4,
            sigma: 0.05,
            band: 0.1,
            exceed: 0.97,
            samples: 50,
            converged: true,
        };
        assert!((e.upper() - 0.5).abs() < 1e-12);
        assert!((e.lower() - 0.3).abs() < 1e-12);
        assert!(e.exceeds_with_confidence(0.95));
        assert!(!e.exceeds_with_confidence(0.99));
    }

    #[test]
    #[should_panic(expected = "confidence gate in [0, 1]")]
    fn invalid_gate_panics() {
        let e = UncertaintyEstimate::unknown(SimTime::ZERO);
        e.exceeds_with_confidence(1.5);
    }
}
