//! Simulated time.
//!
//! All `dynplat` simulations run on a single logical clock with nanosecond
//! resolution. [`SimTime`] is a point on that clock, [`SimDuration`] a span
//! between two points. Both are thin `u64` newtypes (C-NEWTYPE): cheap to
//! copy, totally ordered, and impossible to confuse with byte counts or
//! priorities.
//!
//! # Examples
//!
//! ```
//! use dynplat_common::time::{SimDuration, SimTime};
//!
//! let period = SimDuration::from_millis(10);
//! let start = SimTime::ZERO;
//! let third_activation = start + period * 3;
//! assert_eq!(third_activation.as_millis(), 30);
//! assert!(third_activation > start);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The next multiple of `period` at or after this instant.
    ///
    /// Useful for aligning activations to a time-triggered grid.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn align_up(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be non-zero");
        let rem = self.0 % period.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 - rem + period.0)
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplies by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The least common multiple of two durations — the hyperperiod of two
    /// periodic activities.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero.
    pub fn lcm(self, other: SimDuration) -> SimDuration {
        assert!(self.0 > 0 && other.0 > 0, "lcm of zero duration");
        SimDuration(self.0 / gcd(self.0, other.0) * other.0)
    }
}

const fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Hyperperiod (least common multiple) of a set of periods.
///
/// Returns [`SimDuration::ZERO`] for an empty iterator.
///
/// # Panics
///
/// Panics if any period is zero.
///
/// # Examples
///
/// ```
/// use dynplat_common::time::{hyperperiod, SimDuration};
///
/// let h = hyperperiod([SimDuration::from_millis(4), SimDuration::from_millis(6)]);
/// assert_eq!(h, SimDuration::from_millis(12));
/// ```
pub fn hyperperiod<I: IntoIterator<Item = SimDuration>>(periods: I) -> SimDuration {
    periods.into_iter().fold(SimDuration::ZERO, |acc, p| {
        if acc.is_zero() {
            p
        } else {
            acc.lcm(p)
        }
    })
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Rem<SimDuration> for SimTime {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(SimDuration::from_millis(9) / 3, SimDuration::from_millis(3));
        assert_eq!(SimDuration::from_millis(9) / SimDuration::from_millis(4), 2);
    }

    #[test]
    fn saturating_since_handles_future_reference() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn align_up_to_grid() {
        let p = SimDuration::from_millis(10);
        assert_eq!(
            SimTime::from_millis(10).align_up(p),
            SimTime::from_millis(10)
        );
        assert_eq!(
            SimTime::from_millis(11).align_up(p),
            SimTime::from_millis(20)
        );
        assert_eq!(SimTime::ZERO.align_up(p), SimTime::ZERO);
    }

    #[test]
    fn hyperperiod_of_set() {
        let h = hyperperiod([
            SimDuration::from_millis(10),
            SimDuration::from_millis(4),
            SimDuration::from_millis(5),
        ]);
        assert_eq!(h, SimDuration::from_millis(20));
        assert_eq!(hyperperiod([]), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1500ms");
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
