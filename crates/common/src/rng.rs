//! Deterministic randomness helpers.
//!
//! Every experiment in the workspace must be reproducible from a seed, so all
//! stochastic components (workload generators, jitter models, simulated
//! annealing) draw from [`seeded_rng`] or from streams split off a parent
//! seed with [`split_seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = dynplat_common::rng::seeded_rng(7);
/// let mut b = dynplat_common::rng::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which decorrelates nearby inputs, so
/// `split_seed(s, 0)` and `split_seed(s, 1)` yield unrelated streams.
pub fn split_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a truncated-normal duration multiplier in `[min, max]`.
///
/// Used by jitter models: a nominal duration is scaled by a factor around
/// 1.0. Sampling is by rejection with a Box–Muller transform; falls back to
/// the clamped mean after 64 rejections (pathological bounds).
///
/// # Panics
///
/// Panics if `min > max` or `sigma` is negative.
pub fn truncated_normal_factor<R: Rng>(rng: &mut R, sigma: f64, min: f64, max: f64) -> f64 {
    assert!(min <= max, "min must not exceed max");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    if sigma == 0.0 {
        return 1.0f64.clamp(min, max);
    }
    for _ in 0..64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = 1.0 + sigma * z;
        if x >= min && x <= max {
            return x;
        }
    }
    1.0f64.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let s = 42;
        assert_ne!(split_seed(s, 0), split_seed(s, 1));
        assert_ne!(split_seed(s, 0), split_seed(s + 1, 0));
        // Deterministic.
        assert_eq!(split_seed(s, 3), split_seed(s, 3));
    }

    #[test]
    fn truncated_normal_stays_in_bounds() {
        let mut rng = seeded_rng(9);
        for _ in 0..1000 {
            let x = truncated_normal_factor(&mut rng, 0.2, 0.5, 1.5);
            assert!((0.5..=1.5).contains(&x));
        }
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = seeded_rng(9);
        assert_eq!(truncated_normal_factor(&mut rng, 0.0, 0.9, 1.1), 1.0);
        assert_eq!(truncated_normal_factor(&mut rng, 0.0, 1.2, 1.4), 1.2);
    }

    #[test]
    fn mean_is_near_one() {
        let mut rng = seeded_rng(5);
        let n = 5000;
        let sum: f64 =
            (0..n).map(|_| truncated_normal_factor(&mut rng, 0.1, 0.0, 2.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean} too far from 1.0");
    }
}
