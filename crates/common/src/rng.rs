//! Deterministic randomness helpers.
//!
//! Every experiment in the workspace must be reproducible from a seed, so all
//! stochastic components (workload generators, jitter models, simulated
//! annealing, fault injection) draw from [`seeded_rng`] or from streams split
//! off a parent seed with [`split_seed`].
//!
//! The generator is implemented in-repo (a SplitMix64 stream, the same
//! finalizer [`split_seed`] uses) so the workspace builds with no external
//! dependencies and fault campaigns replay byte-identically on every
//! toolchain. The [`Rng`] trait mirrors the small slice of the `rand` API
//! the workspace uses (`gen`, `gen_range`, `gen_bool`).

use std::ops::{Range, RangeInclusive};

/// The minimal random-number interface used across the workspace.
///
/// Mirrors the `rand::Rng` surface the crates rely on so generic samplers
/// (`fn sample<R: Rng>(rng: &mut R)`) read identically.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly distributed value of `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`].
pub trait Sample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uint {
    ($($ty:ty),*) => {$(
        impl Sample for $ty {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                // Truncation keeps the uniform distribution of the low bits.
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize, i64);

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` by widening multiply (no modulo
/// skew worth speaking of at simulation scales).
fn bounded(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_in<R: Rng>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i128 + bounded(rng.next_u64(), span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        let out = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if out < self.end {
            out
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        (start + u * (end - start)).clamp(start, end)
    }
}

/// A deterministic SplitMix64 random-number generator.
///
/// Tiny state, fast fixed-cost steps, and — critical for the fault-injection
/// layer — the same stream on every platform and toolchain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator for a labeled stream, equivalent to
    /// `seeded_rng(split_seed(seed, stream))`.
    pub fn stream(&self, stream: u64) -> SplitMix64 {
        SplitMix64::new(split_seed(self.state, stream))
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use dynplat_common::rng::Rng;
///
/// let mut a = dynplat_common::rng::seeded_rng(7);
/// let mut b = dynplat_common::rng::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which decorrelates nearby inputs, so
/// `split_seed(s, 0)` and `split_seed(s, 1)` yield unrelated streams.
pub fn split_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a truncated-normal duration multiplier in `[min, max]`.
///
/// Used by jitter models: a nominal duration is scaled by a factor around
/// 1.0. Sampling is by rejection with a Box–Muller transform; falls back to
/// the clamped mean after 64 rejections (pathological bounds).
///
/// # Panics
///
/// Panics if `min > max` or `sigma` is negative.
pub fn truncated_normal_factor<R: Rng>(rng: &mut R, sigma: f64, min: f64, max: f64) -> f64 {
    assert!(min <= max, "min must not exceed max");
    assert!(sigma >= 0.0, "sigma must be non-negative");
    if sigma == 0.0 {
        return 1.0f64.clamp(min, max);
    }
    for _ in 0..64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = 1.0 + sigma * z;
        if x >= min && x <= max {
            return x;
        }
    }
    1.0f64.clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let s = 42;
        assert_ne!(split_seed(s, 0), split_seed(s, 1));
        assert_ne!(split_seed(s, 0), split_seed(s + 1, 0));
        // Deterministic.
        assert_eq!(split_seed(s, 3), split_seed(s, 3));
    }

    #[test]
    fn stream_matches_split_seed() {
        let mut direct = seeded_rng(split_seed(9, 4));
        let mut via_stream = seeded_rng(9).stream(4);
        assert_eq!(direct.next_u64(), via_stream.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = seeded_rng(7);
        for _ in 0..2000 {
            let a = rng.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0usize..3);
            assert!(c < 3);
            let d = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&d));
            let e = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&e));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        // Every value of a small range is hit (sanity against off-by-one).
        let mut rng = seeded_rng(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = seeded_rng(21);
        for _ in 0..5000 {
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = seeded_rng(5);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn truncated_normal_stays_in_bounds() {
        let mut rng = seeded_rng(9);
        for _ in 0..1000 {
            let x = truncated_normal_factor(&mut rng, 0.2, 0.5, 1.5);
            assert!((0.5..=1.5).contains(&x));
        }
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = seeded_rng(9);
        assert_eq!(truncated_normal_factor(&mut rng, 0.0, 0.9, 1.1), 1.0);
        assert_eq!(truncated_normal_factor(&mut rng, 0.0, 1.2, 1.4), 1.2);
    }

    #[test]
    fn mean_is_near_one() {
        let mut rng = seeded_rng(5);
        let n = 5000;
        let sum: f64 = (0..n)
            .map(|_| truncated_normal_factor(&mut rng, 0.1, 0.0, 2.0))
            .sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean} too far from 1.0");
    }
}
