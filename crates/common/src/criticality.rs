//! Criticality and application-kind vocabulary.
//!
//! The paper's application model (§3.1) splits applications into
//! *deterministic* (strict schedule requirements, fixed execution times and
//! jitter — control loops, ADAS functions) and *non-deterministic* (relaxed
//! scheduling — typically infotainment). Orthogonally, ISO 26262 assigns each
//! function an Automotive Safety Integrity Level (ASIL).

use std::fmt;
use std::str::FromStr;

/// Automotive Safety Integrity Level per ISO 26262.
///
/// Ordered from least ([`Asil::Qm`]) to most critical ([`Asil::D`]); the
/// `Ord` impl reflects that, so "at least ASIL B" is `asil >= Asil::B`.
///
/// # Examples
///
/// ```
/// use dynplat_common::Asil;
///
/// assert!(Asil::D > Asil::A);
/// assert_eq!("ASIL-C".parse::<Asil>().unwrap(), Asil::C);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// Quality Managed — no safety requirements.
    #[default]
    Qm,
    /// ASIL A — lowest safety integrity level.
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D — highest safety integrity level (e.g. braking, steering).
    D,
}

impl Asil {
    /// All levels in ascending criticality order.
    pub const ALL: [Asil; 5] = [Asil::Qm, Asil::A, Asil::B, Asil::C, Asil::D];

    /// `true` if a component at this level may depend on one at `dep`.
    ///
    /// ISO 26262 decomposition aside, a software module "can only be
    /// considered safe with correct safe dependencies" (§3 of the paper):
    /// dependencies must be rated at least as high as the dependent module.
    pub fn may_depend_on(self, dep: Asil) -> bool {
        dep >= self
    }

    /// A conventional testing-effort multiplier relative to QM, used by the
    /// XiL substrate to model the longer certification cycles of higher
    /// ASILs (faster time-to-market challenge, §1).
    pub fn test_effort_factor(self) -> f64 {
        match self {
            Asil::Qm => 1.0,
            Asil::A => 2.0,
            Asil::B => 3.5,
            Asil::C => 6.0,
            Asil::D => 10.0,
        }
    }
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asil::Qm => write!(f, "QM"),
            Asil::A => write!(f, "ASIL-A"),
            Asil::B => write!(f, "ASIL-B"),
            Asil::C => write!(f, "ASIL-C"),
            Asil::D => write!(f, "ASIL-D"),
        }
    }
}

/// Error returned when parsing an [`Asil`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAsilError(String);

impl fmt::Display for ParseAsilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown ASIL level `{}`", self.0)
    }
}

impl std::error::Error for ParseAsilError {}

impl FromStr for Asil {
    type Err = ParseAsilError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "QM" => Ok(Asil::Qm),
            "A" | "ASIL-A" | "ASIL_A" => Ok(Asil::A),
            "B" | "ASIL-B" | "ASIL_B" => Ok(Asil::B),
            "C" | "ASIL-C" | "ASIL_C" => Ok(Asil::C),
            "D" | "ASIL-D" | "ASIL_D" => Ok(Asil::D),
            other => Err(ParseAsilError(other.to_owned())),
        }
    }
}

/// The two application categories of the paper's §3.1 application model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppKind {
    /// Strict schedule requirements: fixed activation intervals, computation
    /// deadlines, bounded jitter. Requires an RTOS-style scheduler.
    Deterministic,
    /// Relaxed scheduling requirements; may use threading and long-running
    /// asynchronous communication. Typically infotainment.
    NonDeterministic,
}

impl AppKind {
    /// `true` for [`AppKind::Deterministic`].
    pub fn is_deterministic(self) -> bool {
        matches!(self, AppKind::Deterministic)
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppKind::Deterministic => write!(f, "deterministic"),
            AppKind::NonDeterministic => write!(f, "non-deterministic"),
        }
    }
}

/// Platform-wide operating level of the degradation ladder (§3.3).
///
/// Under fault pressure the platform sheds load in criticality order:
/// non-deterministic (infotainment) functions go first, deterministic
/// control functions are protected to the end. Ordered from healthiest
/// ([`DegradationLevel::Full`]) to most degraded
/// ([`DegradationLevel::LimpHome`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// All applications run.
    #[default]
    Full,
    /// Low-criticality non-deterministic load is shed.
    Degraded,
    /// Only deterministic, safety-rated functions keep running.
    LimpHome,
}

impl DegradationLevel {
    /// All levels, healthiest first.
    pub const ALL: [DegradationLevel; 3] = [
        DegradationLevel::Full,
        DegradationLevel::Degraded,
        DegradationLevel::LimpHome,
    ];

    /// `true` if an application of `kind` at `asil` may run at this level.
    ///
    /// The shedding order protects deterministic applications: at
    /// [`DegradationLevel::Degraded`] every non-deterministic application
    /// below ASIL-B is stopped; at [`DegradationLevel::LimpHome`] all
    /// non-deterministic load is stopped and only deterministic
    /// applications rated ASIL-A or higher remain.
    pub fn admits(self, kind: AppKind, asil: Asil) -> bool {
        match self {
            DegradationLevel::Full => true,
            DegradationLevel::Degraded => kind.is_deterministic() || asil >= Asil::B,
            DegradationLevel::LimpHome => kind.is_deterministic() && asil >= Asil::A,
        }
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationLevel::Full => write!(f, "full"),
            DegradationLevel::Degraded => write!(f, "degraded"),
            DegradationLevel::LimpHome => write!(f, "limp-home"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asil_ordering_matches_criticality() {
        assert!(Asil::Qm < Asil::A);
        assert!(Asil::A < Asil::B);
        assert!(Asil::B < Asil::C);
        assert!(Asil::C < Asil::D);
    }

    #[test]
    fn dependency_rule_is_monotone() {
        assert!(Asil::D.may_depend_on(Asil::D));
        assert!(!Asil::D.may_depend_on(Asil::C));
        assert!(Asil::Qm.may_depend_on(Asil::B));
        for a in Asil::ALL {
            for b in Asil::ALL {
                assert_eq!(a.may_depend_on(b), b >= a);
            }
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for a in Asil::ALL {
            assert_eq!(a.to_string().parse::<Asil>().unwrap(), a);
        }
        assert!("ASIL-E".parse::<Asil>().is_err());
        assert_eq!("d".parse::<Asil>().unwrap(), Asil::D);
    }

    #[test]
    fn test_effort_grows_with_criticality() {
        let mut last = 0.0;
        for a in Asil::ALL {
            assert!(a.test_effort_factor() > last);
            last = a.test_effort_factor();
        }
    }

    #[test]
    fn app_kind_predicates() {
        assert!(AppKind::Deterministic.is_deterministic());
        assert!(!AppKind::NonDeterministic.is_deterministic());
        assert_eq!(AppKind::Deterministic.to_string(), "deterministic");
    }

    #[test]
    fn degradation_sheds_nda_before_da() {
        use DegradationLevel::*;
        // Full admits everything.
        for a in Asil::ALL {
            assert!(Full.admits(AppKind::Deterministic, a));
            assert!(Full.admits(AppKind::NonDeterministic, a));
        }
        // Degraded drops low-criticality NDA but keeps all DA.
        assert!(!Degraded.admits(AppKind::NonDeterministic, Asil::Qm));
        assert!(Degraded.admits(AppKind::NonDeterministic, Asil::B));
        for a in Asil::ALL {
            assert!(Degraded.admits(AppKind::Deterministic, a));
        }
        // Limp-home keeps only safety-rated DA.
        assert!(!LimpHome.admits(AppKind::NonDeterministic, Asil::D));
        assert!(!LimpHome.admits(AppKind::Deterministic, Asil::Qm));
        assert!(LimpHome.admits(AppKind::Deterministic, Asil::A));
        // The admitted set shrinks monotonically along the ladder.
        for kind in [AppKind::Deterministic, AppKind::NonDeterministic] {
            for a in Asil::ALL {
                for pair in DegradationLevel::ALL.windows(2) {
                    if pair[0].admits(kind, a) || !pair[1].admits(kind, a) {
                        continue;
                    }
                    panic!("{kind}/{a} admitted at {} but not {}", pair[1], pair[0]);
                }
            }
        }
    }
}
