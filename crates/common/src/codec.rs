//! Big-endian byte codec helpers.
//!
//! Every wire format in the workspace (SOME/IP-style middleware headers,
//! signed update packages, typed payload values) is encoded through the same
//! two small types: [`ByteWriter`] appends big-endian fields to a buffer,
//! [`ByteReader`] consumes them with explicit bounds checking and a
//! meaningful error type (C-GOOD-ERR).
//!
//! # Examples
//!
//! ```
//! use dynplat_common::codec::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.put_u16(0x0103);
//! w.put_bytes(b"abc");
//! let buf = w.into_bytes();
//!
//! let mut r = ByteReader::new(&buf);
//! assert_eq!(r.take_u16()?, 0x0103);
//! assert_eq!(r.take_bytes(3)?, b"abc");
//! assert!(r.is_empty());
//! # Ok::<(), dynplat_common::codec::CodecError>(())
//! ```

use std::fmt;

/// Error produced when decoding malformed or truncated byte input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested field could be read.
    UnexpectedEnd {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A field held a value that is not valid for its type.
    InvalidValue {
        /// The field being decoded.
        field: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// A length prefix exceeded a sanity bound.
    LengthOutOfRange {
        /// The decoded length.
        len: usize,
        /// The maximum allowed.
        max: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::InvalidValue { field, value } => {
                write!(f, "invalid value {value} for field `{field}`")
            }
            CodecError::LengthOutOfRange { len, max } => {
                write!(f, "length {len} exceeds maximum {max}")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends big-endian encoded fields to a growable buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, clearing it first but keeping its
    /// capacity — the reuse path for encoders called in a hot loop, where
    /// a warmed buffer makes repeated encodes allocation-free.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        ByteWriter { buf }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an IEEE-754 `f64` in big-endian byte order.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Appends a `u32` length prefix followed by UTF-8 string bytes.
    pub fn put_string(&mut self, v: &str) {
        self.put_len_prefixed(v.as_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overwrites a previously written big-endian `u32` at `offset`.
    ///
    /// Used for back-patching length fields in headers.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the written length.
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        assert!(offset + 4 <= self.buf.len(), "patch offset out of range");
        self.buf[offset..offset + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Finishes writing and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes writing and returns an owned `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Consumes big-endian encoded fields from a byte slice with bounds checking.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        ByteReader { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// `true` once all input is consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if the input is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than 2 bytes remain.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a big-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn take_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads a big-endian IEEE-754 `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a `u32` length prefix followed by that many bytes, rejecting
    /// prefixes larger than `max`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LengthOutOfRange`] if the prefix exceeds `max`,
    /// or [`CodecError::UnexpectedEnd`] if the input is truncated.
    pub fn take_len_prefixed(&mut self, max: usize) -> Result<&'a [u8], CodecError> {
        let len = self.take_u32()? as usize;
        if len > max {
            return Err(CodecError::LengthOutOfRange { len, max });
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string (max 1 MiB).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidUtf8`] for non-UTF-8 content, or the
    /// errors of [`ByteReader::take_len_prefixed`].
    pub fn take_string(&mut self) -> Result<String, CodecError> {
        let raw = self.take_len_prefixed(1 << 20)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::InvalidUtf8)
    }

    /// Returns the rest of the input without consuming it.
    pub fn peek_rest(&self) -> &'a [u8] {
        &self.input[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xABCD);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_string("hello");
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 0xABCD);
        assert_eq!(r.take_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_f64().unwrap(), 3.5);
        assert_eq!(r.take_string().unwrap(), "hello");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_reports_unexpected_end() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.take_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEnd {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn length_prefix_sanity_bound() {
        let mut w = ByteWriter::new();
        w.put_u32(10_000);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        let err = r.take_len_prefixed(100).unwrap_err();
        assert_eq!(
            err,
            CodecError::LengthOutOfRange {
                len: 10_000,
                max: 100
            }
        );
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed(&[0xFF, 0xFE]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_string().unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn patch_u32_back_fills_header_length() {
        let mut w = ByteWriter::new();
        w.put_u32(0); // placeholder
        w.put_bytes(b"payload");
        w.patch_u32(0, 7);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.take_u32().unwrap(), 7);
    }

    #[test]
    fn position_tracking() {
        let data = [0u8; 8];
        let mut r = ByteReader::new(&data);
        r.take_u16().unwrap();
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 6);
        assert_eq!(r.peek_rest().len(), 6);
        assert_eq!(r.remaining(), 6);
    }
}
