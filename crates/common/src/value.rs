//! Complex typed data objects.
//!
//! §2.2 of the paper: *"The communication is no longer based on signals
//! defined by bit offsets, but on complex objects, defined by complex data
//! types."* This module provides the schema side ([`DataType`]) and the
//! runtime side ([`Value`]) of those objects, plus a binary codec that the
//! middleware uses for payload serialization.
//!
//! # Examples
//!
//! ```
//! use dynplat_common::value::{DataType, Value};
//!
//! let ty = DataType::record([
//!     ("speed_kmh", DataType::F64),
//!     ("wheel_ticks", DataType::array(DataType::U32, 4)),
//! ]);
//! let v = Value::record([
//!     ("speed_kmh", Value::F64(87.5)),
//!     ("wheel_ticks", Value::array([Value::U32(1), Value::U32(2), Value::U32(3), Value::U32(4)])),
//! ]);
//! assert!(v.conforms_to(&ty));
//! let bytes = v.encode();
//! let back = Value::decode(&bytes, &ty)?;
//! assert_eq!(back, v);
//! # Ok::<(), dynplat_common::codec::CodecError>(())
//! ```

use crate::codec::{ByteReader, ByteWriter, CodecError};
use std::fmt;

/// A self-describing interface data type.
///
/// These are the types interface DSL definitions are written in; the
/// verification engine checks payload compatibility against them and the
/// middleware sizes frames from [`DataType::encoded_size_bounds`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean flag.
    Bool,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// UTF-8 string (length-prefixed on the wire).
    Str,
    /// Opaque byte blob (length-prefixed on the wire).
    Blob,
    /// Fixed-size homogeneous array.
    Array(Box<DataType>, usize),
    /// Named-field record (struct).
    Record(Vec<(String, DataType)>),
    /// Closed set of symbolic alternatives, encoded as a `u8` ordinal.
    Enum(Vec<String>),
}

impl DataType {
    /// Convenience constructor for [`DataType::Array`].
    pub fn array(elem: DataType, len: usize) -> DataType {
        DataType::Array(Box::new(elem), len)
    }

    /// Convenience constructor for [`DataType::Record`].
    pub fn record<I, S>(fields: I) -> DataType
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        DataType::Record(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Convenience constructor for [`DataType::Enum`].
    pub fn enumeration<I, S>(variants: I) -> DataType
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DataType::Enum(variants.into_iter().map(Into::into).collect())
    }

    /// Minimum and maximum encoded size in bytes.
    ///
    /// Variable-size leaves ([`DataType::Str`], [`DataType::Blob`]) report a
    /// 4-byte minimum (empty, just the prefix) and a conventional 1 KiB
    /// maximum used for worst-case bandwidth estimation in the verification
    /// engine.
    pub fn encoded_size_bounds(&self) -> (usize, usize) {
        match self {
            DataType::Bool | DataType::U8 | DataType::Enum(_) => (1, 1),
            DataType::U16 => (2, 2),
            DataType::U32 => (4, 4),
            DataType::U64 | DataType::I64 | DataType::F64 => (8, 8),
            DataType::Str | DataType::Blob => (4, 4 + 1024),
            DataType::Array(elem, len) => {
                let (lo, hi) = elem.encoded_size_bounds();
                (lo * len, hi * len)
            }
            DataType::Record(fields) => fields.iter().fold((0, 0), |(alo, ahi), (_, t)| {
                let (lo, hi) = t.encoded_size_bounds();
                (alo + lo, ahi + hi)
            }),
        }
    }

    /// A neutral default value conforming to this type.
    pub fn default_value(&self) -> Value {
        match self {
            DataType::Bool => Value::Bool(false),
            DataType::U8 => Value::U8(0),
            DataType::U16 => Value::U16(0),
            DataType::U32 => Value::U32(0),
            DataType::U64 => Value::U64(0),
            DataType::I64 => Value::I64(0),
            DataType::F64 => Value::F64(0.0),
            DataType::Str => Value::Str(String::new()),
            DataType::Blob => Value::Blob(Vec::new()),
            DataType::Array(elem, len) => Value::Array(
                std::iter::repeat_with(|| elem.default_value())
                    .take(*len)
                    .collect(),
            ),
            DataType::Record(fields) => Value::Record(
                fields
                    .iter()
                    .map(|(n, t)| (n.clone(), t.default_value()))
                    .collect(),
            ),
            DataType::Enum(_) => Value::EnumOrdinal(0),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::U8 => write!(f, "u8"),
            DataType::U16 => write!(f, "u16"),
            DataType::U32 => write!(f, "u32"),
            DataType::U64 => write!(f, "u64"),
            DataType::I64 => write!(f, "i64"),
            DataType::F64 => write!(f, "f64"),
            DataType::Str => write!(f, "string"),
            DataType::Blob => write!(f, "blob"),
            DataType::Array(elem, len) => write!(f, "[{elem}; {len}]"),
            DataType::Record(fields) => {
                write!(f, "{{")?;
                for (i, (name, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {ty}")?;
                }
                write!(f, "}}")
            }
            DataType::Enum(variants) => {
                write!(f, "enum(")?;
                for (i, v) in variants.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A runtime value of some [`DataType`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Unsigned 8-bit.
    U8(u8),
    /// Unsigned 16-bit.
    U16(u16),
    /// Unsigned 32-bit.
    U32(u32),
    /// Unsigned 64-bit.
    U64(u64),
    /// Signed 64-bit.
    I64(i64),
    /// Double-precision float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes.
    Blob(Vec<u8>),
    /// Fixed-size array.
    Array(Vec<Value>),
    /// Named-field record.
    Record(Vec<(String, Value)>),
    /// Ordinal into an enum's variant list.
    EnumOrdinal(u8),
}

impl Value {
    /// Convenience constructor for [`Value::Array`].
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Convenience constructor for [`Value::Record`].
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// Structural conformance check against a schema.
    pub fn conforms_to(&self, ty: &DataType) -> bool {
        match (self, ty) {
            (Value::Bool(_), DataType::Bool)
            | (Value::U8(_), DataType::U8)
            | (Value::U16(_), DataType::U16)
            | (Value::U32(_), DataType::U32)
            | (Value::U64(_), DataType::U64)
            | (Value::I64(_), DataType::I64)
            | (Value::F64(_), DataType::F64)
            | (Value::Str(_), DataType::Str)
            | (Value::Blob(_), DataType::Blob) => true,
            (Value::Array(items), DataType::Array(elem, len)) => {
                items.len() == *len && items.iter().all(|v| v.conforms_to(elem))
            }
            (Value::Record(vals), DataType::Record(fields)) => {
                vals.len() == fields.len()
                    && vals
                        .iter()
                        .zip(fields)
                        .all(|((vn, v), (fn_, ft))| vn == fn_ && v.conforms_to(ft))
            }
            (Value::EnumOrdinal(ord), DataType::Enum(variants)) => (*ord as usize) < variants.len(),
            _ => false,
        }
    }

    /// Encodes this value to its canonical big-endian wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_vec()
    }

    /// Appends the canonical encoding of this value to `w`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Value::Bool(b) => w.put_u8(u8::from(*b)),
            Value::U8(v) => w.put_u8(*v),
            Value::U16(v) => w.put_u16(*v),
            Value::U32(v) => w.put_u32(*v),
            Value::U64(v) => w.put_u64(*v),
            Value::I64(v) => w.put_i64(*v),
            Value::F64(v) => w.put_f64(*v),
            Value::Str(s) => w.put_string(s),
            Value::Blob(b) => w.put_len_prefixed(b),
            Value::Array(items) => {
                for item in items {
                    item.encode_into(w);
                }
            }
            Value::Record(fields) => {
                for (_, v) in fields {
                    v.encode_into(w);
                }
            }
            Value::EnumOrdinal(ord) => w.put_u8(*ord),
        }
    }

    /// Decodes a value of schema `ty` from `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the input is truncated, has trailing
    /// bytes, or contains an out-of-range enum ordinal.
    pub fn decode(input: &[u8], ty: &DataType) -> Result<Value, CodecError> {
        let mut r = ByteReader::new(input);
        let v = Self::decode_from(&mut r, ty)?;
        if !r.is_empty() {
            return Err(CodecError::LengthOutOfRange {
                len: input.len(),
                max: r.position(),
            });
        }
        Ok(v)
    }

    /// Decodes a value of schema `ty` from the reader, leaving any trailing
    /// bytes unconsumed.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or invalid input.
    pub fn decode_from(r: &mut ByteReader<'_>, ty: &DataType) -> Result<Value, CodecError> {
        Ok(match ty {
            DataType::Bool => Value::Bool(r.take_u8()? != 0),
            DataType::U8 => Value::U8(r.take_u8()?),
            DataType::U16 => Value::U16(r.take_u16()?),
            DataType::U32 => Value::U32(r.take_u32()?),
            DataType::U64 => Value::U64(r.take_u64()?),
            DataType::I64 => Value::I64(r.take_i64()?),
            DataType::F64 => Value::F64(r.take_f64()?),
            DataType::Str => Value::Str(r.take_string()?),
            DataType::Blob => Value::Blob(r.take_len_prefixed(1 << 24)?.to_vec()),
            DataType::Array(elem, len) => {
                let mut items = Vec::with_capacity(*len);
                for _ in 0..*len {
                    items.push(Self::decode_from(r, elem)?);
                }
                Value::Array(items)
            }
            DataType::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for (name, ft) in fields {
                    vals.push((name.clone(), Self::decode_from(r, ft)?));
                }
                Value::Record(vals)
            }
            DataType::Enum(variants) => {
                let ord = r.take_u8()?;
                if (ord as usize) >= variants.len() {
                    return Err(CodecError::InvalidValue {
                        field: "enum ordinal",
                        value: u64::from(ord),
                    });
                }
                Value::EnumOrdinal(ord)
            }
        })
    }

    /// Looks up a field of a record value by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interprets this value as `f64` if it is any numeric leaf.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U8(v) => Some(f64::from(*v)),
            Value::U16(v) => Some(f64::from(*v)),
            Value::U32(v) => Some(f64::from(*v)),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_type() -> DataType {
        DataType::record([
            ("id", DataType::U16),
            ("mode", DataType::enumeration(["off", "eco", "sport"])),
            ("samples", DataType::array(DataType::F64, 3)),
            ("label", DataType::Str),
        ])
    }

    fn sensor_value() -> Value {
        Value::record([
            ("id", Value::U16(42)),
            ("mode", Value::EnumOrdinal(2)),
            (
                "samples",
                Value::array([Value::F64(1.0), Value::F64(-2.5), Value::F64(0.0)]),
            ),
            ("label", Value::Str("front-left".into())),
        ])
    }

    #[test]
    fn conformance_accepts_matching_value() {
        assert!(sensor_value().conforms_to(&sensor_type()));
    }

    #[test]
    fn conformance_rejects_wrong_arity_and_types() {
        let ty = sensor_type();
        assert!(!Value::U8(1).conforms_to(&ty));
        let mut v = sensor_value();
        if let Value::Record(fields) = &mut v {
            fields.pop();
        }
        assert!(!v.conforms_to(&ty));
        assert!(!Value::EnumOrdinal(3).conforms_to(&DataType::enumeration(["a", "b"])));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ty = sensor_type();
        let v = sensor_value();
        let bytes = v.encode();
        assert_eq!(Value::decode(&bytes, &ty).unwrap(), v);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = Value::U8(1).encode();
        bytes.push(0);
        assert!(Value::decode(&bytes, &DataType::U8).is_err());
    }

    #[test]
    fn decode_rejects_bad_enum_ordinal() {
        let bytes = vec![9u8];
        let err = Value::decode(&bytes, &DataType::enumeration(["x"])).unwrap_err();
        assert!(matches!(err, CodecError::InvalidValue { .. }));
    }

    #[test]
    fn size_bounds_compose() {
        let ty = sensor_type();
        let (lo, hi) = ty.encoded_size_bounds();
        // u16 + enum + 3*f64 + string prefix = 2 + 1 + 24 + 4 = 31 minimum.
        assert_eq!(lo, 31);
        assert!(hi >= lo);
        let v = sensor_type().default_value();
        let n = v.encode().len();
        assert!(n >= lo && n <= hi);
    }

    #[test]
    fn default_value_conforms() {
        let ty = sensor_type();
        assert!(ty.default_value().conforms_to(&ty));
    }

    #[test]
    fn field_lookup_and_numeric_view() {
        let v = sensor_value();
        assert_eq!(v.field("id").and_then(Value::as_f64), Some(42.0));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn display_is_nonempty_and_structured() {
        let s = sensor_type().to_string();
        assert!(s.contains("samples: [f64; 3]"));
        assert!(s.contains("enum(off|eco|sport)"));
    }
}
