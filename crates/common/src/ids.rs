//! Strongly typed identifiers.
//!
//! Every entity class in the workspace gets its own newtype identifier so the
//! compiler keeps ECUs, apps, services, tasks and buses apart (C-NEWTYPE).
//! All identifiers are small `Copy` integers with `Display` in a short,
//! greppable format (`ecu3`, `app17`, ...).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifier of a physical Electronic Control Unit.
    EcuId, "ecu", u16
);
id_type!(
    /// Identifier of an application (the smallest unit of addition/update,
    /// §1.1 of the paper).
    AppId, "app", u32
);
id_type!(
    /// Identifier of a running application instance. One app may have several
    /// instances at once: during a staged update (§3.2) or for redundancy
    /// (§3.3).
    InstanceId, "inst", u64
);
id_type!(
    /// Identifier of a middleware service.
    ServiceId, "svc", u16
);
id_type!(
    /// Identifier of a method within a service (RPC paradigm).
    MethodId, "mth", u16
);
id_type!(
    /// Identifier of an event group within a service (Event paradigm).
    EventGroupId, "evg", u16
);
id_type!(
    /// Identifier of a schedulable task.
    TaskId, "task", u32
);
id_type!(
    /// Identifier of a communication bus or network segment.
    BusId, "bus", u16
);
id_type!(
    /// Identifier of a point-to-point link or switch port.
    LinkId, "link", u16
);
id_type!(
    /// Identifier of a message/frame flow on a bus.
    MessageId, "msg", u32
);
id_type!(
    /// Identifier of a dynamic-platform node (one per participating ECU).
    NodeId, "node", u16
);
id_type!(
    /// Identifier of a vehicle in a fleet (update campaigns, §3.2).
    VehicleId, "veh", u32
);
id_type!(
    /// Identifier of a fleet-simulation shard (one sim kernel per shard).
    ShardId, "shard", u16
);

/// A combined service + instance address, as used by service discovery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceInstance {
    /// The service type offered.
    pub service: ServiceId,
    /// Discriminates multiple providers of the same service type.
    pub instance: u16,
}

impl ServiceInstance {
    /// Creates a service-instance address.
    pub const fn new(service: ServiceId, instance: u16) -> Self {
        ServiceInstance { service, instance }
    }
}

impl fmt::Display for ServiceInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.service, self.instance)
    }
}

/// Monotonic allocator for identifier types; keeps experiment setup code free
/// of magic numbers.
///
/// # Examples
///
/// ```
/// use dynplat_common::ids::{AppId, IdAllocator};
///
/// let mut ids = IdAllocator::<AppId>::new();
/// assert_eq!(ids.next_id(), AppId(0));
/// assert_eq!(ids.next_id(), AppId(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct IdAllocator<T> {
    next: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: From<u32>> IdAllocator<T> {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Returns the next identifier.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` identifiers are allocated.
    pub fn next_id(&mut self) -> T {
        let id = u32::try_from(self.next).expect("identifier space exhausted");
        self.next += 1;
        T::from(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(EcuId(3).to_string(), "ecu3");
        assert_eq!(AppId(17).to_string(), "app17");
        assert_eq!(ServiceInstance::new(ServiceId(5), 1).to_string(), "svc5.1");
    }

    #[test]
    fn newtypes_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TaskId(1));
        set.insert(TaskId(1));
        set.insert(TaskId(2));
        assert_eq!(set.len(), 2);
        assert!(TaskId(1) < TaskId(2));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut ids = IdAllocator::<MessageId>::new();
        let a = ids.next_id();
        let b = ids.next_id();
        assert!(a < b);
    }

    #[test]
    fn raw_roundtrip() {
        assert_eq!(EcuId::from(9).raw(), 9);
        assert_eq!(InstanceId(42).raw(), 42);
    }
}
