//! # dynplat — Dynamic Platforms for Uncertainty Management in Future Automotive E/E Architectures
//!
//! A from-scratch Rust implementation of the system described in
//! Mundhenk et al., *"INVITED: Dynamic Platforms for Uncertainty Management
//! in Future Automotive E/E Architectures"*, DAC 2017 — the dynamic
//! platform that hosts deterministic and non-deterministic automotive
//! applications side by side with freedom of interference, staged runtime
//! updates, fail-operational redundancy, runtime monitoring, and a secured
//! service-oriented communication layer; plus every substrate that system
//! needs: discrete-event simulation, ECU/bus hardware models, CAN /
//! FlexRay / Ethernet / TSN media, an RTOS scheduling toolbox, a SOME/IP-
//! style middleware, the modeling DSLs with a verification engine, a
//! security stack, design-space exploration and XiL testing.
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`common`] | `dynplat-common` | ids, time, ASIL, typed values |
//! | [`sim`] | `dynplat-sim` | discrete-event kernel, uncertainty models |
//! | [`hw`] | `dynplat-hw` | ECU & topology models |
//! | [`net`] | `dynplat-net` | CAN / FlexRay / Ethernet / TSN |
//! | [`sched`] | `dynplat-sched` | RTA, EDF, TT synthesis, servers, admission |
//! | [`comm`] | `dynplat-comm` | SOME/IP-style middleware & fabric |
//! | [`faults`] | `dynplat-faults` | seed-driven fault injection & chaos fabric |
//! | [`fleet`] | `dynplat-fleet` | sharded fleet engine, staged OTA campaigns |
//! | [`model`] | `dynplat-model` | DSLs, verification engine, generators |
//! | [`security`] | `dynplat-security` | packages, update master, authn/authz |
//! | [`obs`] | `dynplat-obs` | metrics registry, tracing spans, snapshots |
//! | [`monitor`] | `dynplat-monitor` | runtime monitoring, fault recording |
//! | [`core`] | `dynplat-core` | **the dynamic platform** |
//! | [`dse`] | `dynplat-dse` | design-space exploration |
//! | [`xil`] | `dynplat-xil` | MiL/SiL/HiL testing |
//!
//! # Quickstart
//!
//! ```
//! use dynplat::core::{DynamicPlatform, LifecycleState};
//! use dynplat::common::{AppId, EcuId};
//! use dynplat::common::time::SimTime;
//! use dynplat::hw::ecu::{EcuClass, EcuSpec};
//! use dynplat::security::package::{KeyRegistry, SignedPackage, UpdatePackage, Version};
//! use dynplat::security::sign::KeyPair;
//!
//! # fn main() {
//! // Trust an OEM signing authority and build a one-ECU platform.
//! let authority = KeyPair::from_seed(b"oem release key");
//! let mut registry = KeyRegistry::new();
//! registry.trust(authority.public());
//! let mut platform = DynamicPlatform::new(registry);
//! platform.add_node(EcuSpec::of_class(EcuId(1), "zone", EcuClass::Domain));
//!
//! // Ship a signed application package and deploy it.
//! let model = dynplat::model::ir::AppModel {
//!     id: AppId(1),
//!     name: "cruise".into(),
//!     kind: dynplat::common::AppKind::Deterministic,
//!     asil: dynplat::common::Asil::C,
//!     provides: vec![],
//!     consumes: vec![],
//!     period: dynplat::common::time::SimDuration::from_millis(10),
//!     work_mi: 2.0,
//!     memory_kib: 256,
//!     needs_gpu: false,
//! };
//! let package = UpdatePackage::new(AppId(1), Version::new(1, 0, 0), 1, vec![0xAB]);
//! let signed = SignedPackage::create(&package, &authority);
//! let instance = platform.deploy(SimTime::ZERO, EcuId(1), model, &signed).unwrap();
//! let node = platform.node(EcuId(1)).unwrap();
//! assert_eq!(node.instance(instance).unwrap().state, LifecycleState::Running);
//! # }
//! ```

#![forbid(unsafe_code)]

pub use dynplat_comm as comm;
pub use dynplat_common as common;
pub use dynplat_core as core;
pub use dynplat_dse as dse;
pub use dynplat_faults as faults;
pub use dynplat_fleet as fleet;
pub use dynplat_hw as hw;
pub use dynplat_model as model;
pub use dynplat_monitor as monitor;
pub use dynplat_net as net;
pub use dynplat_obs as obs;
pub use dynplat_sched as sched;
pub use dynplat_security as security;
pub use dynplat_sim as sim;
pub use dynplat_xil as xil;
