/root/repo/target/release/deps/ablation_dse-502a37c546792bde.d: crates/bench/src/bin/ablation_dse.rs

/root/repo/target/release/deps/ablation_dse-502a37c546792bde: crates/bench/src/bin/ablation_dse.rs

crates/bench/src/bin/ablation_dse.rs:
