/root/repo/target/release/deps/e9_authorization-89b6b7ad2d3bbbf7.d: crates/bench/src/bin/e9_authorization.rs

/root/repo/target/release/deps/e9_authorization-89b6b7ad2d3bbbf7: crates/bench/src/bin/e9_authorization.rs

crates/bench/src/bin/e9_authorization.rs:
