/root/repo/target/release/deps/dynplat_core-75de07a6469fb17a.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

/root/repo/target/release/deps/libdynplat_core-75de07a6469fb17a.rlib: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

/root/repo/target/release/deps/libdynplat_core-75de07a6469fb17a.rmeta: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/campaign.rs:
crates/core/src/degradation.rs:
crates/core/src/node.rs:
crates/core/src/platform.rs:
crates/core/src/process.rs:
crates/core/src/redundancy.rs:
crates/core/src/sync.rs:
crates/core/src/update.rs:
