/root/repo/target/release/deps/e5_update_safety-b5656721b62f7062.d: crates/bench/src/bin/e5_update_safety.rs

/root/repo/target/release/deps/e5_update_safety-b5656721b62f7062: crates/bench/src/bin/e5_update_safety.rs

crates/bench/src/bin/e5_update_safety.rs:
