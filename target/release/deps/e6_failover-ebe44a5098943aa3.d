/root/repo/target/release/deps/e6_failover-ebe44a5098943aa3.d: crates/bench/src/bin/e6_failover.rs

/root/repo/target/release/deps/e6_failover-ebe44a5098943aa3: crates/bench/src/bin/e6_failover.rs

crates/bench/src/bin/e6_failover.rs:
