/root/repo/target/release/deps/dynplat_common-3fb26dc2bd03e0d3.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/release/deps/libdynplat_common-3fb26dc2bd03e0d3.rlib: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/release/deps/libdynplat_common-3fb26dc2bd03e0d3.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/criticality.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
