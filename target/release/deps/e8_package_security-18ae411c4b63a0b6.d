/root/repo/target/release/deps/e8_package_security-18ae411c4b63a0b6.d: crates/bench/src/bin/e8_package_security.rs

/root/repo/target/release/deps/e8_package_security-18ae411c4b63a0b6: crates/bench/src/bin/e8_package_security.rs

crates/bench/src/bin/e8_package_security.rs:
