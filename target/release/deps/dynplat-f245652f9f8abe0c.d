/root/repo/target/release/deps/dynplat-f245652f9f8abe0c.d: src/lib.rs

/root/repo/target/release/deps/libdynplat-f245652f9f8abe0c.rlib: src/lib.rs

/root/repo/target/release/deps/libdynplat-f245652f9f8abe0c.rmeta: src/lib.rs

src/lib.rs:
