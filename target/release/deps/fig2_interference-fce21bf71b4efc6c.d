/root/repo/target/release/deps/fig2_interference-fce21bf71b4efc6c.d: crates/bench/src/bin/fig2_interference.rs

/root/repo/target/release/deps/fig2_interference-fce21bf71b4efc6c: crates/bench/src/bin/fig2_interference.rs

crates/bench/src/bin/fig2_interference.rs:
