/root/repo/target/release/deps/dynplat_bench-0ef6d8357ec16d62.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/release/deps/libdynplat_bench-0ef6d8357ec16d62.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/release/deps/libdynplat_bench-0ef6d8357ec16d62.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
