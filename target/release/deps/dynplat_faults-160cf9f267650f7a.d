/root/repo/target/release/deps/dynplat_faults-160cf9f267650f7a.d: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

/root/repo/target/release/deps/libdynplat_faults-160cf9f267650f7a.rlib: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

/root/repo/target/release/deps/libdynplat_faults-160cf9f267650f7a.rmeta: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

crates/faults/src/lib.rs:
crates/faults/src/inject.rs:
crates/faults/src/plan.rs:
