/root/repo/target/release/deps/e7_monitoring-f6ff4298225a44d8.d: crates/bench/src/bin/e7_monitoring.rs

/root/repo/target/release/deps/e7_monitoring-f6ff4298225a44d8: crates/bench/src/bin/e7_monitoring.rs

crates/bench/src/bin/e7_monitoring.rs:
