/root/repo/target/release/deps/dynplat_sim-7d3a1281eb20d313.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdynplat_sim-7d3a1281eb20d313.rlib: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdynplat_sim-7d3a1281eb20d313.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/trace.rs:
