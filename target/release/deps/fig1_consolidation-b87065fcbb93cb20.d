/root/repo/target/release/deps/fig1_consolidation-b87065fcbb93cb20.d: crates/bench/src/bin/fig1_consolidation.rs

/root/repo/target/release/deps/fig1_consolidation-b87065fcbb93cb20: crates/bench/src/bin/fig1_consolidation.rs

crates/bench/src/bin/fig1_consolidation.rs:
