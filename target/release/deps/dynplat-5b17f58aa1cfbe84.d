/root/repo/target/release/deps/dynplat-5b17f58aa1cfbe84.d: src/lib.rs

/root/repo/target/release/deps/libdynplat-5b17f58aa1cfbe84.rlib: src/lib.rs

/root/repo/target/release/deps/libdynplat-5b17f58aa1cfbe84.rmeta: src/lib.rs

src/lib.rs:
