/root/repo/target/release/deps/fig3_paradigms-ddebbf60d33b3f17.d: crates/bench/src/bin/fig3_paradigms.rs

/root/repo/target/release/deps/fig3_paradigms-ddebbf60d33b3f17: crates/bench/src/bin/fig3_paradigms.rs

crates/bench/src/bin/fig3_paradigms.rs:
