/root/repo/target/release/deps/dynplat_hw-44b5038ee057eceb.d: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libdynplat_hw-44b5038ee057eceb.rlib: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

/root/repo/target/release/deps/libdynplat_hw-44b5038ee057eceb.rmeta: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/ecu.rs:
crates/hw/src/reference.rs:
crates/hw/src/topology.rs:
