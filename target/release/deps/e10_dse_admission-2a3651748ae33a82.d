/root/repo/target/release/deps/e10_dse_admission-2a3651748ae33a82.d: crates/bench/src/bin/e10_dse_admission.rs

/root/repo/target/release/deps/e10_dse_admission-2a3651748ae33a82: crates/bench/src/bin/e10_dse_admission.rs

crates/bench/src/bin/e10_dse_admission.rs:
