/root/repo/target/release/deps/dynplat_xil-d992f940453f2a45.d: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

/root/repo/target/release/deps/libdynplat_xil-d992f940453f2a45.rlib: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

/root/repo/target/release/deps/libdynplat_xil-d992f940453f2a45.rmeta: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

crates/xil/src/lib.rs:
crates/xil/src/control.rs:
crates/xil/src/harness.rs:
crates/xil/src/level.rs:
