/root/repo/target/release/deps/e11_xil-2d21c9c3bcad6c86.d: crates/bench/src/bin/e11_xil.rs

/root/repo/target/release/deps/e11_xil-2d21c9c3bcad6c86: crates/bench/src/bin/e11_xil.rs

crates/bench/src/bin/e11_xil.rs:
