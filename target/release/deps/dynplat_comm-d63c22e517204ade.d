/root/repo/target/release/deps/dynplat_comm-d63c22e517204ade.d: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs

/root/repo/target/release/deps/libdynplat_comm-d63c22e517204ade.rlib: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs

/root/repo/target/release/deps/libdynplat_comm-d63c22e517204ade.rmeta: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/endpoint.rs:
crates/comm/src/fabric.rs:
crates/comm/src/paradigm.rs:
crates/comm/src/qos.rs:
crates/comm/src/retry.rs:
crates/comm/src/sd.rs:
crates/comm/src/wire.rs:
