/root/repo/target/release/deps/e4_hw_access-6bf6bbfaa2fcb37c.d: crates/bench/src/bin/e4_hw_access.rs

/root/repo/target/release/deps/e4_hw_access-6bf6bbfaa2fcb37c: crates/bench/src/bin/e4_hw_access.rs

crates/bench/src/bin/e4_hw_access.rs:
