/root/repo/target/release/deps/e12_chaos-ee67d020accb4c5a.d: crates/bench/src/bin/e12_chaos.rs

/root/repo/target/release/deps/e12_chaos-ee67d020accb4c5a: crates/bench/src/bin/e12_chaos.rs

crates/bench/src/bin/e12_chaos.rs:
