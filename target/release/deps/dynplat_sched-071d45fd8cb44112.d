/root/repo/target/release/deps/dynplat_sched-071d45fd8cb44112.d: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

/root/repo/target/release/deps/libdynplat_sched-071d45fd8cb44112.rlib: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

/root/repo/target/release/deps/libdynplat_sched-071d45fd8cb44112.rmeta: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

crates/sched/src/lib.rs:
crates/sched/src/admission.rs:
crates/sched/src/edf.rs:
crates/sched/src/manage.rs:
crates/sched/src/rta.rs:
crates/sched/src/sensitivity.rs:
crates/sched/src/server.rs:
crates/sched/src/simulate.rs:
crates/sched/src/task.rs:
crates/sched/src/tt.rs:
