/root/repo/target/release/deps/dynplat_net-f2843f1815d6029d.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

/root/repo/target/release/deps/libdynplat_net-f2843f1815d6029d.rlib: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

/root/repo/target/release/deps/libdynplat_net-f2843f1815d6029d.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/can.rs:
crates/net/src/ethernet.rs:
crates/net/src/flexray.rs:
crates/net/src/tsn.rs:
