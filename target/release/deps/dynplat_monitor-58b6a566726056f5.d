/root/repo/target/release/deps/dynplat_monitor-58b6a566726056f5.d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

/root/repo/target/release/deps/libdynplat_monitor-58b6a566726056f5.rlib: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

/root/repo/target/release/deps/libdynplat_monitor-58b6a566726056f5.rmeta: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

crates/monitor/src/lib.rs:
crates/monitor/src/anomaly.rs:
crates/monitor/src/fault.rs:
crates/monitor/src/report.rs:
crates/monitor/src/task.rs:
