/root/repo/target/release/deps/dynplat_model-3f5f8f048d2b2f9b.d: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

/root/repo/target/release/deps/libdynplat_model-3f5f8f048d2b2f9b.rlib: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

/root/repo/target/release/deps/libdynplat_model-3f5f8f048d2b2f9b.rmeta: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

crates/model/src/lib.rs:
crates/model/src/dsl.rs:
crates/model/src/generate.rs:
crates/model/src/ir.rs:
crates/model/src/verify.rs:
