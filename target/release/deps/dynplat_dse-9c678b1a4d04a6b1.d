/root/repo/target/release/deps/dynplat_dse-9c678b1a4d04a6b1.d: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

/root/repo/target/release/deps/libdynplat_dse-9c678b1a4d04a6b1.rlib: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

/root/repo/target/release/deps/libdynplat_dse-9c678b1a4d04a6b1.rmeta: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

crates/dse/src/lib.rs:
crates/dse/src/consolidate.rs:
crates/dse/src/objective.rs:
crates/dse/src/pareto.rs:
crates/dse/src/search.rs:
