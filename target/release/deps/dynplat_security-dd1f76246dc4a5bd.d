/root/repo/target/release/deps/dynplat_security-dd1f76246dc4a5bd.d: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

/root/repo/target/release/deps/libdynplat_security-dd1f76246dc4a5bd.rlib: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

/root/repo/target/release/deps/libdynplat_security-dd1f76246dc4a5bd.rmeta: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

crates/security/src/lib.rs:
crates/security/src/authn.rs:
crates/security/src/authz.rs:
crates/security/src/master.rs:
crates/security/src/package.rs:
crates/security/src/sha256.rs:
crates/security/src/sign.rs:
