/root/repo/target/debug/examples/ota_update-9489468321c31a5b.d: examples/ota_update.rs

/root/repo/target/debug/examples/ota_update-9489468321c31a5b: examples/ota_update.rs

examples/ota_update.rs:
