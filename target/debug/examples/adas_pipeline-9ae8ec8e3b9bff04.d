/root/repo/target/debug/examples/adas_pipeline-9ae8ec8e3b9bff04.d: examples/adas_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libadas_pipeline-9ae8ec8e3b9bff04.rmeta: examples/adas_pipeline.rs Cargo.toml

examples/adas_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
