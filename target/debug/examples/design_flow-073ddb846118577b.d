/root/repo/target/debug/examples/design_flow-073ddb846118577b.d: examples/design_flow.rs

/root/repo/target/debug/examples/design_flow-073ddb846118577b: examples/design_flow.rs

examples/design_flow.rs:
