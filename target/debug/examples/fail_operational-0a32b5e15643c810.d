/root/repo/target/debug/examples/fail_operational-0a32b5e15643c810.d: examples/fail_operational.rs

/root/repo/target/debug/examples/fail_operational-0a32b5e15643c810: examples/fail_operational.rs

examples/fail_operational.rs:
