/root/repo/target/debug/examples/design_flow-a4d42220eee0da64.d: examples/design_flow.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_flow-a4d42220eee0da64.rmeta: examples/design_flow.rs Cargo.toml

examples/design_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
