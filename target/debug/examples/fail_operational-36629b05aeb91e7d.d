/root/repo/target/debug/examples/fail_operational-36629b05aeb91e7d.d: examples/fail_operational.rs Cargo.toml

/root/repo/target/debug/examples/libfail_operational-36629b05aeb91e7d.rmeta: examples/fail_operational.rs Cargo.toml

examples/fail_operational.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
