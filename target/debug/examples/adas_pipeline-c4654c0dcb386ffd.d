/root/repo/target/debug/examples/adas_pipeline-c4654c0dcb386ffd.d: examples/adas_pipeline.rs

/root/repo/target/debug/examples/adas_pipeline-c4654c0dcb386ffd: examples/adas_pipeline.rs

examples/adas_pipeline.rs:
