/root/repo/target/debug/examples/quickstart-f8b9122ef1099e06.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f8b9122ef1099e06.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
