/root/repo/target/debug/examples/ota_update-01c89e3700ef84dd.d: examples/ota_update.rs Cargo.toml

/root/repo/target/debug/examples/libota_update-01c89e3700ef84dd.rmeta: examples/ota_update.rs Cargo.toml

examples/ota_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
