/root/repo/target/debug/examples/fail_operational-ca70f51589c6409b.d: examples/fail_operational.rs

/root/repo/target/debug/examples/fail_operational-ca70f51589c6409b: examples/fail_operational.rs

examples/fail_operational.rs:
