/root/repo/target/debug/examples/fleet_operations-b915cccd65c7ef18.d: examples/fleet_operations.rs

/root/repo/target/debug/examples/fleet_operations-b915cccd65c7ef18: examples/fleet_operations.rs

examples/fleet_operations.rs:
