/root/repo/target/debug/examples/design_flow-f20d117abc0946d0.d: examples/design_flow.rs

/root/repo/target/debug/examples/design_flow-f20d117abc0946d0: examples/design_flow.rs

examples/design_flow.rs:
