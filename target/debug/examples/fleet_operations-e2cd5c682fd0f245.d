/root/repo/target/debug/examples/fleet_operations-e2cd5c682fd0f245.d: examples/fleet_operations.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_operations-e2cd5c682fd0f245.rmeta: examples/fleet_operations.rs Cargo.toml

examples/fleet_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
