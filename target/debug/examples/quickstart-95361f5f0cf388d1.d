/root/repo/target/debug/examples/quickstart-95361f5f0cf388d1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-95361f5f0cf388d1: examples/quickstart.rs

examples/quickstart.rs:
