/root/repo/target/debug/examples/quickstart-e38ecd338493c659.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e38ecd338493c659: examples/quickstart.rs

examples/quickstart.rs:
