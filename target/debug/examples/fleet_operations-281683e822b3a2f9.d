/root/repo/target/debug/examples/fleet_operations-281683e822b3a2f9.d: examples/fleet_operations.rs

/root/repo/target/debug/examples/fleet_operations-281683e822b3a2f9: examples/fleet_operations.rs

examples/fleet_operations.rs:
