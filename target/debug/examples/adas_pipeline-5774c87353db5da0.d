/root/repo/target/debug/examples/adas_pipeline-5774c87353db5da0.d: examples/adas_pipeline.rs

/root/repo/target/debug/examples/adas_pipeline-5774c87353db5da0: examples/adas_pipeline.rs

examples/adas_pipeline.rs:
