/root/repo/target/debug/examples/ota_update-0bec478c16a3829c.d: examples/ota_update.rs

/root/repo/target/debug/examples/ota_update-0bec478c16a3829c: examples/ota_update.rs

examples/ota_update.rs:
