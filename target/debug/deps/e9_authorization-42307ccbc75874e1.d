/root/repo/target/debug/deps/e9_authorization-42307ccbc75874e1.d: crates/bench/src/bin/e9_authorization.rs

/root/repo/target/debug/deps/e9_authorization-42307ccbc75874e1: crates/bench/src/bin/e9_authorization.rs

crates/bench/src/bin/e9_authorization.rs:
