/root/repo/target/debug/deps/e4_hw_access-f7cbf98a03606420.d: crates/bench/src/bin/e4_hw_access.rs

/root/repo/target/debug/deps/e4_hw_access-f7cbf98a03606420: crates/bench/src/bin/e4_hw_access.rs

crates/bench/src/bin/e4_hw_access.rs:
