/root/repo/target/debug/deps/fig1_consolidation-eb9a8f65630849d6.d: crates/bench/src/bin/fig1_consolidation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_consolidation-eb9a8f65630849d6.rmeta: crates/bench/src/bin/fig1_consolidation.rs Cargo.toml

crates/bench/src/bin/fig1_consolidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
