/root/repo/target/debug/deps/dynplat_monitor-f444830538171f31.d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_monitor-f444830538171f31.rmeta: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs Cargo.toml

crates/monitor/src/lib.rs:
crates/monitor/src/anomaly.rs:
crates/monitor/src/fault.rs:
crates/monitor/src/report.rs:
crates/monitor/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
