/root/repo/target/debug/deps/integration_platform-4ac88f7241de24f3.d: tests/integration_platform.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_platform-4ac88f7241de24f3.rmeta: tests/integration_platform.rs Cargo.toml

tests/integration_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
