/root/repo/target/debug/deps/fig3_paradigms-abc27c9496e024a6.d: crates/bench/src/bin/fig3_paradigms.rs

/root/repo/target/debug/deps/fig3_paradigms-abc27c9496e024a6: crates/bench/src/bin/fig3_paradigms.rs

crates/bench/src/bin/fig3_paradigms.rs:
