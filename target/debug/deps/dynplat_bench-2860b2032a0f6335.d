/root/repo/target/debug/deps/dynplat_bench-2860b2032a0f6335.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/libdynplat_bench-2860b2032a0f6335.rlib: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/libdynplat_bench-2860b2032a0f6335.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
