/root/repo/target/debug/deps/dynplat_xil-53a9528d223944fa.d: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_xil-53a9528d223944fa.rmeta: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs Cargo.toml

crates/xil/src/lib.rs:
crates/xil/src/control.rs:
crates/xil/src/harness.rs:
crates/xil/src/level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
