/root/repo/target/debug/deps/e8_package_security-7d15a8deea97094a.d: crates/bench/src/bin/e8_package_security.rs

/root/repo/target/debug/deps/e8_package_security-7d15a8deea97094a: crates/bench/src/bin/e8_package_security.rs

crates/bench/src/bin/e8_package_security.rs:
