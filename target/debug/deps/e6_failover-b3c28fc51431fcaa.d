/root/repo/target/debug/deps/e6_failover-b3c28fc51431fcaa.d: crates/bench/src/bin/e6_failover.rs Cargo.toml

/root/repo/target/debug/deps/libe6_failover-b3c28fc51431fcaa.rmeta: crates/bench/src/bin/e6_failover.rs Cargo.toml

crates/bench/src/bin/e6_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
