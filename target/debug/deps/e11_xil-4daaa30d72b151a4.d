/root/repo/target/debug/deps/e11_xil-4daaa30d72b151a4.d: crates/bench/src/bin/e11_xil.rs Cargo.toml

/root/repo/target/debug/deps/libe11_xil-4daaa30d72b151a4.rmeta: crates/bench/src/bin/e11_xil.rs Cargo.toml

crates/bench/src/bin/e11_xil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
