/root/repo/target/debug/deps/e4_hw_access-fc31b6cab9cc9b57.d: crates/bench/src/bin/e4_hw_access.rs Cargo.toml

/root/repo/target/debug/deps/libe4_hw_access-fc31b6cab9cc9b57.rmeta: crates/bench/src/bin/e4_hw_access.rs Cargo.toml

crates/bench/src/bin/e4_hw_access.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
