/root/repo/target/debug/deps/e10_dse_admission-89eb97207de7054d.d: crates/bench/src/bin/e10_dse_admission.rs

/root/repo/target/debug/deps/e10_dse_admission-89eb97207de7054d: crates/bench/src/bin/e10_dse_admission.rs

crates/bench/src/bin/e10_dse_admission.rs:
