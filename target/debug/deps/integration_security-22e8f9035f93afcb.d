/root/repo/target/debug/deps/integration_security-22e8f9035f93afcb.d: tests/integration_security.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_security-22e8f9035f93afcb.rmeta: tests/integration_security.rs Cargo.toml

tests/integration_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
