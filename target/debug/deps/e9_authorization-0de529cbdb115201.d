/root/repo/target/debug/deps/e9_authorization-0de529cbdb115201.d: crates/bench/src/bin/e9_authorization.rs

/root/repo/target/debug/deps/e9_authorization-0de529cbdb115201: crates/bench/src/bin/e9_authorization.rs

crates/bench/src/bin/e9_authorization.rs:
