/root/repo/target/debug/deps/integration_network-6a8511dbe31b05eb.d: tests/integration_network.rs

/root/repo/target/debug/deps/integration_network-6a8511dbe31b05eb: tests/integration_network.rs

tests/integration_network.rs:
