/root/repo/target/debug/deps/dynplat_common-b60b8daa4d86b4e4.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libdynplat_common-b60b8daa4d86b4e4.rlib: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libdynplat_common-b60b8daa4d86b4e4.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/criticality.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
