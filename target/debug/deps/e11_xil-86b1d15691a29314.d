/root/repo/target/debug/deps/e11_xil-86b1d15691a29314.d: crates/bench/src/bin/e11_xil.rs

/root/repo/target/debug/deps/e11_xil-86b1d15691a29314: crates/bench/src/bin/e11_xil.rs

crates/bench/src/bin/e11_xil.rs:
