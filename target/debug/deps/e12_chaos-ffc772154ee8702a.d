/root/repo/target/debug/deps/e12_chaos-ffc772154ee8702a.d: crates/bench/src/bin/e12_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libe12_chaos-ffc772154ee8702a.rmeta: crates/bench/src/bin/e12_chaos.rs Cargo.toml

crates/bench/src/bin/e12_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
