/root/repo/target/debug/deps/integration_experiments-9e72dc083c810b72.d: tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-9e72dc083c810b72: tests/integration_experiments.rs

tests/integration_experiments.rs:
