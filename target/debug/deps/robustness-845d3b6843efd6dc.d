/root/repo/target/debug/deps/robustness-845d3b6843efd6dc.d: crates/bench/tests/robustness.rs

/root/repo/target/debug/deps/robustness-845d3b6843efd6dc: crates/bench/tests/robustness.rs

crates/bench/tests/robustness.rs:
