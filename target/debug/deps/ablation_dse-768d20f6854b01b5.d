/root/repo/target/debug/deps/ablation_dse-768d20f6854b01b5.d: crates/bench/src/bin/ablation_dse.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dse-768d20f6854b01b5.rmeta: crates/bench/src/bin/ablation_dse.rs Cargo.toml

crates/bench/src/bin/ablation_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
