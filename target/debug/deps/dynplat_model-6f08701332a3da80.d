/root/repo/target/debug/deps/dynplat_model-6f08701332a3da80.d: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_model-6f08701332a3da80.rmeta: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/dsl.rs:
crates/model/src/generate.rs:
crates/model/src/ir.rs:
crates/model/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
