/root/repo/target/debug/deps/dynplat_core-2d793daabb981c24.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libdynplat_core-2d793daabb981c24.rlib: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

/root/repo/target/debug/deps/libdynplat_core-2d793daabb981c24.rmeta: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/campaign.rs:
crates/core/src/degradation.rs:
crates/core/src/node.rs:
crates/core/src/platform.rs:
crates/core/src/process.rs:
crates/core/src/redundancy.rs:
crates/core/src/sync.rs:
crates/core/src/update.rs:
