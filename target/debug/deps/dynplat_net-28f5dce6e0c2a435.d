/root/repo/target/debug/deps/dynplat_net-28f5dce6e0c2a435.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

/root/repo/target/debug/deps/dynplat_net-28f5dce6e0c2a435: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/can.rs:
crates/net/src/ethernet.rs:
crates/net/src/flexray.rs:
crates/net/src/tsn.rs:
