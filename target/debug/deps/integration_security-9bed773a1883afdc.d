/root/repo/target/debug/deps/integration_security-9bed773a1883afdc.d: tests/integration_security.rs

/root/repo/target/debug/deps/integration_security-9bed773a1883afdc: tests/integration_security.rs

tests/integration_security.rs:
