/root/repo/target/debug/deps/ablation_dse-f6365e11fc58439f.d: crates/bench/src/bin/ablation_dse.rs

/root/repo/target/debug/deps/ablation_dse-f6365e11fc58439f: crates/bench/src/bin/ablation_dse.rs

crates/bench/src/bin/ablation_dse.rs:
