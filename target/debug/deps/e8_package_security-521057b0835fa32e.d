/root/repo/target/debug/deps/e8_package_security-521057b0835fa32e.d: crates/bench/src/bin/e8_package_security.rs

/root/repo/target/debug/deps/e8_package_security-521057b0835fa32e: crates/bench/src/bin/e8_package_security.rs

crates/bench/src/bin/e8_package_security.rs:
