/root/repo/target/debug/deps/e6_failover-3832e776b42bc125.d: crates/bench/src/bin/e6_failover.rs Cargo.toml

/root/repo/target/debug/deps/libe6_failover-3832e776b42bc125.rmeta: crates/bench/src/bin/e6_failover.rs Cargo.toml

crates/bench/src/bin/e6_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
