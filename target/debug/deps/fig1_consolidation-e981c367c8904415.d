/root/repo/target/debug/deps/fig1_consolidation-e981c367c8904415.d: crates/bench/src/bin/fig1_consolidation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_consolidation-e981c367c8904415.rmeta: crates/bench/src/bin/fig1_consolidation.rs Cargo.toml

crates/bench/src/bin/fig1_consolidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
