/root/repo/target/debug/deps/integration_experiments-7cf1575cc2056964.d: tests/integration_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_experiments-7cf1575cc2056964.rmeta: tests/integration_experiments.rs Cargo.toml

tests/integration_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
