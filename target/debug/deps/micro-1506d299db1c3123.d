/root/repo/target/debug/deps/micro-1506d299db1c3123.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-1506d299db1c3123.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
