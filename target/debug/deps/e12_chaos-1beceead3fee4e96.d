/root/repo/target/debug/deps/e12_chaos-1beceead3fee4e96.d: crates/bench/src/bin/e12_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libe12_chaos-1beceead3fee4e96.rmeta: crates/bench/src/bin/e12_chaos.rs Cargo.toml

crates/bench/src/bin/e12_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
