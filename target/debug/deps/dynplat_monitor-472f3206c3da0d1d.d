/root/repo/target/debug/deps/dynplat_monitor-472f3206c3da0d1d.d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

/root/repo/target/debug/deps/dynplat_monitor-472f3206c3da0d1d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

crates/monitor/src/lib.rs:
crates/monitor/src/anomaly.rs:
crates/monitor/src/fault.rs:
crates/monitor/src/report.rs:
crates/monitor/src/task.rs:
