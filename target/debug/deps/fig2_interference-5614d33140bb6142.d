/root/repo/target/debug/deps/fig2_interference-5614d33140bb6142.d: crates/bench/src/bin/fig2_interference.rs

/root/repo/target/debug/deps/fig2_interference-5614d33140bb6142: crates/bench/src/bin/fig2_interference.rs

crates/bench/src/bin/fig2_interference.rs:
