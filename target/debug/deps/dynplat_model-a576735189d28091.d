/root/repo/target/debug/deps/dynplat_model-a576735189d28091.d: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

/root/repo/target/debug/deps/libdynplat_model-a576735189d28091.rlib: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

/root/repo/target/debug/deps/libdynplat_model-a576735189d28091.rmeta: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

crates/model/src/lib.rs:
crates/model/src/dsl.rs:
crates/model/src/generate.rs:
crates/model/src/ir.rs:
crates/model/src/verify.rs:
