/root/repo/target/debug/deps/dynplat_net-41a0201a6cd47caf.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_net-41a0201a6cd47caf.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/can.rs:
crates/net/src/ethernet.rs:
crates/net/src/flexray.rs:
crates/net/src/tsn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
