/root/repo/target/debug/deps/e6_failover-5260661bd27d5e85.d: crates/bench/src/bin/e6_failover.rs

/root/repo/target/debug/deps/e6_failover-5260661bd27d5e85: crates/bench/src/bin/e6_failover.rs

crates/bench/src/bin/e6_failover.rs:
