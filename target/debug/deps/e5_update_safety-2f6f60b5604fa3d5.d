/root/repo/target/debug/deps/e5_update_safety-2f6f60b5604fa3d5.d: crates/bench/src/bin/e5_update_safety.rs

/root/repo/target/debug/deps/e5_update_safety-2f6f60b5604fa3d5: crates/bench/src/bin/e5_update_safety.rs

crates/bench/src/bin/e5_update_safety.rs:
