/root/repo/target/debug/deps/properties-589a294c46b37246.d: tests/properties.rs

/root/repo/target/debug/deps/properties-589a294c46b37246: tests/properties.rs

tests/properties.rs:
