/root/repo/target/debug/deps/e10_dse_admission-0a529168e630bd6c.d: crates/bench/src/bin/e10_dse_admission.rs

/root/repo/target/debug/deps/e10_dse_admission-0a529168e630bd6c: crates/bench/src/bin/e10_dse_admission.rs

crates/bench/src/bin/e10_dse_admission.rs:
