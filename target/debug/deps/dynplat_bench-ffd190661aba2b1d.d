/root/repo/target/debug/deps/dynplat_bench-ffd190661aba2b1d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdynplat_bench-ffd190661aba2b1d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdynplat_bench-ffd190661aba2b1d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
