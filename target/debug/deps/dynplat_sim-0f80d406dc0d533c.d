/root/repo/target/debug/deps/dynplat_sim-0f80d406dc0d533c.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_sim-0f80d406dc0d533c.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
