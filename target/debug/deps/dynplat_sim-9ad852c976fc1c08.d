/root/repo/target/debug/deps/dynplat_sim-9ad852c976fc1c08.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_sim-9ad852c976fc1c08.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
