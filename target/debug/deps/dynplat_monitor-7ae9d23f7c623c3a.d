/root/repo/target/debug/deps/dynplat_monitor-7ae9d23f7c623c3a.d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_monitor-7ae9d23f7c623c3a.rmeta: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs Cargo.toml

crates/monitor/src/lib.rs:
crates/monitor/src/anomaly.rs:
crates/monitor/src/fault.rs:
crates/monitor/src/report.rs:
crates/monitor/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
