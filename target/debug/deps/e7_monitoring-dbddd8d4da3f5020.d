/root/repo/target/debug/deps/e7_monitoring-dbddd8d4da3f5020.d: crates/bench/src/bin/e7_monitoring.rs

/root/repo/target/debug/deps/e7_monitoring-dbddd8d4da3f5020: crates/bench/src/bin/e7_monitoring.rs

crates/bench/src/bin/e7_monitoring.rs:
