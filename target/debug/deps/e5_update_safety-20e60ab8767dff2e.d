/root/repo/target/debug/deps/e5_update_safety-20e60ab8767dff2e.d: crates/bench/src/bin/e5_update_safety.rs

/root/repo/target/debug/deps/e5_update_safety-20e60ab8767dff2e: crates/bench/src/bin/e5_update_safety.rs

crates/bench/src/bin/e5_update_safety.rs:
