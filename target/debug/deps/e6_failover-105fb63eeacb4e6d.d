/root/repo/target/debug/deps/e6_failover-105fb63eeacb4e6d.d: crates/bench/src/bin/e6_failover.rs

/root/repo/target/debug/deps/e6_failover-105fb63eeacb4e6d: crates/bench/src/bin/e6_failover.rs

crates/bench/src/bin/e6_failover.rs:
