/root/repo/target/debug/deps/dynplat_dse-8b20ee8257b67314.d: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

/root/repo/target/debug/deps/libdynplat_dse-8b20ee8257b67314.rlib: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

/root/repo/target/debug/deps/libdynplat_dse-8b20ee8257b67314.rmeta: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

crates/dse/src/lib.rs:
crates/dse/src/consolidate.rs:
crates/dse/src/objective.rs:
crates/dse/src/pareto.rs:
crates/dse/src/search.rs:
