/root/repo/target/debug/deps/integration_network-f3e2f8882bf329e0.d: tests/integration_network.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_network-f3e2f8882bf329e0.rmeta: tests/integration_network.rs Cargo.toml

tests/integration_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
