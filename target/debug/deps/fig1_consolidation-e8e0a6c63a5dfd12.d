/root/repo/target/debug/deps/fig1_consolidation-e8e0a6c63a5dfd12.d: crates/bench/src/bin/fig1_consolidation.rs

/root/repo/target/debug/deps/fig1_consolidation-e8e0a6c63a5dfd12: crates/bench/src/bin/fig1_consolidation.rs

crates/bench/src/bin/fig1_consolidation.rs:
