/root/repo/target/debug/deps/e11_xil-9920229cf5a5ee76.d: crates/bench/src/bin/e11_xil.rs

/root/repo/target/debug/deps/e11_xil-9920229cf5a5ee76: crates/bench/src/bin/e11_xil.rs

crates/bench/src/bin/e11_xil.rs:
