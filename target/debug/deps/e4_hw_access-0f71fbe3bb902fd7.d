/root/repo/target/debug/deps/e4_hw_access-0f71fbe3bb902fd7.d: crates/bench/src/bin/e4_hw_access.rs

/root/repo/target/debug/deps/e4_hw_access-0f71fbe3bb902fd7: crates/bench/src/bin/e4_hw_access.rs

crates/bench/src/bin/e4_hw_access.rs:
