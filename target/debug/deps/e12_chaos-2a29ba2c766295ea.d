/root/repo/target/debug/deps/e12_chaos-2a29ba2c766295ea.d: crates/bench/src/bin/e12_chaos.rs

/root/repo/target/debug/deps/e12_chaos-2a29ba2c766295ea: crates/bench/src/bin/e12_chaos.rs

crates/bench/src/bin/e12_chaos.rs:
