/root/repo/target/debug/deps/e5_update_safety-23fb5edaa0b3a672.d: crates/bench/src/bin/e5_update_safety.rs

/root/repo/target/debug/deps/e5_update_safety-23fb5edaa0b3a672: crates/bench/src/bin/e5_update_safety.rs

crates/bench/src/bin/e5_update_safety.rs:
