/root/repo/target/debug/deps/dynplat_security-b67711517062f668.d: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

/root/repo/target/debug/deps/libdynplat_security-b67711517062f668.rlib: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

/root/repo/target/debug/deps/libdynplat_security-b67711517062f668.rmeta: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs

crates/security/src/lib.rs:
crates/security/src/authn.rs:
crates/security/src/authz.rs:
crates/security/src/master.rs:
crates/security/src/package.rs:
crates/security/src/sha256.rs:
crates/security/src/sign.rs:
