/root/repo/target/debug/deps/fig2_interference-935c9d75be36876c.d: crates/bench/src/bin/fig2_interference.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_interference-935c9d75be36876c.rmeta: crates/bench/src/bin/fig2_interference.rs Cargo.toml

crates/bench/src/bin/fig2_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
