/root/repo/target/debug/deps/dynplat_sim-0ef7058652c535b9.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/dynplat_sim-0ef7058652c535b9: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/trace.rs:
