/root/repo/target/debug/deps/e6_failover-f90a6ca3833f4346.d: crates/bench/src/bin/e6_failover.rs

/root/repo/target/debug/deps/e6_failover-f90a6ca3833f4346: crates/bench/src/bin/e6_failover.rs

crates/bench/src/bin/e6_failover.rs:
