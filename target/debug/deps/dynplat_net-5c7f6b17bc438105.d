/root/repo/target/debug/deps/dynplat_net-5c7f6b17bc438105.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

/root/repo/target/debug/deps/libdynplat_net-5c7f6b17bc438105.rlib: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

/root/repo/target/debug/deps/libdynplat_net-5c7f6b17bc438105.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/can.rs:
crates/net/src/ethernet.rs:
crates/net/src/flexray.rs:
crates/net/src/tsn.rs:
