/root/repo/target/debug/deps/ablation_dse-4403a262df944216.d: crates/bench/src/bin/ablation_dse.rs

/root/repo/target/debug/deps/ablation_dse-4403a262df944216: crates/bench/src/bin/ablation_dse.rs

crates/bench/src/bin/ablation_dse.rs:
