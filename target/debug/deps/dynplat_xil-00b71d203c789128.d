/root/repo/target/debug/deps/dynplat_xil-00b71d203c789128.d: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

/root/repo/target/debug/deps/libdynplat_xil-00b71d203c789128.rlib: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

/root/repo/target/debug/deps/libdynplat_xil-00b71d203c789128.rmeta: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

crates/xil/src/lib.rs:
crates/xil/src/control.rs:
crates/xil/src/harness.rs:
crates/xil/src/level.rs:
