/root/repo/target/debug/deps/e8_package_security-9b6085eabd3c186e.d: crates/bench/src/bin/e8_package_security.rs Cargo.toml

/root/repo/target/debug/deps/libe8_package_security-9b6085eabd3c186e.rmeta: crates/bench/src/bin/e8_package_security.rs Cargo.toml

crates/bench/src/bin/e8_package_security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
