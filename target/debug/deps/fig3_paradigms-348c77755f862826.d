/root/repo/target/debug/deps/fig3_paradigms-348c77755f862826.d: crates/bench/src/bin/fig3_paradigms.rs

/root/repo/target/debug/deps/fig3_paradigms-348c77755f862826: crates/bench/src/bin/fig3_paradigms.rs

crates/bench/src/bin/fig3_paradigms.rs:
