/root/repo/target/debug/deps/fig1_consolidation-994554d6352a8e7e.d: crates/bench/src/bin/fig1_consolidation.rs

/root/repo/target/debug/deps/fig1_consolidation-994554d6352a8e7e: crates/bench/src/bin/fig1_consolidation.rs

crates/bench/src/bin/fig1_consolidation.rs:
