/root/repo/target/debug/deps/dynplat_xil-a0db30b121dfa85b.d: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

/root/repo/target/debug/deps/dynplat_xil-a0db30b121dfa85b: crates/xil/src/lib.rs crates/xil/src/control.rs crates/xil/src/harness.rs crates/xil/src/level.rs

crates/xil/src/lib.rs:
crates/xil/src/control.rs:
crates/xil/src/harness.rs:
crates/xil/src/level.rs:
