/root/repo/target/debug/deps/dynplat_sched-6ddd8bdd412b9eb2.d: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_sched-6ddd8bdd412b9eb2.rmeta: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/admission.rs:
crates/sched/src/edf.rs:
crates/sched/src/manage.rs:
crates/sched/src/rta.rs:
crates/sched/src/sensitivity.rs:
crates/sched/src/server.rs:
crates/sched/src/simulate.rs:
crates/sched/src/task.rs:
crates/sched/src/tt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
