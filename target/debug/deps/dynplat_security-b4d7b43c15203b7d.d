/root/repo/target/debug/deps/dynplat_security-b4d7b43c15203b7d.d: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_security-b4d7b43c15203b7d.rmeta: crates/security/src/lib.rs crates/security/src/authn.rs crates/security/src/authz.rs crates/security/src/master.rs crates/security/src/package.rs crates/security/src/sha256.rs crates/security/src/sign.rs Cargo.toml

crates/security/src/lib.rs:
crates/security/src/authn.rs:
crates/security/src/authz.rs:
crates/security/src/master.rs:
crates/security/src/package.rs:
crates/security/src/sha256.rs:
crates/security/src/sign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
