/root/repo/target/debug/deps/dynplat-3ae05e5f2f59660d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat-3ae05e5f2f59660d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
