/root/repo/target/debug/deps/dynplat_common-023b6913774c92b9.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

/root/repo/target/debug/deps/dynplat_common-023b6913774c92b9: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/criticality.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
