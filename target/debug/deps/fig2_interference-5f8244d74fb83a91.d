/root/repo/target/debug/deps/fig2_interference-5f8244d74fb83a91.d: crates/bench/src/bin/fig2_interference.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_interference-5f8244d74fb83a91.rmeta: crates/bench/src/bin/fig2_interference.rs Cargo.toml

crates/bench/src/bin/fig2_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
