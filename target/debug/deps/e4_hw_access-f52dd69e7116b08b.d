/root/repo/target/debug/deps/e4_hw_access-f52dd69e7116b08b.d: crates/bench/src/bin/e4_hw_access.rs

/root/repo/target/debug/deps/e4_hw_access-f52dd69e7116b08b: crates/bench/src/bin/e4_hw_access.rs

crates/bench/src/bin/e4_hw_access.rs:
