/root/repo/target/debug/deps/integration_experiments-143414f178ab8870.d: tests/integration_experiments.rs

/root/repo/target/debug/deps/integration_experiments-143414f178ab8870: tests/integration_experiments.rs

tests/integration_experiments.rs:
