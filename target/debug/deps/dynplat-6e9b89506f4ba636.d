/root/repo/target/debug/deps/dynplat-6e9b89506f4ba636.d: src/lib.rs

/root/repo/target/debug/deps/dynplat-6e9b89506f4ba636: src/lib.rs

src/lib.rs:
