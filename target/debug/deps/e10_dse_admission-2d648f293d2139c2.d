/root/repo/target/debug/deps/e10_dse_admission-2d648f293d2139c2.d: crates/bench/src/bin/e10_dse_admission.rs Cargo.toml

/root/repo/target/debug/deps/libe10_dse_admission-2d648f293d2139c2.rmeta: crates/bench/src/bin/e10_dse_admission.rs Cargo.toml

crates/bench/src/bin/e10_dse_admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
