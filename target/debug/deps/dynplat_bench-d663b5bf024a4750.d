/root/repo/target/debug/deps/dynplat_bench-d663b5bf024a4750.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_bench-d663b5bf024a4750.rmeta: crates/bench/src/lib.rs crates/bench/src/chaos.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
