/root/repo/target/debug/deps/ablation_dse-686a79cb6a587dd4.d: crates/bench/src/bin/ablation_dse.rs

/root/repo/target/debug/deps/ablation_dse-686a79cb6a587dd4: crates/bench/src/bin/ablation_dse.rs

crates/bench/src/bin/ablation_dse.rs:
