/root/repo/target/debug/deps/dynplat_monitor-2ee87afc633fcb66.d: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

/root/repo/target/debug/deps/libdynplat_monitor-2ee87afc633fcb66.rlib: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

/root/repo/target/debug/deps/libdynplat_monitor-2ee87afc633fcb66.rmeta: crates/monitor/src/lib.rs crates/monitor/src/anomaly.rs crates/monitor/src/fault.rs crates/monitor/src/report.rs crates/monitor/src/task.rs

crates/monitor/src/lib.rs:
crates/monitor/src/anomaly.rs:
crates/monitor/src/fault.rs:
crates/monitor/src/report.rs:
crates/monitor/src/task.rs:
