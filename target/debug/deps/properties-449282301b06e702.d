/root/repo/target/debug/deps/properties-449282301b06e702.d: tests/properties.rs

/root/repo/target/debug/deps/properties-449282301b06e702: tests/properties.rs

tests/properties.rs:
