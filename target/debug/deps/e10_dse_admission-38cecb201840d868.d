/root/repo/target/debug/deps/e10_dse_admission-38cecb201840d868.d: crates/bench/src/bin/e10_dse_admission.rs

/root/repo/target/debug/deps/e10_dse_admission-38cecb201840d868: crates/bench/src/bin/e10_dse_admission.rs

crates/bench/src/bin/e10_dse_admission.rs:
