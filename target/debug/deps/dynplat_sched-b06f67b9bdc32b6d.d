/root/repo/target/debug/deps/dynplat_sched-b06f67b9bdc32b6d.d: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

/root/repo/target/debug/deps/libdynplat_sched-b06f67b9bdc32b6d.rlib: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

/root/repo/target/debug/deps/libdynplat_sched-b06f67b9bdc32b6d.rmeta: crates/sched/src/lib.rs crates/sched/src/admission.rs crates/sched/src/edf.rs crates/sched/src/manage.rs crates/sched/src/rta.rs crates/sched/src/sensitivity.rs crates/sched/src/server.rs crates/sched/src/simulate.rs crates/sched/src/task.rs crates/sched/src/tt.rs

crates/sched/src/lib.rs:
crates/sched/src/admission.rs:
crates/sched/src/edf.rs:
crates/sched/src/manage.rs:
crates/sched/src/rta.rs:
crates/sched/src/sensitivity.rs:
crates/sched/src/server.rs:
crates/sched/src/simulate.rs:
crates/sched/src/task.rs:
crates/sched/src/tt.rs:
