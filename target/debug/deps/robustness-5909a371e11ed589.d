/root/repo/target/debug/deps/robustness-5909a371e11ed589.d: crates/bench/tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-5909a371e11ed589.rmeta: crates/bench/tests/robustness.rs Cargo.toml

crates/bench/tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
