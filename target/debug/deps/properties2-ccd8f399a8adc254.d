/root/repo/target/debug/deps/properties2-ccd8f399a8adc254.d: tests/properties2.rs Cargo.toml

/root/repo/target/debug/deps/libproperties2-ccd8f399a8adc254.rmeta: tests/properties2.rs Cargo.toml

tests/properties2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
