/root/repo/target/debug/deps/properties2-8c8f5972fc4b9383.d: tests/properties2.rs

/root/repo/target/debug/deps/properties2-8c8f5972fc4b9383: tests/properties2.rs

tests/properties2.rs:
