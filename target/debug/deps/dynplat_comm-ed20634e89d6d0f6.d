/root/repo/target/debug/deps/dynplat_comm-ed20634e89d6d0f6.d: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_comm-ed20634e89d6d0f6.rmeta: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/endpoint.rs:
crates/comm/src/fabric.rs:
crates/comm/src/paradigm.rs:
crates/comm/src/qos.rs:
crates/comm/src/retry.rs:
crates/comm/src/sd.rs:
crates/comm/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
