/root/repo/target/debug/deps/e11_xil-209c950101d9379d.d: crates/bench/src/bin/e11_xil.rs

/root/repo/target/debug/deps/e11_xil-209c950101d9379d: crates/bench/src/bin/e11_xil.rs

crates/bench/src/bin/e11_xil.rs:
