/root/repo/target/debug/deps/dynplat_faults-9de708bfb74b1a24.d: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

/root/repo/target/debug/deps/dynplat_faults-9de708bfb74b1a24: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

crates/faults/src/lib.rs:
crates/faults/src/inject.rs:
crates/faults/src/plan.rs:
