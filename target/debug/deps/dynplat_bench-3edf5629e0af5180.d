/root/repo/target/debug/deps/dynplat_bench-3edf5629e0af5180.d: crates/bench/src/lib.rs crates/bench/src/chaos.rs

/root/repo/target/debug/deps/dynplat_bench-3edf5629e0af5180: crates/bench/src/lib.rs crates/bench/src/chaos.rs

crates/bench/src/lib.rs:
crates/bench/src/chaos.rs:
