/root/repo/target/debug/deps/dynplat_common-353899144526d3f3.d: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_common-353899144526d3f3.rmeta: crates/common/src/lib.rs crates/common/src/codec.rs crates/common/src/criticality.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/time.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/codec.rs:
crates/common/src/criticality.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/time.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
