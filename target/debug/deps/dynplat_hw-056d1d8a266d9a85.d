/root/repo/target/debug/deps/dynplat_hw-056d1d8a266d9a85.d: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_hw-056d1d8a266d9a85.rmeta: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/ecu.rs:
crates/hw/src/reference.rs:
crates/hw/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
