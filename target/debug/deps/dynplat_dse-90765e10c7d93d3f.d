/root/repo/target/debug/deps/dynplat_dse-90765e10c7d93d3f.d: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_dse-90765e10c7d93d3f.rmeta: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs Cargo.toml

crates/dse/src/lib.rs:
crates/dse/src/consolidate.rs:
crates/dse/src/objective.rs:
crates/dse/src/pareto.rs:
crates/dse/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
