/root/repo/target/debug/deps/e12_chaos-515dbeb7cabf9210.d: crates/bench/src/bin/e12_chaos.rs

/root/repo/target/debug/deps/e12_chaos-515dbeb7cabf9210: crates/bench/src/bin/e12_chaos.rs

crates/bench/src/bin/e12_chaos.rs:
