/root/repo/target/debug/deps/fig2_interference-21b7b826e3832dc9.d: crates/bench/src/bin/fig2_interference.rs

/root/repo/target/debug/deps/fig2_interference-21b7b826e3832dc9: crates/bench/src/bin/fig2_interference.rs

crates/bench/src/bin/fig2_interference.rs:
