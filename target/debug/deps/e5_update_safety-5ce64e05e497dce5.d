/root/repo/target/debug/deps/e5_update_safety-5ce64e05e497dce5.d: crates/bench/src/bin/e5_update_safety.rs Cargo.toml

/root/repo/target/debug/deps/libe5_update_safety-5ce64e05e497dce5.rmeta: crates/bench/src/bin/e5_update_safety.rs Cargo.toml

crates/bench/src/bin/e5_update_safety.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
