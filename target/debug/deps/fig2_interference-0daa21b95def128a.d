/root/repo/target/debug/deps/fig2_interference-0daa21b95def128a.d: crates/bench/src/bin/fig2_interference.rs

/root/repo/target/debug/deps/fig2_interference-0daa21b95def128a: crates/bench/src/bin/fig2_interference.rs

crates/bench/src/bin/fig2_interference.rs:
