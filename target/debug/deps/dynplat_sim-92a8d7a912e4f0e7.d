/root/repo/target/debug/deps/dynplat_sim-92a8d7a912e4f0e7.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdynplat_sim-92a8d7a912e4f0e7.rlib: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdynplat_sim-92a8d7a912e4f0e7.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/trace.rs:
