/root/repo/target/debug/deps/e7_monitoring-fa85eb0f8511a3a4.d: crates/bench/src/bin/e7_monitoring.rs

/root/repo/target/debug/deps/e7_monitoring-fa85eb0f8511a3a4: crates/bench/src/bin/e7_monitoring.rs

crates/bench/src/bin/e7_monitoring.rs:
