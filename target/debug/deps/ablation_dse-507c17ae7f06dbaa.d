/root/repo/target/debug/deps/ablation_dse-507c17ae7f06dbaa.d: crates/bench/src/bin/ablation_dse.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dse-507c17ae7f06dbaa.rmeta: crates/bench/src/bin/ablation_dse.rs Cargo.toml

crates/bench/src/bin/ablation_dse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
