/root/repo/target/debug/deps/dynplat_bench-29c616e579bc84a4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dynplat_bench-29c616e579bc84a4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
