/root/repo/target/debug/deps/integration_platform-d935239e02cfe70d.d: tests/integration_platform.rs

/root/repo/target/debug/deps/integration_platform-d935239e02cfe70d: tests/integration_platform.rs

tests/integration_platform.rs:
