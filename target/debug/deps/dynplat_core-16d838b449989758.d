/root/repo/target/debug/deps/dynplat_core-16d838b449989758.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_core-16d838b449989758.rmeta: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/campaign.rs:
crates/core/src/degradation.rs:
crates/core/src/node.rs:
crates/core/src/platform.rs:
crates/core/src/process.rs:
crates/core/src/redundancy.rs:
crates/core/src/sync.rs:
crates/core/src/update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
