/root/repo/target/debug/deps/fig3_paradigms-77c0c2045b107bc0.d: crates/bench/src/bin/fig3_paradigms.rs

/root/repo/target/debug/deps/fig3_paradigms-77c0c2045b107bc0: crates/bench/src/bin/fig3_paradigms.rs

crates/bench/src/bin/fig3_paradigms.rs:
