/root/repo/target/debug/deps/fig3_paradigms-035e06fdb0fc3572.d: crates/bench/src/bin/fig3_paradigms.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_paradigms-035e06fdb0fc3572.rmeta: crates/bench/src/bin/fig3_paradigms.rs Cargo.toml

crates/bench/src/bin/fig3_paradigms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
