/root/repo/target/debug/deps/dynplat_core-dd7ea1c38aae440b.d: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

/root/repo/target/debug/deps/dynplat_core-dd7ea1c38aae440b: crates/core/src/lib.rs crates/core/src/app.rs crates/core/src/campaign.rs crates/core/src/degradation.rs crates/core/src/node.rs crates/core/src/platform.rs crates/core/src/process.rs crates/core/src/redundancy.rs crates/core/src/sync.rs crates/core/src/update.rs

crates/core/src/lib.rs:
crates/core/src/app.rs:
crates/core/src/campaign.rs:
crates/core/src/degradation.rs:
crates/core/src/node.rs:
crates/core/src/platform.rs:
crates/core/src/process.rs:
crates/core/src/redundancy.rs:
crates/core/src/sync.rs:
crates/core/src/update.rs:
