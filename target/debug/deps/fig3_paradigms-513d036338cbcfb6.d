/root/repo/target/debug/deps/fig3_paradigms-513d036338cbcfb6.d: crates/bench/src/bin/fig3_paradigms.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_paradigms-513d036338cbcfb6.rmeta: crates/bench/src/bin/fig3_paradigms.rs Cargo.toml

crates/bench/src/bin/fig3_paradigms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
