/root/repo/target/debug/deps/dynplat-51d43e303dbd163b.d: src/lib.rs

/root/repo/target/debug/deps/dynplat-51d43e303dbd163b: src/lib.rs

src/lib.rs:
