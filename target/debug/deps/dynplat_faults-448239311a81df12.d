/root/repo/target/debug/deps/dynplat_faults-448239311a81df12.d: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

/root/repo/target/debug/deps/libdynplat_faults-448239311a81df12.rlib: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

/root/repo/target/debug/deps/libdynplat_faults-448239311a81df12.rmeta: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs

crates/faults/src/lib.rs:
crates/faults/src/inject.rs:
crates/faults/src/plan.rs:
