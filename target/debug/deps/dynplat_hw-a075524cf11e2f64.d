/root/repo/target/debug/deps/dynplat_hw-a075524cf11e2f64.d: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libdynplat_hw-a075524cf11e2f64.rlib: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/libdynplat_hw-a075524cf11e2f64.rmeta: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/ecu.rs:
crates/hw/src/reference.rs:
crates/hw/src/topology.rs:
