/root/repo/target/debug/deps/dynplat-b7c4da3a2802cacf.d: src/lib.rs

/root/repo/target/debug/deps/libdynplat-b7c4da3a2802cacf.rlib: src/lib.rs

/root/repo/target/debug/deps/libdynplat-b7c4da3a2802cacf.rmeta: src/lib.rs

src/lib.rs:
