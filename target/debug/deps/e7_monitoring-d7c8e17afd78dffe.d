/root/repo/target/debug/deps/e7_monitoring-d7c8e17afd78dffe.d: crates/bench/src/bin/e7_monitoring.rs

/root/repo/target/debug/deps/e7_monitoring-d7c8e17afd78dffe: crates/bench/src/bin/e7_monitoring.rs

crates/bench/src/bin/e7_monitoring.rs:
