/root/repo/target/debug/deps/dynplat_net-a36f4ea6c76c6b4d.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_net-a36f4ea6c76c6b4d.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/can.rs crates/net/src/ethernet.rs crates/net/src/flexray.rs crates/net/src/tsn.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/can.rs:
crates/net/src/ethernet.rs:
crates/net/src/flexray.rs:
crates/net/src/tsn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
