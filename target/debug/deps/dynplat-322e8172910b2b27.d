/root/repo/target/debug/deps/dynplat-322e8172910b2b27.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat-322e8172910b2b27.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
