/root/repo/target/debug/deps/dynplat_dse-bb0e3a70156dbd97.d: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

/root/repo/target/debug/deps/dynplat_dse-bb0e3a70156dbd97: crates/dse/src/lib.rs crates/dse/src/consolidate.rs crates/dse/src/objective.rs crates/dse/src/pareto.rs crates/dse/src/search.rs

crates/dse/src/lib.rs:
crates/dse/src/consolidate.rs:
crates/dse/src/objective.rs:
crates/dse/src/pareto.rs:
crates/dse/src/search.rs:
