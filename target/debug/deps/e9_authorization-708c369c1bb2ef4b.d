/root/repo/target/debug/deps/e9_authorization-708c369c1bb2ef4b.d: crates/bench/src/bin/e9_authorization.rs

/root/repo/target/debug/deps/e9_authorization-708c369c1bb2ef4b: crates/bench/src/bin/e9_authorization.rs

crates/bench/src/bin/e9_authorization.rs:
