/root/repo/target/debug/deps/integration_security-432c06b98d2f6cd6.d: tests/integration_security.rs

/root/repo/target/debug/deps/integration_security-432c06b98d2f6cd6: tests/integration_security.rs

tests/integration_security.rs:
