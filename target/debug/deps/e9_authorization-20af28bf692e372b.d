/root/repo/target/debug/deps/e9_authorization-20af28bf692e372b.d: crates/bench/src/bin/e9_authorization.rs Cargo.toml

/root/repo/target/debug/deps/libe9_authorization-20af28bf692e372b.rmeta: crates/bench/src/bin/e9_authorization.rs Cargo.toml

crates/bench/src/bin/e9_authorization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
