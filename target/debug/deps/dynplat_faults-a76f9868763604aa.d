/root/repo/target/debug/deps/dynplat_faults-a76f9868763604aa.d: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs Cargo.toml

/root/repo/target/debug/deps/libdynplat_faults-a76f9868763604aa.rmeta: crates/faults/src/lib.rs crates/faults/src/inject.rs crates/faults/src/plan.rs Cargo.toml

crates/faults/src/lib.rs:
crates/faults/src/inject.rs:
crates/faults/src/plan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
