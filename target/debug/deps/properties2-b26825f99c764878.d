/root/repo/target/debug/deps/properties2-b26825f99c764878.d: tests/properties2.rs

/root/repo/target/debug/deps/properties2-b26825f99c764878: tests/properties2.rs

tests/properties2.rs:
