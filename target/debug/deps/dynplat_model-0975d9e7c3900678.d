/root/repo/target/debug/deps/dynplat_model-0975d9e7c3900678.d: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

/root/repo/target/debug/deps/dynplat_model-0975d9e7c3900678: crates/model/src/lib.rs crates/model/src/dsl.rs crates/model/src/generate.rs crates/model/src/ir.rs crates/model/src/verify.rs

crates/model/src/lib.rs:
crates/model/src/dsl.rs:
crates/model/src/generate.rs:
crates/model/src/ir.rs:
crates/model/src/verify.rs:
