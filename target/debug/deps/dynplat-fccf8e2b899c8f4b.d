/root/repo/target/debug/deps/dynplat-fccf8e2b899c8f4b.d: src/lib.rs

/root/repo/target/debug/deps/libdynplat-fccf8e2b899c8f4b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdynplat-fccf8e2b899c8f4b.rmeta: src/lib.rs

src/lib.rs:
