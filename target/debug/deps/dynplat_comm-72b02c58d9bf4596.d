/root/repo/target/debug/deps/dynplat_comm-72b02c58d9bf4596.d: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs

/root/repo/target/debug/deps/dynplat_comm-72b02c58d9bf4596: crates/comm/src/lib.rs crates/comm/src/endpoint.rs crates/comm/src/fabric.rs crates/comm/src/paradigm.rs crates/comm/src/qos.rs crates/comm/src/retry.rs crates/comm/src/sd.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/endpoint.rs:
crates/comm/src/fabric.rs:
crates/comm/src/paradigm.rs:
crates/comm/src/qos.rs:
crates/comm/src/retry.rs:
crates/comm/src/sd.rs:
crates/comm/src/wire.rs:
