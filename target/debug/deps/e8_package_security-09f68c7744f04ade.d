/root/repo/target/debug/deps/e8_package_security-09f68c7744f04ade.d: crates/bench/src/bin/e8_package_security.rs

/root/repo/target/debug/deps/e8_package_security-09f68c7744f04ade: crates/bench/src/bin/e8_package_security.rs

crates/bench/src/bin/e8_package_security.rs:
