/root/repo/target/debug/deps/dynplat_hw-4de320bf250f296a.d: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

/root/repo/target/debug/deps/dynplat_hw-4de320bf250f296a: crates/hw/src/lib.rs crates/hw/src/ecu.rs crates/hw/src/reference.rs crates/hw/src/topology.rs

crates/hw/src/lib.rs:
crates/hw/src/ecu.rs:
crates/hw/src/reference.rs:
crates/hw/src/topology.rs:
