/root/repo/target/debug/deps/integration_network-5b3ad15024f0ea18.d: tests/integration_network.rs

/root/repo/target/debug/deps/integration_network-5b3ad15024f0ea18: tests/integration_network.rs

tests/integration_network.rs:
