/root/repo/target/debug/deps/fig1_consolidation-d16bd53554a70bae.d: crates/bench/src/bin/fig1_consolidation.rs

/root/repo/target/debug/deps/fig1_consolidation-d16bd53554a70bae: crates/bench/src/bin/fig1_consolidation.rs

crates/bench/src/bin/fig1_consolidation.rs:
