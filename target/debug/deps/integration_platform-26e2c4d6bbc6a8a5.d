/root/repo/target/debug/deps/integration_platform-26e2c4d6bbc6a8a5.d: tests/integration_platform.rs

/root/repo/target/debug/deps/integration_platform-26e2c4d6bbc6a8a5: tests/integration_platform.rs

tests/integration_platform.rs:
